#include "data/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ens::data {

namespace {

std::uint8_t to_byte(float value) {
    const float clamped = std::clamp(value, 0.0f, 1.0f);
    return static_cast<std::uint8_t>(std::lround(clamped * 255.0f));
}

}  // namespace

void write_image(const std::string& path, const Tensor& image) {
    ENS_REQUIRE(image.defined() && image.shape().rank() == 3, "write_image: expected [C, H, W]");
    const std::int64_t channels = image.shape().dim(0);
    const std::int64_t height = image.shape().dim(1);
    const std::int64_t width = image.shape().dim(2);
    ENS_REQUIRE(channels == 1 || channels == 3, "write_image: C must be 1 (PGM) or 3 (PPM)");

    std::ofstream out(path, std::ios::binary);
    ENS_CHECK(out.good(), "write_image: cannot open " + path);
    out << (channels == 3 ? "P6" : "P5") << '\n' << width << ' ' << height << "\n255\n";
    const float* data = image.data();
    const std::int64_t plane = height * width;
    std::vector<char> row(static_cast<std::size_t>(width) * static_cast<std::size_t>(channels));
    for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
            for (std::int64_t c = 0; c < channels; ++c) {
                row[static_cast<std::size_t>((x * channels) + c)] =
                    static_cast<char>(to_byte(data[c * plane + y * width + x]));
            }
        }
        out.write(row.data(), static_cast<std::streamsize>(row.size()));
    }
    ENS_CHECK(out.good(), "write_image: write failed for " + path);
}

Tensor read_image(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    ENS_CHECK(in.good(), "read_image: cannot open " + path);
    std::string magic;
    in >> magic;
    ENS_CHECK(magic == "P6" || magic == "P5", "read_image: not a binary PPM/PGM: " + path);
    const std::int64_t channels = (magic == "P6") ? 3 : 1;

    // Header fields may be separated by whitespace and '#' comment lines.
    auto next_int = [&in, &path]() {
        for (;;) {
            int c = in.peek();
            ENS_CHECK(c != EOF, "read_image: truncated header in " + path);
            if (std::isspace(c) != 0) {
                in.get();
            } else if (c == '#') {
                std::string comment;
                std::getline(in, comment);
            } else {
                break;
            }
        }
        std::int64_t value = 0;
        in >> value;
        ENS_CHECK(in.good(), "read_image: bad header field in " + path);
        return value;
    };
    const std::int64_t width = next_int();
    const std::int64_t height = next_int();
    const std::int64_t maxval = next_int();
    ENS_CHECK(maxval == 255, "read_image: only 8-bit images supported");
    in.get();  // single whitespace after maxval

    const auto row_bytes = static_cast<std::size_t>(width) * static_cast<std::size_t>(channels);
    std::vector<char> row(row_bytes);
    Tensor image{Shape{{channels, height, width}}};
    float* data = image.data();
    const std::int64_t plane = height * width;
    for (std::int64_t y = 0; y < height; ++y) {
        in.read(row.data(), static_cast<std::streamsize>(row.size()));
        ENS_CHECK(in.good(), "read_image: truncated pixel data in " + path);
        for (std::int64_t x = 0; x < width; ++x) {
            for (std::int64_t c = 0; c < channels; ++c) {
                const auto byte =
                    static_cast<std::uint8_t>(row[static_cast<std::size_t>(x * channels + c)]);
                data[c * plane + y * width + x] = static_cast<float>(byte) / 255.0f;
            }
        }
    }
    return image;
}

namespace {

/// Normalizes input to a list of [C, H, W] views and validates uniformity.
std::vector<Tensor> as_image_list(const std::vector<Tensor>& images) {
    ENS_REQUIRE(!images.empty(), "tile_images: no images");
    std::vector<Tensor> list;
    for (const Tensor& entry : images) {
        ENS_REQUIRE(entry.defined(), "tile_images: undefined tensor");
        if (entry.shape().rank() == 4) {
            const std::int64_t batch = entry.shape().dim(0);
            const Shape item{{entry.shape().dim(1), entry.shape().dim(2), entry.shape().dim(3)}};
            const std::int64_t stride = item.numel();
            for (std::int64_t b = 0; b < batch; ++b) {
                Tensor image(item);
                std::copy_n(entry.data() + b * stride, stride, image.data());
                list.push_back(std::move(image));
            }
        } else {
            ENS_REQUIRE(entry.shape().rank() == 3, "tile_images: expected [C,H,W] or [B,C,H,W]");
            list.push_back(entry);
        }
    }
    for (const Tensor& image : list) {
        ENS_REQUIRE(image.shape() == list.front().shape(),
                    "tile_images: images must share one shape");
    }
    return list;
}

}  // namespace

Tensor tile_images(const std::vector<Tensor>& images, std::size_t columns) {
    ENS_REQUIRE(columns >= 1, "tile_images: columns must be >= 1");
    const std::vector<Tensor> list = as_image_list(images);
    const std::int64_t channels = list.front().shape().dim(0);
    const std::int64_t height = list.front().shape().dim(1);
    const std::int64_t width = list.front().shape().dim(2);
    const auto cols = static_cast<std::int64_t>(std::min(columns, list.size()));
    const auto rows = static_cast<std::int64_t>((list.size() + columns - 1) / columns);

    const std::int64_t sheet_h = rows * height + (rows - 1);
    const std::int64_t sheet_w = cols * width + (cols - 1);
    Tensor sheet = Tensor::full(Shape{{channels, sheet_h, sheet_w}}, 1.0f);
    float* out = sheet.data();
    const std::int64_t sheet_plane = sheet_h * sheet_w;
    const std::int64_t plane = height * width;
    for (std::size_t i = 0; i < list.size(); ++i) {
        const std::int64_t row = static_cast<std::int64_t>(i) / cols;
        const std::int64_t col = static_cast<std::int64_t>(i) % cols;
        const std::int64_t y0 = row * (height + 1);
        const std::int64_t x0 = col * (width + 1);
        const float* src = list[i].data();
        for (std::int64_t c = 0; c < channels; ++c) {
            for (std::int64_t y = 0; y < height; ++y) {
                std::copy_n(src + c * plane + y * width, width,
                            out + c * sheet_plane + (y0 + y) * sheet_w + x0);
            }
        }
    }
    return sheet;
}

Tensor stack_rows(const std::vector<Tensor>& rows) {
    ENS_REQUIRE(!rows.empty(), "stack_rows: no rows");
    const std::int64_t channels = rows.front().shape().dim(0);
    const std::int64_t width = rows.front().shape().dim(2);
    std::int64_t total_h = static_cast<std::int64_t>(rows.size()) - 1;  // separators
    for (const Tensor& row : rows) {
        ENS_REQUIRE(row.defined() && row.shape().rank() == 3, "stack_rows: expected [C, H, W]");
        ENS_REQUIRE(row.shape().dim(0) == channels && row.shape().dim(2) == width,
                    "stack_rows: rows must share channels and width");
        total_h += row.shape().dim(1);
    }
    Tensor sheet = Tensor::full(Shape{{channels, total_h, width}}, 1.0f);
    float* out = sheet.data();
    const std::int64_t sheet_plane = total_h * width;
    std::int64_t y0 = 0;
    for (const Tensor& row : rows) {
        const std::int64_t height = row.shape().dim(1);
        const std::int64_t plane = height * width;
        const float* src = row.data();
        for (std::int64_t c = 0; c < channels; ++c) {
            std::copy_n(src + c * plane, plane, out + c * sheet_plane + y0 * width);
        }
        y0 += height + 1;
    }
    return sheet;
}

}  // namespace ens::data
