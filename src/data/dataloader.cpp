#include "data/dataloader.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ens::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size, Rng rng, bool shuffle)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
    ENS_REQUIRE(batch_size_ > 0, "DataLoader: batch size must be positive");
    ENS_REQUIRE(dataset_.size() > 0, "DataLoader: empty dataset");
    order_.resize(dataset_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
        order_[i] = i;
    }
    start_epoch();
}

void DataLoader::start_epoch() {
    if (shuffle_) {
        rng_.shuffle(order_);
    }
    cursor_ = 0;
}

std::optional<Batch> DataLoader::next() {
    if (cursor_ >= order_.size()) {
        return std::nullopt;
    }
    const std::size_t count = std::min(batch_size_, order_.size() - cursor_);
    const std::vector<std::size_t> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                           order_.begin() +
                                               static_cast<std::ptrdiff_t>(cursor_ + count));
    cursor_ += count;
    return materialize(dataset_, indices);
}

std::size_t DataLoader::batches_per_epoch() const {
    return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace ens::data
