#include "metrics/ssim.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace ens::metrics {

namespace {

std::vector<float> gaussian_kernel(int size, float sigma) {
    std::vector<float> k(static_cast<std::size_t>(size));
    const float center = static_cast<float>(size - 1) / 2.0f;
    float total = 0.0f;
    for (int i = 0; i < size; ++i) {
        const float d = static_cast<float>(i) - center;
        k[static_cast<std::size_t>(i)] = std::exp(-d * d / (2.0f * sigma * sigma));
        total += k[static_cast<std::size_t>(i)];
    }
    for (float& v : k) {
        v /= total;
    }
    return k;
}

/// Separable Gaussian filter, valid region only: output is
/// [h - size + 1, w - size + 1].
void filter_valid(const float* img, std::int64_t h, std::int64_t w,
                  const std::vector<float>& kernel, std::vector<float>& scratch,
                  std::vector<float>& out) {
    const auto size = static_cast<std::int64_t>(kernel.size());
    const std::int64_t out_w = w - size + 1;
    const std::int64_t out_h = h - size + 1;
    scratch.assign(static_cast<std::size_t>(h * out_w), 0.0f);
    // Horizontal pass.
    for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < out_w; ++x) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < size; ++k) {
                acc += kernel[static_cast<std::size_t>(k)] * img[y * w + x + k];
            }
            scratch[static_cast<std::size_t>(y * out_w + x)] = acc;
        }
    }
    // Vertical pass.
    out.assign(static_cast<std::size_t>(out_h * out_w), 0.0f);
    for (std::int64_t y = 0; y < out_h; ++y) {
        for (std::int64_t x = 0; x < out_w; ++x) {
            float acc = 0.0f;
            for (std::int64_t k = 0; k < size; ++k) {
                acc += kernel[static_cast<std::size_t>(k)] *
                       scratch[static_cast<std::size_t>((y + k) * out_w + x)];
            }
            out[static_cast<std::size_t>(y * out_w + x)] = acc;
        }
    }
}

/// SSIM over one channel plane.
double ssim_plane(const float* a, const float* b, std::int64_t h, std::int64_t w,
                  const SsimOptions& options) {
    int win = options.window;
    const auto smallest = static_cast<int>(std::min(h, w));
    if (win > smallest) {
        win = smallest % 2 == 1 ? smallest : smallest - 1;  // keep odd
    }
    ENS_REQUIRE(win >= 1, "ssim: image too small");
    const std::vector<float> kernel = gaussian_kernel(win, options.sigma);

    const std::int64_t n = h * w;
    std::vector<float> a_sq(static_cast<std::size_t>(n));
    std::vector<float> b_sq(static_cast<std::size_t>(n));
    std::vector<float> ab(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        a_sq[static_cast<std::size_t>(i)] = a[i] * a[i];
        b_sq[static_cast<std::size_t>(i)] = b[i] * b[i];
        ab[static_cast<std::size_t>(i)] = a[i] * b[i];
    }

    std::vector<float> scratch;
    std::vector<float> mu_a;
    std::vector<float> mu_b;
    std::vector<float> s_aa;
    std::vector<float> s_bb;
    std::vector<float> s_ab;
    filter_valid(a, h, w, kernel, scratch, mu_a);
    filter_valid(b, h, w, kernel, scratch, mu_b);
    filter_valid(a_sq.data(), h, w, kernel, scratch, s_aa);
    filter_valid(b_sq.data(), h, w, kernel, scratch, s_bb);
    filter_valid(ab.data(), h, w, kernel, scratch, s_ab);

    const float c1 = (0.01f * options.dynamic_range) * (0.01f * options.dynamic_range);
    const float c2 = (0.03f * options.dynamic_range) * (0.03f * options.dynamic_range);

    double total = 0.0;
    for (std::size_t i = 0; i < mu_a.size(); ++i) {
        const float ma = mu_a[i];
        const float mb = mu_b[i];
        const float var_a = s_aa[i] - ma * ma;
        const float var_b = s_bb[i] - mb * mb;
        const float cov = s_ab[i] - ma * mb;
        const float numerator = (2.0f * ma * mb + c1) * (2.0f * cov + c2);
        const float denominator = (ma * ma + mb * mb + c1) * (var_a + var_b + c2);
        total += numerator / denominator;
    }
    return total / static_cast<double>(mu_a.size());
}

}  // namespace

float ssim(const Tensor& a, const Tensor& b, const SsimOptions& options) {
    ENS_REQUIRE(a.shape() == b.shape(), "ssim: shape mismatch");
    ENS_REQUIRE(a.rank() == 3 || a.rank() == 4, "ssim expects [C,H,W] or [N,C,H,W]");

    if (a.rank() == 3) {
        const std::int64_t channels = a.dim(0);
        const std::int64_t h = a.dim(1);
        const std::int64_t w = a.dim(2);
        double total = 0.0;
        for (std::int64_t c = 0; c < channels; ++c) {
            total += ssim_plane(a.data() + c * h * w, b.data() + c * h * w, h, w, options);
        }
        return static_cast<float>(total / static_cast<double>(channels));
    }

    const std::int64_t batch = a.dim(0);
    const std::int64_t per_sample = a.numel() / batch;
    const Shape sample_shape{a.dim(1), a.dim(2), a.dim(3)};
    double total = 0.0;
    for (std::int64_t i = 0; i < batch; ++i) {
        const Tensor sa = Tensor::from_vector(
            sample_shape, std::vector<float>(a.data() + i * per_sample,
                                             a.data() + (i + 1) * per_sample));
        const Tensor sb = Tensor::from_vector(
            sample_shape, std::vector<float>(b.data() + i * per_sample,
                                             b.data() + (i + 1) * per_sample));
        total += ssim(sa, sb, options);
    }
    return static_cast<float>(total / static_cast<double>(batch));
}

}  // namespace ens::metrics
