#include "metrics/psnr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ens::metrics {

float psnr(const Tensor& a, const Tensor& b, float dynamic_range, float cap_db) {
    ENS_REQUIRE(a.shape() == b.shape(), "psnr: shape mismatch");
    ENS_REQUIRE(a.numel() > 0, "psnr: empty input");
    const float* pa = a.data();
    const float* pb = b.data();
    const std::int64_t n = a.numel();
    double mse = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double diff = static_cast<double>(pa[i]) - pb[i];
        mse += diff * diff;
    }
    mse /= static_cast<double>(n);
    if (mse <= 0.0) {
        return cap_db;  // identical inputs: the documented finite cap, not +inf
    }
    const double value =
        10.0 * std::log10(static_cast<double>(dynamic_range) * dynamic_range / mse);
    return static_cast<float>(std::min(value, static_cast<double>(cap_db)));
}

}  // namespace ens::metrics
