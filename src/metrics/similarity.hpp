#pragma once
// Scalar similarity metrics between tensors (flattened), used to verify
// Stage-3's quasi-orthogonality property and to compare head weights.

#include "tensor/tensor.hpp"

namespace ens::metrics {

/// Cosine similarity over all elements; 0 for zero-norm inputs.
float cosine_similarity(const Tensor& a, const Tensor& b);

/// Relative L2 distance ||a-b|| / (||a|| + ||b|| + eps).
float relative_l2_distance(const Tensor& a, const Tensor& b);

}  // namespace ens::metrics
