#include "metrics/similarity.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace ens::metrics {

float cosine_similarity(const Tensor& a, const Tensor& b) {
    ENS_REQUIRE(a.numel() == b.numel(), "cosine_similarity: size mismatch");
    const double num = dot(a, b);
    const double denom =
        std::sqrt(static_cast<double>(squared_norm(a))) * std::sqrt(static_cast<double>(squared_norm(b)));
    if (denom <= 1e-20) {
        return 0.0f;
    }
    return static_cast<float>(num / denom);
}

float relative_l2_distance(const Tensor& a, const Tensor& b) {
    ENS_REQUIRE(a.shape() == b.shape(), "relative_l2_distance: shape mismatch");
    const Tensor diff = sub(a, b);
    const double num = std::sqrt(static_cast<double>(squared_norm(diff)));
    const double denom = std::sqrt(static_cast<double>(squared_norm(a))) +
                         std::sqrt(static_cast<double>(squared_norm(b))) + 1e-12;
    return static_cast<float>(num / denom);
}

}  // namespace ens::metrics
