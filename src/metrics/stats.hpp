#pragma once
// Streaming statistics (Welford) for experiment reporting.

#include <cstdint>

namespace ens::metrics {

class RunningStat {
public:
    void add(double value);

    std::int64_t count() const { return count_; }
    double mean() const;
    double variance() const;  // population variance
    double stddev() const;
    double min() const;
    double max() const;

private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace ens::metrics
