#pragma once
// Structural Similarity (Wang et al. 2004), the paper's primary defense
// metric (lower SSIM between input and reconstruction = better defense).
//
// Implementation follows the reference: 11x11 Gaussian window (sigma 1.5),
// valid-region convolution, constants C1 = (0.01 L)^2, C2 = (0.03 L)^2 with
// dynamic range L = 1 (images live in [0,1]). For images smaller than the
// window the window is shrunk to the image size (kept odd).

#include "tensor/tensor.hpp"

namespace ens::metrics {

struct SsimOptions {
    int window = 11;
    float sigma = 1.5f;
    float dynamic_range = 1.0f;
};

/// Mean SSIM between two [C, H, W] images (channel-averaged), or between
/// two [N, C, H, W] batches (sample- and channel-averaged).
float ssim(const Tensor& a, const Tensor& b, const SsimOptions& options = {});

}  // namespace ens::metrics
