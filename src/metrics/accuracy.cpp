#include "metrics/accuracy.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace ens::metrics {

float top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
    AccuracyAccumulator acc;
    acc.add(logits, labels);
    return acc.value();
}

void AccuracyAccumulator::add(const Tensor& logits, const std::vector<std::int64_t>& labels) {
    ENS_REQUIRE(logits.rank() == 2, "accuracy expects [batch, classes] logits");
    ENS_REQUIRE(static_cast<std::size_t>(logits.dim(0)) == labels.size(),
                "accuracy: label count mismatch");
    const std::vector<std::int64_t> predictions = argmax_rows(logits);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        correct_ += predictions[i] == labels[i] ? 1 : 0;
    }
    total_ += static_cast<std::int64_t>(labels.size());
}

float AccuracyAccumulator::value() const {
    ENS_REQUIRE(total_ > 0, "accuracy: no samples accumulated");
    return static_cast<float>(correct_) / static_cast<float>(total_);
}

}  // namespace ens::metrics
