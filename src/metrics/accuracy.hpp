#pragma once
// Classification accuracy helpers.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ens::metrics {

/// Top-1 accuracy in [0, 1]: fraction of rows whose argmax equals the label.
float top1_accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Streaming accuracy accumulator for multi-batch evaluation.
class AccuracyAccumulator {
public:
    void add(const Tensor& logits, const std::vector<std::int64_t>& labels);
    float value() const;
    std::int64_t count() const { return total_; }

private:
    std::int64_t correct_ = 0;
    std::int64_t total_ = 0;
};

}  // namespace ens::metrics
