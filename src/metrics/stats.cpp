#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ens::metrics {

void RunningStat::add(double value) {
    ++count_;
    if (count_ == 1) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double RunningStat::mean() const {
    ENS_REQUIRE(count_ > 0, "RunningStat: empty");
    return mean_;
}

double RunningStat::variance() const {
    ENS_REQUIRE(count_ > 0, "RunningStat: empty");
    return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
    ENS_REQUIRE(count_ > 0, "RunningStat: empty");
    return min_;
}

double RunningStat::max() const {
    ENS_REQUIRE(count_ > 0, "RunningStat: empty");
    return max_;
}

}  // namespace ens::metrics
