#pragma once
// Peak Signal-to-Noise Ratio: 10 log10(L^2 / MSE), L = dynamic range (1 for
// [0,1] images). The paper's second defense metric (lower = better defense).

#include "tensor/tensor.hpp"

namespace ens::metrics {

/// PSNR in dB between same-shape tensors. Identical inputs return +inf
/// capped at `cap_db` (default 100 dB) so aggregation stays finite.
float psnr(const Tensor& a, const Tensor& b, float dynamic_range = 1.0f, float cap_db = 100.0f);

}  // namespace ens::metrics
