#pragma once
// Peak Signal-to-Noise Ratio: 10 log10(L^2 / MSE), L = dynamic range (1 for
// [0,1] images). The paper's second defense metric (lower = better defense).

#include "tensor/tensor.hpp"

namespace ens::metrics {

/// PSNR in dB between same-shape tensors. The mathematical value for
/// identical inputs is +inf; this function NEVER returns it — the result
/// is clamped to `cap_db` (default 100 dB), for identical inputs and for
/// near-identical ones whose log10 value would exceed the cap alike, so
/// sums/means over many samples stay finite and comparisons are total.
/// Consequence for callers that select "best reconstruction by PSNR"
/// (attack::attack_best_of_n, the brute-force report): two reconstructions
/// at or above the cap compare EQUAL at cap_db — break ties with a second
/// criterion (SSIM) rather than trusting the PSNR ordering past the cap.
float psnr(const Tensor& a, const Tensor& b, float dynamic_range = 1.0f, float cap_db = 100.0f);

}  // namespace ens::metrics
