#pragma once
// Wall-clock stopwatch for coarse experiment timing (training stages,
// attack phases). Latency *estimates* for Table III come from the
// analytical model in src/latency, not from this clock.

#include <chrono>

namespace ens {

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    /// Seconds since construction or the last reset().
    double elapsed_seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsed_ms() const { return elapsed_seconds() * 1e3; }

    void reset() { start_ = Clock::now(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace ens
