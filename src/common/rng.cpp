#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace ens {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    ENS_REQUIRE(lo <= hi, "uniform bounds out of order");
    return lo + (hi - lo) * uniform();
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 kept away from 0 so log() is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
    ENS_REQUIRE(n > 0, "next_below requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t draw = next_u64();
        if (draw >= threshold) {
            return draw % n;
        }
    }
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
    ENS_REQUIRE(lo <= hi, "randint bounds out of order");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) {
    return uniform() < p;
}

Rng Rng::fork(std::uint64_t stream) const {
    // Mix the parent's state with the stream id through splitmix64 so
    // children are decorrelated from the parent and from each other.
    std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ (stream * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
    return Rng(splitmix64(sm));
}

Rng Rng::fork_named(std::string_view label) const {
    // FNV-1a over the label, then fork on the hash.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : label) {
        hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        hash *= 0x100000001B3ULL;
    }
    return fork(hash);
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    rng.shuffle(perm);
    return perm;
}

}  // namespace ens
