#pragma once
// Minimal leveled logger.
//
// Experiments and long-running training loops report progress through this;
// everything writes to stderr so benchmark tables on stdout stay clean.
// Level is controlled programmatically or with ENS_LOG_LEVEL
// (trace|debug|info|warn|error|off).

#include <sstream>
#include <string>

namespace ens {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "info", "debug", ... (case-insensitive); unknown -> kInfo.
LogLevel parse_log_level(const std::string& text);

/// Emits one formatted line to stderr ("[level] message").
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style collector used by the ENS_LOG macro.
class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level) {}
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;
    ~LogLine() { log_message(level_, stream_.str()); }

    template <typename T>
    LogLine& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ens

#define ENS_LOG(level)                            \
    if (::ens::log_level() > (level)) {           \
    } else                                        \
        ::ens::detail::LogLine(level)

#define ENS_LOG_INFO ENS_LOG(::ens::LogLevel::kInfo)
#define ENS_LOG_DEBUG ENS_LOG(::ens::LogLevel::kDebug)
#define ENS_LOG_WARN ENS_LOG(::ens::LogLevel::kWarn)
#define ENS_LOG_ERROR ENS_LOG(::ens::LogLevel::kError)
