#pragma once
// Minimal command-line parsing for the example drivers.
//
// Grammar: prog [subcommand] [--flag value]... [--switch]...
// Flags are --key value pairs; a trailing --key with no value (or followed
// by another --key) is a boolean switch. Unknown flags are collected and
// reported so drivers can reject typos instead of silently ignoring them.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ens {

class ArgParser {
public:
    /// Parses argv; argv[1] is taken as the subcommand when it does not
    /// start with '-'.
    ArgParser(int argc, const char* const* argv);

    const std::string& command() const { return command_; }
    const std::string& program() const { return program_; }

    bool has(const std::string& flag) const;

    /// Typed lookups with defaults; throw std::invalid_argument on
    /// malformed values (e.g. --epochs banana).
    std::string get_string(const std::string& flag, const std::string& fallback) const;
    std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
    double get_double(const std::string& flag, double fallback) const;

    /// Flags seen on the command line that the driver never queried.
    /// Call after all get_*/has calls to reject typos.
    std::vector<std::string> unconsumed() const;

private:
    std::string program_;
    std::string command_;
    std::map<std::string, std::string> values_;  // flag -> raw value ("" = switch)
    mutable std::map<std::string, bool> consumed_;
};

}  // namespace ens
