#pragma once
// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, noise masks, data
// synthesis, shuffling, dropout) draws from an ens::Rng seeded explicitly, so
// experiments are bit-reproducible across runs. The generator is
// xoshiro256**, seeded through splitmix64 per Blackman & Vigna's
// recommendation. Named sub-streams (`fork`) give independent generators for
// parallel components without seed collisions.

#include <cstdint>
#include <string_view>
#include <vector>

namespace ens {

/// splitmix64 step; used for seeding and cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256**-backed generator with convenience distributions.
class Rng {
public:
    /// Seeds the four words of state from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Next raw 64-bit draw.
    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double uniform();

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box-Muller (cached second draw).
    double normal();

    /// Normal with the given mean / standard deviation.
    double normal(double mean, double stddev);

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t next_below(std::uint64_t n);

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t randint(std::int64_t lo, std::int64_t hi);

    /// Bernoulli draw with probability p of true.
    bool bernoulli(double p);

    /// Fisher-Yates shuffle of `v`.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(next_below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Derives an independent child generator; `stream` disambiguates
    /// multiple forks from the same parent (e.g. one per ensemble member).
    Rng fork(std::uint64_t stream) const;

    /// Derives a child generator from a human-readable label, so call sites
    /// read as rng.fork_named("stage1/net3").
    Rng fork_named(std::string_view label) const;

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/// Returns a permutation of [0, n).
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace ens
