#pragma once
// Error-handling helpers.
//
// The library signals contract violations and unrecoverable failures with
// exceptions (std::invalid_argument for bad arguments, std::runtime_error for
// state errors), per I.10 of the C++ Core Guidelines. The macros below attach
// file:line context so failures deep inside training loops are diagnosable.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ens {

/// Builds a "file:line: message" string for exception payloads.
inline std::string error_location(const char* file, int line, const std::string& msg) {
    std::ostringstream oss;
    oss << file << ':' << line << ": " << msg;
    return oss.str();
}

/// Machine-dispatchable failure classes for conditions a caller may want to
/// handle rather than abort on: transport shutdown, wire timeouts, OS-level
/// I/O faults, and service overload (bounded-admission rejection).
enum class ErrorCode : std::uint8_t {
    generic = 0,
    channel_closed = 1,   // peer disconnected / close() called; no more messages
    channel_timeout = 2,  // recv timed out waiting for a message
    io_error = 3,         // unexpected OS-level socket failure
    overloaded = 4,       // admission control rejected the request (queue full)
    protocol_error = 5,   // malformed/incompatible peer bytes: bad handshake
                          // magic or version, truncated or corrupt frame,
                          // inconsistent shard body ranges
    checkpoint_error = 6,  // unloadable checkpoint/bundle file: bad magic or
                           // version, truncated stream, name/shape/count
                           // mismatch against the target model (messages
                           // name the offending file)
    compile_error = 7,     // graph-compiler contract violation: a required
                           // rewrite (e.g. strict noise baking) is illegal
                           // on this graph, or a compiled (inference-only)
                           // artifact was asked to train/export
};

/// "channel_closed" etc., for logs and test diagnostics.
inline const char* error_code_name(ErrorCode code) {
    switch (code) {
        case ErrorCode::generic: return "generic";
        case ErrorCode::channel_closed: return "channel_closed";
        case ErrorCode::channel_timeout: return "channel_timeout";
        case ErrorCode::io_error: return "io_error";
        case ErrorCode::overloaded: return "overloaded";
        case ErrorCode::protocol_error: return "protocol_error";
        case ErrorCode::checkpoint_error: return "checkpoint_error";
        case ErrorCode::compile_error: return "compile_error";
    }
    return "?";
}

/// Typed runtime error. Derives from std::runtime_error so existing catch
/// sites keep working; code() lets transport and admission callers branch
/// on the failure class (e.g. retry on timeout, drop session on close).
class Error : public std::runtime_error {
public:
    Error(ErrorCode code, const std::string& msg)
        : std::runtime_error(std::string(error_code_name(code)) + ": " + msg), code_(code) {}

    ErrorCode code() const { return code_; }

private:
    ErrorCode code_;
};

}  // namespace ens

/// Precondition check: throws std::invalid_argument when `cond` is false.
#define ENS_REQUIRE(cond, msg)                                                        \
    do {                                                                              \
        if (!(cond)) {                                                                \
            throw std::invalid_argument(                                              \
                ::ens::error_location(__FILE__, __LINE__,                             \
                                      std::string("requirement failed: ") + (msg)));  \
        }                                                                             \
    } while (0)

/// Internal invariant check: throws std::runtime_error when `cond` is false.
#define ENS_CHECK(cond, msg)                                                        \
    do {                                                                            \
        if (!(cond)) {                                                              \
            throw std::runtime_error(                                               \
                ::ens::error_location(__FILE__, __LINE__,                           \
                                      std::string("invariant violated: ") + (msg))); \
        }                                                                           \
    } while (0)

/// Unconditional failure for unreachable branches (e.g. exhaustive switch
/// fall-through on an enum that gained a value).
#define ENS_FAIL(msg)                                                             \
    throw std::runtime_error(                                                     \
        ::ens::error_location(__FILE__, __LINE__, std::string("failure: ") + (msg)))
