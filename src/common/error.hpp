#pragma once
// Error-handling helpers.
//
// The library signals contract violations and unrecoverable failures with
// exceptions (std::invalid_argument for bad arguments, std::runtime_error for
// state errors), per I.10 of the C++ Core Guidelines. The macros below attach
// file:line context so failures deep inside training loops are diagnosable.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ens {

/// Builds a "file:line: message" string for exception payloads.
inline std::string error_location(const char* file, int line, const std::string& msg) {
    std::ostringstream oss;
    oss << file << ':' << line << ": " << msg;
    return oss.str();
}

}  // namespace ens

/// Precondition check: throws std::invalid_argument when `cond` is false.
#define ENS_REQUIRE(cond, msg)                                                        \
    do {                                                                              \
        if (!(cond)) {                                                                \
            throw std::invalid_argument(                                              \
                ::ens::error_location(__FILE__, __LINE__,                             \
                                      std::string("requirement failed: ") + (msg)));  \
        }                                                                             \
    } while (0)

/// Internal invariant check: throws std::runtime_error when `cond` is false.
#define ENS_CHECK(cond, msg)                                                        \
    do {                                                                            \
        if (!(cond)) {                                                              \
            throw std::runtime_error(                                               \
                ::ens::error_location(__FILE__, __LINE__,                           \
                                      std::string("invariant violated: ") + (msg))); \
        }                                                                           \
    } while (0)

/// Unconditional failure for unreachable branches (e.g. exhaustive switch
/// fall-through on an enum that gained a value).
#define ENS_FAIL(msg)                                                             \
    throw std::runtime_error(                                                     \
        ::ens::error_location(__FILE__, __LINE__, std::string("failure: ") + (msg)))
