#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.hpp"
#include "common/error.hpp"

namespace ens {

namespace {
// Owning pool of the current thread, set for the lifetime of every worker.
// A nested parallel_for on the SAME pool runs inline: a worker that blocks
// waiting for queued sub-chunks can starve the very queue it is supposed
// to drain (guaranteed deadlock on a pool of size 1). Nesting onto a
// DIFFERENT pool still splits normally — that pool's workers are free to
// drain it (and, inlining their own nested calls, never block), so e.g. a
// dedicated serve fan-out pool keeps the global-pool tensor kernels
// parallel.
thread_local const ThreadPool* tl_worker_pool = nullptr;

// Set by mark_forked_child(): pools created before a fork() have no live
// workers in the child, so parallel_for must stop handing them chunks.
std::atomic<bool> g_forked_child{false};
}  // namespace

bool ThreadPool::on_worker_thread() { return tl_worker_pool != nullptr; }

void ThreadPool::mark_forked_child() { g_forked_child.store(true, std::memory_order_relaxed); }

ThreadPool::ThreadPool(std::size_t num_threads) {
    ENS_REQUIRE(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop() {
    tl_worker_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::enqueue(std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    if (begin >= end) {
        return;
    }
    if (tl_worker_pool == this || g_forked_child.load(std::memory_order_relaxed)) {
        fn(begin, end);
        return;
    }
    const std::size_t total = end - begin;
    const std::size_t num_chunks = std::min(total, workers_.size() + 1);
    if (num_chunks <= 1) {
        fn(begin, end);
        return;
    }

    struct SharedState {
        std::atomic<std::size_t> remaining;
        std::mutex done_mutex;
        std::condition_variable done_cv;
        std::exception_ptr error;
        std::mutex error_mutex;
    };
    SharedState state;
    state.remaining.store(num_chunks - 1);

    const std::size_t chunk = (total + num_chunks - 1) / num_chunks;
    // Chunks 1..n-1 go to the pool; chunk 0 runs on the calling thread.
    for (std::size_t c = 1; c < num_chunks; ++c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        enqueue([&state, &fn, lo, hi] {
            try {
                if (lo < hi) {
                    fn(lo, hi);
                }
            } catch (...) {
                const std::lock_guard<std::mutex> lock(state.error_mutex);
                if (!state.error) {
                    state.error = std::current_exception();
                }
            }
            // The decrement must happen under done_mutex: if it were done
            // outside, the caller could observe remaining == 0, return, and
            // destroy `state` while this thread is still about to lock
            // state.done_mutex (use-after-free on the mutex). Holding the
            // lock across decrement+notify makes the caller's wakeup
            // strictly ordered after this thread's last access.
            const std::lock_guard<std::mutex> lock(state.done_mutex);
            if (state.remaining.fetch_sub(1) == 1) {
                state.done_cv.notify_one();
            }
        });
    }

    try {
        fn(begin, std::min(end, begin + chunk));
    } catch (...) {
        const std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.error) {
            state.error = std::current_exception();
        }
    }

    {
        std::unique_lock<std::mutex> lock(state.done_mutex);
        state.done_cv.wait(lock, [&state] { return state.remaining.load() == 0; });
    }
    if (state.error) {
        std::rethrow_exception(state.error);
    }
}

ThreadPool& global_pool() {
    static ThreadPool pool{[] {
        const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
        return std::max<std::size_t>(1, env_size("ENS_THREADS", hw));
    }()};
    return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
    global_pool().parallel_for(begin, end, fn);
}

}  // namespace ens
