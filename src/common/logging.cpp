#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

#include "common/env.hpp"

namespace ens {

namespace {

std::atomic<LogLevel>& level_storage() {
    static std::atomic<LogLevel> level{parse_log_level(env_string("ENS_LOG_LEVEL", "warn"))};
    return level;
}

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "trace";
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        case LogLevel::kOff: return "off";
    }
    return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { level_storage().store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& text) {
    std::string lower(text.size(), '\0');
    std::transform(text.begin(), text.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (lower == "trace") return LogLevel::kTrace;
    if (lower == "debug") return LogLevel::kDebug;
    if (lower == "info") return LogLevel::kInfo;
    if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
    if (lower == "error") return LogLevel::kError;
    if (lower == "off" || lower == "none") return LogLevel::kOff;
    return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& message) {
    if (level < log_level()) {
        return;
    }
    static std::mutex mutex;
    const std::lock_guard<std::mutex> lock(mutex);
    std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace ens
