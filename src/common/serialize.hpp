#pragma once
// Little binary stream codec used for model checkpoints and the split-
// inference feature messages. All integers are written little-endian
// fixed-width; floats as IEEE-754 bit patterns. The format carries no
// versioning beyond a caller-supplied magic tag: both ends of the split
// pipeline are built from this repository.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ens {

class BinaryWriter {
public:
    explicit BinaryWriter(std::ostream& out) : out_(out) {}

    void write_u8(std::uint8_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_i64(std::int64_t v);
    void write_f32(float v);
    void write_f64(double v);
    void write_string(const std::string& s);
    void write_f32_array(const float* data, std::size_t count);
    void write_i64_vector(const std::vector<std::int64_t>& v);

    /// Total bytes written through this writer.
    std::uint64_t bytes_written() const { return bytes_; }

private:
    void write_raw(const void* data, std::size_t size);

    std::ostream& out_;
    std::uint64_t bytes_ = 0;
};

class BinaryReader {
public:
    explicit BinaryReader(std::istream& in) : in_(in) {}

    std::uint8_t read_u8();
    std::uint32_t read_u32();
    std::uint64_t read_u64();
    std::int64_t read_i64();
    float read_f32();
    double read_f64();
    std::string read_string();
    void read_f32_array(float* data, std::size_t count);
    std::vector<std::int64_t> read_i64_vector();

    // Hostile-input variants: the stored count is validated against `max`
    // BEFORE any allocation, so a corrupted or adversarial length prefix
    // fails with a clear message instead of a multi-gigabyte reserve.
    // Used by checkpoint/bundle loaders, which read untrusted files.
    std::string read_string_bounded(std::size_t max_size);
    std::vector<std::int64_t> read_i64_vector_bounded(std::size_t max_count);

private:
    void read_raw(void* data, std::size_t size);

    std::istream& in_;
};

}  // namespace ens
