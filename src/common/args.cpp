#include "common/args.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace ens {

ArgParser::ArgParser(int argc, const char* const* argv) {
    ENS_REQUIRE(argc >= 1, "ArgParser: empty argv");
    program_ = argv[0];
    int i = 1;
    if (i < argc && argv[i][0] != '-') {
        command_ = argv[i];
        ++i;
    }
    while (i < argc) {
        const std::string token = argv[i];
        ENS_REQUIRE(token.size() > 2 && token.rfind("--", 0) == 0,
                    "ArgParser: expected --flag, got '" + token + "'");
        const std::string flag = token.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-') {
            values_[flag] = argv[i + 1];
            i += 2;
        } else {
            values_[flag] = "";  // boolean switch
            ++i;
        }
    }
}

bool ArgParser::has(const std::string& flag) const {
    consumed_[flag] = true;
    return values_.count(flag) > 0;
}

std::string ArgParser::get_string(const std::string& flag, const std::string& fallback) const {
    consumed_[flag] = true;
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& flag, std::int64_t fallback) const {
    consumed_[flag] = true;
    const auto it = values_.find(flag);
    if (it == values_.end()) {
        return fallback;
    }
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    ENS_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                "ArgParser: --" + flag + " expects an integer, got '" + it->second + "'");
    return value;
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
    consumed_[flag] = true;
    const auto it = values_.find(flag);
    if (it == values_.end()) {
        return fallback;
    }
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    ENS_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                "ArgParser: --" + flag + " expects a number, got '" + it->second + "'");
    return value;
}

std::vector<std::string> ArgParser::unconsumed() const {
    std::vector<std::string> unknown;
    for (const auto& [flag, value] : values_) {
        if (!consumed_.count(flag)) {
            unknown.push_back(flag);
        }
    }
    return unknown;
}

}  // namespace ens
