#include "common/serialize.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace ens {

void BinaryWriter::write_raw(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    ENS_CHECK(out_.good(), "binary write failed");
    bytes_ += size;
}

void BinaryWriter::write_u8(std::uint8_t v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
    ENS_REQUIRE(s.size() <= std::numeric_limits<std::uint32_t>::max(), "string too long");
    write_u32(static_cast<std::uint32_t>(s.size()));
    if (!s.empty()) {
        write_raw(s.data(), s.size());
    }
}

void BinaryWriter::write_f32_array(const float* data, std::size_t count) {
    write_u64(count);
    if (count > 0) {
        write_raw(data, count * sizeof(float));
    }
}

void BinaryWriter::write_i64_vector(const std::vector<std::int64_t>& v) {
    write_u64(v.size());
    if (!v.empty()) {
        write_raw(v.data(), v.size() * sizeof(std::int64_t));
    }
}

void BinaryReader::read_raw(void* data, std::size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    ENS_CHECK(in_.gcount() == static_cast<std::streamsize>(size), "binary read truncated");
}

std::uint8_t BinaryReader::read_u8() {
    std::uint8_t v = 0;
    read_raw(&v, sizeof v);
    return v;
}

std::uint32_t BinaryReader::read_u32() {
    std::uint32_t v = 0;
    read_raw(&v, sizeof v);
    return v;
}

std::uint64_t BinaryReader::read_u64() {
    std::uint64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
}

std::int64_t BinaryReader::read_i64() {
    std::int64_t v = 0;
    read_raw(&v, sizeof v);
    return v;
}

float BinaryReader::read_f32() {
    float v = 0;
    read_raw(&v, sizeof v);
    return v;
}

double BinaryReader::read_f64() {
    double v = 0;
    read_raw(&v, sizeof v);
    return v;
}

std::string BinaryReader::read_string() {
    const std::uint32_t size = read_u32();
    std::string s(size, '\0');
    if (size > 0) {
        read_raw(s.data(), size);
    }
    return s;
}

void BinaryReader::read_f32_array(float* data, std::size_t count) {
    const std::uint64_t stored = read_u64();
    ENS_CHECK(stored == count, "f32 array length mismatch");
    if (count > 0) {
        read_raw(data, count * sizeof(float));
    }
}

std::vector<std::int64_t> BinaryReader::read_i64_vector() {
    const std::uint64_t size = read_u64();
    std::vector<std::int64_t> v(size);
    if (size > 0) {
        read_raw(v.data(), size * sizeof(std::int64_t));
    }
    return v;
}

std::string BinaryReader::read_string_bounded(std::size_t max_size) {
    const std::uint32_t size = read_u32();
    ENS_CHECK(size <= max_size, "stored string length " + std::to_string(size) +
                                    " exceeds bound " + std::to_string(max_size));
    std::string s(size, '\0');
    if (size > 0) {
        read_raw(s.data(), size);
    }
    return s;
}

std::vector<std::int64_t> BinaryReader::read_i64_vector_bounded(std::size_t max_count) {
    const std::uint64_t size = read_u64();
    ENS_CHECK(size <= max_count, "stored vector length " + std::to_string(size) +
                                     " exceeds bound " + std::to_string(max_count));
    std::vector<std::int64_t> v(static_cast<std::size_t>(size));
    if (size > 0) {
        read_raw(v.data(), static_cast<std::size_t>(size) * sizeof(std::int64_t));
    }
    return v;
}

}  // namespace ens
