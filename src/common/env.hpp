#pragma once
// Typed environment-variable lookups, used for runtime knobs
// (ENS_THREADS, ENS_BENCH_SCALE, ENS_LOG_LEVEL) without a config-file
// dependency.

#include <cstddef>
#include <string>

namespace ens {

/// Returns the variable's value or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the variable parsed as a size, or `fallback` when unset or
/// unparseable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Returns the variable parsed as a double, or `fallback`.
double env_double(const char* name, double fallback);

}  // namespace ens
