#pragma once
// Shared error-typing helpers for loaders that treat on-disk bytes as
// UNTRUSTED input (nn/checkpoint, nn/arch, serve/bundle). The convention
// they enforce, in one place so it cannot drift per file: every failure
// surfaces as ens::Error{checkpoint_error} whose message leads with the
// context (the offending file path, for file-backed loads), and stray
// low-level exceptions (BinaryReader truncation, stream faults) are
// re-typed rather than leaking raw.

#include <string>
#include <utility>

#include "common/error.hpp"

namespace ens {

/// Throws a typed checkpoint_error reading "context: msg".
[[noreturn]] inline void checkpoint_fail(const std::string& context, const std::string& msg) {
    throw Error(ErrorCode::checkpoint_error, context + ": " + msg);
}

/// Runs `body`, passing typed ens::Errors through and converting anything
/// else into checkpoint_fail(context, "<label>: <what>") — `label` names
/// the artifact kind ("truncated or corrupt checkpoint" / "... bundle
/// file" / "... arch spec").
template <typename Body>
auto with_checkpoint_typing(const std::string& context, const char* label, Body&& body)
    -> decltype(body()) {
    try {
        return std::forward<Body>(body)();
    } catch (const Error&) {
        throw;
    } catch (const std::exception& e) {
        checkpoint_fail(context, std::string(label) + ": " + e.what());
    }
}

}  // namespace ens
