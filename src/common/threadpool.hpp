#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The NN substrate uses this for data-parallel work inside matmul/im2col,
// where each range chunk is independent. The pool is created once and
// reused; ens::global_pool() returns a process-wide instance sized to the
// hardware concurrency (overridable with the ENS_THREADS env var).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ens {

class ThreadPool {
public:
    /// Spawns `num_threads` workers (>= 1).
    explicit ThreadPool(std::size_t num_threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    std::size_t size() const { return workers_.size(); }

    /// Runs fn(begin..end) split into roughly equal chunks across the pool,
    /// blocking until all chunks complete. The calling thread participates,
    /// so a pool of size 1 still gets 1 worker + caller. Exceptions from
    /// chunks are rethrown (first one wins).
    ///
    /// Re-entrancy: when called from one of THIS pool's worker threads
    /// (e.g. a serve batch fan-out chunk whose body forward hits
    /// parallel_for again inside matmul/im2col), the range runs inline on
    /// that worker instead of being split — blocking a worker on sub-chunks
    /// it is itself supposed to drain would deadlock the pool. Calls onto a
    /// different pool split normally (its workers can drain them).
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// True on threads owned by any ThreadPool (exposed for tests).
    static bool on_worker_thread();

    /// Call in a CHILD process immediately after fork(): worker threads do
    /// not survive fork, so any pool created before it (notably the lazy
    /// global_pool()) would enqueue chunks no one drains. After this call
    /// every parallel_for in the process runs its range inline on the
    /// calling thread instead. Process-wide and irreversible — meant for
    /// forked test daemons and fork-per-request servers, which should _exit
    /// rather than run static destructors on inherited pools.
    static void mark_forked_child();

private:
    void worker_loop();
    void enqueue(std::function<void()> task);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Process-wide pool; size = ENS_THREADS env var if set, else
/// hardware_concurrency.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace ens
