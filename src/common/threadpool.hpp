#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The NN substrate uses this for data-parallel work inside matmul/im2col,
// where each range chunk is independent. The pool is created once and
// reused; ens::global_pool() returns a process-wide instance sized to the
// hardware concurrency (overridable with the ENS_THREADS env var).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ens {

class ThreadPool {
public:
    /// Spawns `num_threads` workers (>= 1).
    explicit ThreadPool(std::size_t num_threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    std::size_t size() const { return workers_.size(); }

    /// Runs fn(begin..end) split into roughly equal chunks across the pool,
    /// blocking until all chunks complete. The calling thread participates,
    /// so a pool of size 1 still gets 1 worker + caller. Exceptions from
    /// chunks are rethrown (first one wins).
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t, std::size_t)>& fn);

private:
    void worker_loop();
    void enqueue(std::function<void()> task);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Process-wide pool; size = ENS_THREADS env var if set, else
/// hardware_concurrency.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace ens
