#include "nn/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/typed_error.hpp"

namespace ens::nn {

namespace {
constexpr std::uint32_t kMagic = 0x454E5331;       // "ENS1": parameters only
constexpr std::uint32_t kMagicState = 0x454E5332;  // "ENS2": parameters + buffers

// Hostile-input bounds, checked before any allocation. Parameter names are
// short identifiers ("weight", "noise_mask"); tensors in this library are
// rank <= 4, with headroom.
constexpr std::size_t kMaxNameLength = 256;
constexpr std::size_t kMaxRank = 8;

[[noreturn]] void fail(const std::string& context, const std::string& msg) {
    checkpoint_fail(context, msg);
}

std::string hex(std::uint32_t v) {
    std::ostringstream oss;
    oss << "0x" << std::hex << v;
    return oss.str();
}

std::string dims_to_string(const std::vector<std::int64_t>& dims) {
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < dims.size(); ++i) {
        oss << (i > 0 ? ", " : "") << dims[i];
    }
    oss << ']';
    return oss.str();
}

/// One named-tensor record: name + shape + f32 payload, validated field by
/// field against the destination tensor BEFORE its data is read, so a
/// corrupt record can neither allocate (bounded reads) nor silently load
/// into the wrong slot.
void load_named_tensor(BinaryReader& reader, const std::string& kind,
                       const std::string& expected_name, Tensor& destination,
                       const std::string& context) {
    const std::string name = reader.read_string_bounded(kMaxNameLength);
    if (name != expected_name) {
        fail(context, kind + " name mismatch: checkpoint holds \"" + name +
                          "\", model expects \"" + expected_name + "\"");
    }
    const std::vector<std::int64_t> dims = reader.read_i64_vector_bounded(kMaxRank);
    if (dims != destination.shape().dims()) {
        fail(context, kind + " shape mismatch for \"" + name + "\": checkpoint holds " +
                          dims_to_string(dims) + ", model expects " +
                          destination.shape().to_string());
    }
    // read_f32_array validates the stored element count against the (shape-
    // checked) expected count before moving bytes into the existing tensor
    // storage — no allocation happens on this path.
    reader.read_f32_array(destination.data(), static_cast<std::size_t>(destination.numel()));
}

void load_parameters_impl(Layer& layer, BinaryReader& reader, const std::string& context) {
    const std::uint32_t magic = reader.read_u32();
    if (magic != kMagic) {
        fail(context, "bad checkpoint magic " + hex(magic) + " (want " + hex(kMagic) + ")");
    }
    const auto params = layer.parameters();
    const std::uint64_t count = reader.read_u64();
    if (count != params.size()) {
        fail(context, "parameter count mismatch: checkpoint holds " + std::to_string(count) +
                          ", model expects " + std::to_string(params.size()));
    }
    for (Parameter* p : params) {
        load_named_tensor(reader, "parameter", p->name, p->value, context);
    }
    // Restored values invalidate any derived state (packed GEMM panels).
    layer.on_parameters_changed();
}

void load_state_impl(Layer& layer, BinaryReader& reader, const std::string& context) {
    const std::uint32_t magic = reader.read_u32();
    if (magic == kMagic) {
        fail(context,
             "parameters-only checkpoint where a full state checkpoint (parameters + "
             "buffers) is required — was this written with save_parameters instead of "
             "save_state?");
    }
    if (magic != kMagicState) {
        fail(context,
             "bad state checkpoint magic " + hex(magic) + " (want " + hex(kMagicState) + ")");
    }
    load_parameters_impl(layer, reader, context);
    const auto state = layer.buffers();
    const std::uint64_t count = reader.read_u64();
    if (count != state.size()) {
        fail(context, "buffer count mismatch: checkpoint holds " + std::to_string(count) +
                          ", model expects " + std::to_string(state.size()));
    }
    for (const Layer::NamedBuffer& buffer : state) {
        load_named_tensor(reader, "buffer", buffer.name, *buffer.tensor, context);
    }
}

template <typename Body>
void run_typed(const std::string& context, Body&& body) {
    with_checkpoint_typing(context, "truncated or corrupt checkpoint", std::forward<Body>(body));
}

}  // namespace

void save_parameters(Layer& layer, std::ostream& out) {
    BinaryWriter writer(out);
    writer.write_u32(kMagic);
    const auto params = layer.parameters();
    writer.write_u64(params.size());
    for (const Parameter* p : params) {
        writer.write_string(p->name);
        writer.write_i64_vector(p->value.shape().dims());
        writer.write_f32_array(p->value.data(), static_cast<std::size_t>(p->value.numel()));
    }
}

void load_parameters(Layer& layer, std::istream& in, const std::string& context) {
    BinaryReader reader(in);
    run_typed(context, [&] { load_parameters_impl(layer, reader, context); });
}

void save_parameters_file(Layer& layer, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
        fail(path, "cannot open checkpoint for writing");
    }
    save_parameters(layer, out);
    // Flush before declaring success: a full disk surfacing only in the
    // unchecked destructor would leave a truncated checkpoint behind.
    out.flush();
    if (!out.good()) {
        fail(path, "checkpoint write failed (disk full?)");
    }
}

void load_parameters_file(Layer& layer, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        fail(path, "cannot open checkpoint for reading");
    }
    load_parameters(layer, in, path);
}

void save_state(Layer& layer, std::ostream& out) {
    BinaryWriter writer(out);
    writer.write_u32(kMagicState);
    save_parameters(layer, out);
    const auto state = layer.buffers();
    writer.write_u64(state.size());
    for (const Layer::NamedBuffer& buffer : state) {
        writer.write_string(buffer.name);
        writer.write_i64_vector(buffer.tensor->shape().dims());
        writer.write_f32_array(buffer.tensor->data(),
                               static_cast<std::size_t>(buffer.tensor->numel()));
    }
}

void load_state(Layer& layer, std::istream& in, const std::string& context) {
    BinaryReader reader(in);
    run_typed(context, [&] { load_state_impl(layer, reader, context); });
}

void save_state_file(Layer& layer, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
        fail(path, "cannot open checkpoint for writing");
    }
    save_state(layer, out);
    out.flush();
    if (!out.good()) {
        fail(path, "checkpoint write failed (disk full?)");
    }
}

void load_state_file(Layer& layer, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        fail(path, "cannot open checkpoint for reading");
    }
    load_state(layer, in, path);
}

}  // namespace ens::nn
