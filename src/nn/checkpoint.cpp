#include "nn/checkpoint.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace ens::nn {

namespace {
constexpr std::uint32_t kMagic = 0x454E5331;       // "ENS1": parameters only
constexpr std::uint32_t kMagicState = 0x454E5332;  // "ENS2": parameters + buffers
}

void save_parameters(Layer& layer, std::ostream& out) {
    BinaryWriter writer(out);
    writer.write_u32(kMagic);
    const auto params = layer.parameters();
    writer.write_u64(params.size());
    for (const Parameter* p : params) {
        writer.write_string(p->name);
        writer.write_i64_vector(p->value.shape().dims());
        writer.write_f32_array(p->value.data(), static_cast<std::size_t>(p->value.numel()));
    }
}

void load_parameters(Layer& layer, std::istream& in) {
    BinaryReader reader(in);
    ENS_CHECK(reader.read_u32() == kMagic, "checkpoint: bad magic");
    const auto params = layer.parameters();
    const std::uint64_t count = reader.read_u64();
    ENS_CHECK(count == params.size(), "checkpoint: parameter count mismatch");
    for (Parameter* p : params) {
        const std::string name = reader.read_string();
        ENS_CHECK(name == p->name, "checkpoint: parameter name mismatch: " + name);
        const Shape shape{reader.read_i64_vector()};
        ENS_CHECK(shape == p->value.shape(), "checkpoint: shape mismatch for " + name);
        reader.read_f32_array(p->value.data(), static_cast<std::size_t>(p->value.numel()));
    }
}

void save_parameters_file(Layer& layer, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    ENS_REQUIRE(out.good(), "cannot open checkpoint for writing: " + path);
    save_parameters(layer, out);
}

void load_parameters_file(Layer& layer, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    ENS_REQUIRE(in.good(), "cannot open checkpoint for reading: " + path);
    load_parameters(layer, in);
}

void save_state(Layer& layer, std::ostream& out) {
    BinaryWriter writer(out);
    writer.write_u32(kMagicState);
    save_parameters(layer, out);
    const auto state = layer.buffers();
    writer.write_u64(state.size());
    for (const Layer::NamedBuffer& buffer : state) {
        writer.write_string(buffer.name);
        writer.write_i64_vector(buffer.tensor->shape().dims());
        writer.write_f32_array(buffer.tensor->data(),
                               static_cast<std::size_t>(buffer.tensor->numel()));
    }
}

void load_state(Layer& layer, std::istream& in) {
    BinaryReader reader(in);
    ENS_CHECK(reader.read_u32() == kMagicState, "checkpoint: bad state magic");
    load_parameters(layer, in);
    const auto state = layer.buffers();
    const std::uint64_t count = reader.read_u64();
    ENS_CHECK(count == state.size(), "checkpoint: buffer count mismatch");
    for (const Layer::NamedBuffer& buffer : state) {
        const std::string name = reader.read_string();
        ENS_CHECK(name == buffer.name, "checkpoint: buffer name mismatch: " + name);
        const Shape shape{reader.read_i64_vector()};
        ENS_CHECK(shape == buffer.tensor->shape(), "checkpoint: buffer shape mismatch: " + name);
        reader.read_f32_array(buffer.tensor->data(),
                              static_cast<std::size_t>(buffer.tensor->numel()));
    }
}

void save_state_file(Layer& layer, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    ENS_REQUIRE(out.good(), "cannot open checkpoint for writing: " + path);
    save_state(layer, out);
}

void load_state_file(Layer& layer, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    ENS_REQUIRE(in.good(), "cannot open checkpoint for reading: " + path);
    load_state(layer, in);
}

}  // namespace ens::nn
