#include "nn/conv2d.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {

void apply_epilogue(Epilogue epilogue, float slope, float* data, std::int64_t n) {
    switch (epilogue) {
        case Epilogue::none:
            return;
        case Epilogue::relu:
            for (std::int64_t i = 0; i < n; ++i) {
                data[i] = data[i] > 0.0f ? data[i] : 0.0f;
            }
            return;
        case Epilogue::leaky_relu:
            for (std::int64_t i = 0; i < n; ++i) {
                data[i] = data[i] > 0.0f ? data[i] : slope * data[i];
            }
            return;
    }
}

std::string epilogue_suffix(Epilogue epilogue, float slope) {
    switch (epilogue) {
        case Epilogue::none: return "";
        case Epilogue::relu: return "+relu";
        case Epilogue::leaky_relu: return "+leaky_relu(" + std::to_string(slope) + ")";
    }
    return "";
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng, bool with_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      with_bias_(with_bias) {
    ENS_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 && padding >= 0,
                "Conv2d: bad geometry");
    const std::int64_t fan_in = in_channels * kernel * kernel;
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    weight_ = Parameter("weight", Tensor::randn(Shape{out_channels, fan_in}, rng, 0.0f, stddev));
    if (with_bias_) {
        bias_ = Parameter("bias", Tensor::zeros(Shape{out_channels}));
    }
}

ConvGeometry Conv2d::geometry_for(const Tensor& input) const {
    ENS_REQUIRE(input.rank() == 4 && input.dim(1) == in_channels_,
                "Conv2d: input shape mismatch, got " + input.shape().to_string());
    ConvGeometry geom;
    geom.in_channels = in_channels_;
    geom.in_h = input.dim(2);
    geom.in_w = input.dim(3);
    geom.kernel_h = kernel_;
    geom.kernel_w = kernel_;
    geom.stride = stride_;
    geom.padding = padding_;
    ENS_REQUIRE(geom.out_h() > 0 && geom.out_w() > 0, "Conv2d: output collapses to zero size");
    return geom;
}

Tensor Conv2d::forward(const Tensor& input) {
    const ConvGeometry geom = geometry_for(input);
    cached_input_ = input;
    const std::int64_t batch = input.dim(0);
    const std::int64_t positions = geom.out_positions();
    Tensor output(Shape{batch, out_channels_, geom.out_h(), geom.out_w()});

    const std::int64_t in_plane = in_channels_ * geom.in_h * geom.in_w;
    const std::int64_t out_plane = out_channels_ * positions;

    // Eval mode reuses a packed copy of the weight across every image (and
    // every request — the pack survives between forwards). The packed and
    // unpacked paths are bit-identical (see gemm_kernel.hpp), so toggling
    // modes never changes outputs.
    const bool use_packed = !training_;
    if (use_packed && !packed_weight_.defined()) {
        kernel::pack_a_into(packed_weight_, weight_.value.data(), weight_.value.dim(1),
                            /*trans_a=*/false, out_channels_, weight_.value.dim(1));
    }

    parallel_for(0, static_cast<std::size_t>(batch), [&](std::size_t lo, std::size_t hi) {
        Tensor col(Shape{geom.patch_size(), positions});
        Tensor out_mat(Shape{out_channels_, positions});
        for (std::size_t n = lo; n < hi; ++n) {
            im2col(input.data() + static_cast<std::int64_t>(n) * in_plane, geom, col.data());
            if (use_packed) {
                kernel::gemm_packed_a(packed_weight_, col.data(), positions, /*trans_b=*/false,
                                      positions, out_mat.data(), positions, 1.0f, 0.0f,
                                      /*parallel=*/false);
            } else {
                gemm_serial(weight_.value, false, col, false, out_mat);
            }
            float* dst = output.data() + static_cast<std::int64_t>(n) * out_plane;
            const float* src = out_mat.data();
            if (with_bias_) {
                const float* b = bias_.value.data();
                for (std::int64_t c = 0; c < out_channels_; ++c) {
                    for (std::int64_t p = 0; p < positions; ++p) {
                        dst[c * positions + p] = src[c * positions + p] + b[c];
                    }
                }
            } else {
                std::copy(src, src + out_plane, dst);
            }
            apply_epilogue(epilogue_, epilogue_slope_, dst, out_plane);
        }
    });
    return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    ENS_CHECK(epilogue_ == Epilogue::none,
              "Conv2d::backward: layer has a fused activation epilogue (compiled, "
              "inference-only)");
    ENS_CHECK(cached_input_.defined(), "Conv2d::backward before forward");
    const ConvGeometry geom = geometry_for(cached_input_);
    const std::int64_t batch = cached_input_.dim(0);
    const std::int64_t positions = geom.out_positions();
    ENS_REQUIRE(grad_output.rank() == 4 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_channels_ && grad_output.dim(2) == geom.out_h() &&
                    grad_output.dim(3) == geom.out_w(),
                "Conv2d: grad shape mismatch");

    Tensor grad_input(cached_input_.shape());
    const std::int64_t in_plane = in_channels_ * geom.in_h * geom.in_w;
    const std::int64_t out_plane = out_channels_ * positions;
    const bool want_wgrad = weight_.requires_grad;

    // Per-chunk weight-gradient partials, keyed by chunk start so the final
    // reduction below runs in a deterministic order regardless of thread
    // scheduling (float addition is not associative).
    std::mutex accum_mutex;
    std::map<std::size_t, std::pair<Tensor, Tensor>> partials;
    parallel_for(0, static_cast<std::size_t>(batch), [&](std::size_t lo, std::size_t hi) {
        Tensor col(Shape{geom.patch_size(), positions});
        Tensor dcol(Shape{geom.patch_size(), positions});
        Tensor local_wgrad = want_wgrad ? Tensor::zeros(weight_.value.shape()) : Tensor();
        Tensor local_bgrad =
            (want_wgrad && with_bias_) ? Tensor::zeros(Shape{out_channels_}) : Tensor();

        for (std::size_t n = lo; n < hi; ++n) {
            const float* x_n = cached_input_.data() + static_cast<std::int64_t>(n) * in_plane;
            const Tensor dy_mat =
                Tensor::from_vector(Shape{out_channels_, positions},
                                    std::vector<float>(
                                        grad_output.data() + static_cast<std::int64_t>(n) * out_plane,
                                        grad_output.data() +
                                            static_cast<std::int64_t>(n + 1) * out_plane));

            if (want_wgrad) {
                // dW += dY_n @ col_n^T  (recompute col; cheaper than caching
                // the whole batch of patch matrices)
                im2col(x_n, geom, col.data());
                gemm_serial(dy_mat, false, col, true, local_wgrad, 1.0f, 1.0f);
                if (with_bias_) {
                    const float* g = dy_mat.data();
                    float* db = local_bgrad.data();
                    for (std::int64_t c = 0; c < out_channels_; ++c) {
                        for (std::int64_t p = 0; p < positions; ++p) {
                            db[c] += g[c * positions + p];
                        }
                    }
                }
            }

            // dcol = W^T @ dY_n ; scatter back to the input gradient.
            gemm_serial(weight_.value, true, dy_mat, false, dcol);
            col2im(dcol.data(), geom, grad_input.data() + static_cast<std::int64_t>(n) * in_plane);
        }

        if (want_wgrad) {
            const std::lock_guard<std::mutex> lock(accum_mutex);
            partials.emplace(lo, std::make_pair(std::move(local_wgrad), std::move(local_bgrad)));
        }
    });
    for (auto& [lo, grads] : partials) {
        weight_.grad.add_(grads.first);
        if (with_bias_) {
            bias_.grad.add_(grads.second);
        }
    }
    return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
    if (with_bias_) {
        return {&weight_, &bias_};
    }
    return {&weight_};
}

void Conv2d::set_training(bool training) {
    Layer::set_training(training);
    if (training) {
        packed_weight_.clear();
    }
}

void Conv2d::on_parameters_changed() { packed_weight_.clear(); }

void Conv2d::assign_parameters(const Tensor& weight, const Tensor* bias) {
    ENS_REQUIRE(weight.shape() == weight_.value.shape(),
                "Conv2d::assign_parameters: weight shape " + weight.shape().to_string() +
                    " != " + weight_.value.shape().to_string());
    ENS_REQUIRE((bias != nullptr) == with_bias_,
                "Conv2d::assign_parameters: bias presence must match with_bias");
    weight_.value.copy_from(weight);
    if (bias != nullptr) {
        ENS_REQUIRE(bias->shape() == bias_.value.shape(),
                    "Conv2d::assign_parameters: bias shape mismatch");
        bias_.value.copy_from(*bias);
    }
    on_parameters_changed();
}

void Conv2d::set_epilogue(Epilogue epilogue, float slope) {
    epilogue_ = epilogue;
    epilogue_slope_ = slope;
}

void Conv2d::prepare_inference() {
    set_training(false);
    kernel::pack_a_into(packed_weight_, weight_.value.data(), weight_.value.dim(1),
                        /*trans_a=*/false, out_channels_, weight_.value.dim(1));
}

std::string Conv2d::name() const {
    return "Conv2d(" + std::to_string(in_channels_) + "->" + std::to_string(out_channels_) +
           ", k" + std::to_string(kernel_) + " s" + std::to_string(stride_) + " p" +
           std::to_string(padding_) + ")" + epilogue_suffix(epilogue_, epilogue_slope_);
}

}  // namespace ens::nn
