#pragma once
// Inverted dropout. Used by the DR-single / DR-10 baseline defenses
// (He et al., IoT-J'21) which keep dropout ACTIVE at inference time as a
// perturbation mechanism — hence `active_in_eval`.

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace ens::nn {

class Dropout final : public Layer {
public:
    /// `p` is the drop probability. With `active_in_eval`, masks are drawn
    /// in eval mode too (defense usage); otherwise eval is the identity.
    Dropout(float p, Rng rng, bool active_in_eval = false);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override;

    float drop_probability() const { return p_; }
    bool active_in_eval() const { return active_in_eval_; }

private:
    bool active() const { return training() || active_in_eval_; }

    float p_;
    Rng rng_;
    bool active_in_eval_;
    Tensor cached_mask_;
    bool last_forward_active_ = false;
};

}  // namespace ens::nn
