#include "nn/activations.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ens::nn {

Tensor ReLU::forward(const Tensor& input) {
    Tensor output(input.shape());
    cached_mask_ = Tensor(input.shape());
    const float* x = input.data();
    float* y = output.data();
    float* m = cached_mask_.data();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        const bool positive = x[i] > 0.0f;
        y[i] = positive ? x[i] : 0.0f;
        m[i] = positive ? 1.0f : 0.0f;
    }
    return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_mask_.defined(), "ReLU::backward before forward");
    ENS_REQUIRE(grad_output.shape() == cached_mask_.shape(), "ReLU: grad shape mismatch");
    Tensor grad_input = grad_output.clone();
    grad_input.mul_(cached_mask_);
    return grad_input;
}

Tensor LeakyReLU::forward(const Tensor& input) {
    cached_input_ = input;
    Tensor output(input.shape());
    const float* x = input.data();
    float* y = output.data();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        y[i] = x[i] > 0.0f ? x[i] : slope_ * x[i];
    }
    return output;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_input_.defined(), "LeakyReLU::backward before forward");
    ENS_REQUIRE(grad_output.shape() == cached_input_.shape(), "LeakyReLU: grad shape mismatch");
    Tensor grad_input(grad_output.shape());
    const float* x = cached_input_.data();
    const float* dy = grad_output.data();
    float* dx = grad_input.data();
    const std::int64_t n = grad_output.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        dx[i] = x[i] > 0.0f ? dy[i] : slope_ * dy[i];
    }
    return grad_input;
}

std::string LeakyReLU::name() const {
    return "LeakyReLU(" + std::to_string(slope_) + ")";
}

Tensor Sigmoid::forward(const Tensor& input) {
    Tensor output(input.shape());
    const float* x = input.data();
    float* y = output.data();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        y[i] = 1.0f / (1.0f + std::exp(-x[i]));
    }
    cached_output_ = output;
    return output;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_output_.defined(), "Sigmoid::backward before forward");
    ENS_REQUIRE(grad_output.shape() == cached_output_.shape(), "Sigmoid: grad shape mismatch");
    Tensor grad_input(grad_output.shape());
    const float* y = cached_output_.data();
    const float* dy = grad_output.data();
    float* dx = grad_input.data();
    const std::int64_t n = grad_output.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        dx[i] = dy[i] * y[i] * (1.0f - y[i]);
    }
    return grad_input;
}

Tensor Tanh::forward(const Tensor& input) {
    Tensor output(input.shape());
    const float* x = input.data();
    float* y = output.data();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        y[i] = std::tanh(x[i]);
    }
    cached_output_ = output;
    return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_output_.defined(), "Tanh::backward before forward");
    ENS_REQUIRE(grad_output.shape() == cached_output_.shape(), "Tanh: grad shape mismatch");
    Tensor grad_input(grad_output.shape());
    const float* y = cached_output_.data();
    const float* dy = grad_output.data();
    float* dx = grad_input.data();
    const std::int64_t n = grad_output.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        dx[i] = dy[i] * (1.0f - y[i] * y[i]);
    }
    return grad_input;
}

}  // namespace ens::nn
