#include "nn/sequential.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ens::nn {

Layer& Sequential::push_back(LayerPtr layer) {
    ENS_REQUIRE(layer != nullptr, "Sequential: null layer");
    layer->set_training(training());
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

Layer& Sequential::insert(std::size_t index, LayerPtr layer) {
    ENS_REQUIRE(layer != nullptr, "Sequential: null layer");
    ENS_REQUIRE(index <= layers_.size(), "Sequential::insert: index out of range");
    layer->set_training(training());
    const auto it = layers_.insert(layers_.begin() + static_cast<std::ptrdiff_t>(index),
                                   std::move(layer));
    return **it;
}

Layer& Sequential::layer(std::size_t i) {
    ENS_REQUIRE(i < layers_.size(), "Sequential: layer index out of range");
    return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
    ENS_REQUIRE(i < layers_.size(), "Sequential: layer index out of range");
    return *layers_[i];
}

std::vector<LayerPtr> Sequential::release_slice(std::size_t begin, std::size_t end) {
    ENS_REQUIRE(begin <= end && end <= layers_.size(), "Sequential: bad slice range");
    std::vector<LayerPtr> out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        out.push_back(std::move(layers_[i]));
    }
    layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(begin),
                  layers_.begin() + static_cast<std::ptrdiff_t>(end));
    return out;
}

Tensor Sequential::forward(const Tensor& input) {
    Tensor x = input;
    for (auto& layer : layers_) {
        x = layer->forward(x);
    }
    return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

std::vector<Parameter*> Sequential::parameters() {
    std::vector<Parameter*> out;
    for (auto& layer : layers_) {
        const auto params = layer->parameters();
        out.insert(out.end(), params.begin(), params.end());
    }
    return out;
}

std::vector<Layer::NamedBuffer> Sequential::buffers() {
    std::vector<NamedBuffer> out;
    for (auto& layer : layers_) {
        const auto state = layer->buffers();
        out.insert(out.end(), state.begin(), state.end());
    }
    return out;
}

std::string Sequential::name() const {
    std::ostringstream oss;
    oss << "Sequential[";
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (i > 0) {
            oss << ", ";
        }
        oss << layers_[i]->name();
    }
    oss << ']';
    return oss.str();
}

void Sequential::set_training(bool training) {
    Layer::set_training(training);
    for (auto& layer : layers_) {
        layer->set_training(training);
    }
}

void Sequential::on_parameters_changed() {
    for (auto& layer : layers_) {
        layer->on_parameters_changed();
    }
}

void Sequential::prepare_inference() {
    Layer::set_training(false);
    for (auto& layer : layers_) {
        layer->prepare_inference();
    }
}

}  // namespace ens::nn
