#pragma once
// Graph compiler for inference-only deployments.
//
// PR 5's nn::ArchSpec made network structure a serializable recipe; this
// turns the built graph into a compilation surface. compile_for_inference
// runs a small pass pipeline (mirroring the pass-manager shape of
// npu_compiler's graph_transformer) over a live layer tree whose
// checkpointed state is already loaded, rewriting it for eval-only
// serving:
//
//   fold-batchnorm    Conv2d -> BatchNorm2d pairs collapse into one Conv2d
//                     with scaled weights and a synthesized bias
//                     (W' = W * gamma/sqrt(rvar+eps), b' = beta - scale *
//                     rmean + scale * b). BasicBlocks become
//                     CompiledResidual (both convs + the optional 1x1
//                     projection folded, ReLUs fused). Tolerance-class:
//                     float re-association moves the last bits.
//   bake-noise        a non-trainable rank-1 FixedNoise mask adjacent to a
//                     Linear inside a Sequential folds into the Linear's
//                     bias ([FixedNoise, Linear] -> b' = b + W m;
//                     [Linear, FixedNoise] -> b' = b + m, only while no
//                     epilogue is fused — relu(x) + m != relu(x + m)).
//                     Trainable masks, non-rank-1 masks and masks not
//                     adjacent to a Linear are left in place (identity),
//                     or refused typed under require_noise_baking. The
//                     split-point noise of a served deployment
//                     (ClientArtifacts.noise) is NEVER passed through the
//                     compiler — it is the wire-observable defense itself.
//   fuse-activations  ReLU / LeakyReLU directly after a Conv2d/Linear
//                     becomes that layer's output-loop epilogue. Bit-exact
//                     (same scalar expression, no intermediate tensor).
//   repack            prepare_inference() over the rewritten tree, so the
//                     GEMM packed-weight caches reflect the REWRITTEN
//                     weights (assign_parameters invalidated the old
//                     packs).
//
// Compiled graphs are runtime artifacts: backward() refuses on any layer
// with a fused epilogue and on CompiledResidual, and describe_layer
// refuses to export them as specs — a bundle always stores the
// uncompiled graph, and the `optimize` flag recompiles at every boot.
//
// The serving surface (ServeConfig::optimize, BodyHost::from_bundle,
// DeploymentManager, serve_daemon --optimize) compiles server BODIES only.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace ens::nn {

struct CompileOptions {
    bool fold_batchnorm = true;
    bool fuse_activations = true;
    bool bake_noise = true;
    /// Strict mode: throw ens::Error{compile_error} if any FixedNoise
    /// survives the bake pass instead of degrading to identity. For
    /// deployments whose threat model requires masks to live inside fused
    /// weights rather than as a separable layer.
    bool require_noise_baking = false;
    /// Re-run prepare_inference over the compiled tree so packed-weight
    /// caches are rebuilt eagerly from the rewritten weights.
    bool repack = true;
};

/// What each pass did, for logs and tests.
struct CompileReport {
    struct PassStats {
        std::string pass;
        std::size_t rewrites = 0;
    };
    std::vector<PassStats> passes;

    /// True when any pass rewrote anything (identity degradation check).
    bool changed() const;
    std::string to_string() const;
};

/// Runs the enabled passes over `root` (consuming it) and returns the
/// compiled graph. Rewrites happen inside Sequential child lists (nested
/// Sequentials recursed) and on BasicBlock nodes; a graph with no foldable
/// pattern comes back functionally identical (bit-exact outputs). The
/// input graph must already hold its final (checkpoint-loaded) state —
/// folding bakes the CURRENT running statistics and masks in.
LayerPtr compile_for_inference(LayerPtr root, const CompileOptions& options = {},
                               CompileReport* report = nullptr);

/// A BasicBlock after BN folding: conv1 (folded, fused ReLU) -> conv2
/// (folded) -> add shortcut (optionally a folded 1x1 projection) -> ReLU.
/// Inference-only: backward() and set_training(true) refuse.
class CompiledResidual final : public Layer {
public:
    CompiledResidual(std::unique_ptr<Conv2d> conv1, std::unique_ptr<Conv2d> conv2,
                     std::unique_ptr<Conv2d> projection);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string name() const override;
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;

    bool has_projection() const { return proj_ != nullptr; }
    const Conv2d& conv1() const { return *conv1_; }
    const Conv2d& conv2() const { return *conv2_; }
    const Conv2d* projection_conv() const { return proj_.get(); }

private:
    std::unique_ptr<Conv2d> conv1_;
    std::unique_ptr<Conv2d> conv2_;
    std::unique_ptr<Conv2d> proj_;
};

}  // namespace ens::nn
