#include "nn/dropout.hpp"

#include "common/error.hpp"

namespace ens::nn {

Dropout::Dropout(float p, Rng rng, bool active_in_eval)
    : p_(p), rng_(rng), active_in_eval_(active_in_eval) {
    ENS_REQUIRE(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input) {
    last_forward_active_ = active();
    if (!last_forward_active_ || p_ == 0.0f) {
        cached_mask_ = Tensor();
        return input;
    }
    cached_mask_ = Tensor(input.shape());
    Tensor output(input.shape());
    const float keep_scale = 1.0f / (1.0f - p_);
    const float* x = input.data();
    float* y = output.data();
    float* m = cached_mask_.data();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        const float mask = rng_.bernoulli(p_) ? 0.0f : keep_scale;
        m[i] = mask;
        y[i] = x[i] * mask;
    }
    return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
    if (!last_forward_active_ || p_ == 0.0f) {
        return grad_output;
    }
    ENS_CHECK(cached_mask_.defined(), "Dropout::backward before forward");
    ENS_REQUIRE(grad_output.shape() == cached_mask_.shape(), "Dropout: grad shape mismatch");
    Tensor grad_input = grad_output.clone();
    grad_input.mul_(cached_mask_);
    return grad_input;
}

std::string Dropout::name() const {
    return "Dropout(p=" + std::to_string(p_) + (active_in_eval_ ? ", always-on" : "") + ")";
}

}  // namespace ens::nn
