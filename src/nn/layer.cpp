#include "nn/layer.hpp"

#include "common/error.hpp"

namespace ens::nn {

void set_requires_grad(Layer& layer, bool requires_grad) {
    for (Parameter* p : layer.parameters()) {
        p->requires_grad = requires_grad;
    }
}

void zero_grad(Layer& layer) {
    for (Parameter* p : layer.parameters()) {
        p->zero_grad();
    }
}

std::int64_t parameter_count(Layer& layer) {
    std::int64_t total = 0;
    for (Parameter* p : layer.parameters()) {
        total += p->value.numel();
    }
    return total;
}

void copy_parameters(Layer& src, Layer& dst) {
    const auto src_params = src.parameters();
    const auto dst_params = dst.parameters();
    ENS_REQUIRE(src_params.size() == dst_params.size(), "copy_parameters: layer mismatch");
    for (std::size_t i = 0; i < src_params.size(); ++i) {
        ENS_REQUIRE(src_params[i]->name == dst_params[i]->name,
                    "copy_parameters: parameter name mismatch at " + src_params[i]->name);
        dst_params[i]->value.copy_from(src_params[i]->value);
    }
    dst.on_parameters_changed();
}

}  // namespace ens::nn
