#include "nn/pooling.hpp"

#include <limits>

#include "common/error.hpp"

namespace ens::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
    ENS_REQUIRE(kernel_ > 0 && stride_ > 0, "MaxPool2d: bad geometry");
}

Tensor MaxPool2d::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == 4, "MaxPool2d expects NCHW input");
    const std::int64_t batch = input.dim(0);
    const std::int64_t channels = input.dim(1);
    const std::int64_t in_h = input.dim(2);
    const std::int64_t in_w = input.dim(3);
    const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
    const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
    ENS_REQUIRE(out_h > 0 && out_w > 0, "MaxPool2d: output collapses to zero size");

    cached_in_shape_ = input.shape();
    Tensor output(Shape{batch, channels, out_h, out_w});
    cached_argmax_.assign(static_cast<std::size_t>(output.numel()), 0);

    const float* x = input.data();
    float* y = output.data();
    std::int64_t out_index = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float* plane = x + (n * channels + c) * in_h * in_w;
            const std::int64_t plane_base = (n * channels + c) * in_h * in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_index) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_index = 0;
                    for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                        const std::int64_t ih = oh * stride_ + kh;
                        for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                            const std::int64_t iw = ow * stride_ + kw;
                            const float v = plane[ih * in_w + iw];
                            if (v > best) {
                                best = v;
                                best_index = plane_base + ih * in_w + iw;
                            }
                        }
                    }
                    y[out_index] = best;
                    cached_argmax_[static_cast<std::size_t>(out_index)] = best_index;
                }
            }
        }
    }
    return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_in_shape_.rank() == 4, "MaxPool2d::backward before forward");
    ENS_REQUIRE(grad_output.numel() == static_cast<std::int64_t>(cached_argmax_.size()),
                "MaxPool2d: grad shape mismatch");
    Tensor grad_input(cached_in_shape_);
    float* dx = grad_input.data();
    const float* dy = grad_output.data();
    for (std::size_t i = 0; i < cached_argmax_.size(); ++i) {
        dx[cached_argmax_[i]] += dy[i];
    }
    return grad_input;
}

std::string MaxPool2d::name() const {
    return "MaxPool2d(k" + std::to_string(kernel_) + " s" + std::to_string(stride_) + ")";
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == 4, "GlobalAvgPool expects NCHW input");
    cached_in_shape_ = input.shape();
    const std::int64_t batch = input.dim(0);
    const std::int64_t channels = input.dim(1);
    const std::int64_t plane = input.dim(2) * input.dim(3);
    Tensor output(Shape{batch, channels});
    const float* x = input.data();
    float* y = output.data();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float* src = x + (n * channels + c) * plane;
            double acc = 0.0;
            for (std::int64_t i = 0; i < plane; ++i) {
                acc += src[i];
            }
            y[n * channels + c] = static_cast<float>(acc) * inv;
        }
    }
    return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_in_shape_.rank() == 4, "GlobalAvgPool::backward before forward");
    const std::int64_t batch = cached_in_shape_.dim(0);
    const std::int64_t channels = cached_in_shape_.dim(1);
    const std::int64_t plane = cached_in_shape_.dim(2) * cached_in_shape_.dim(3);
    ENS_REQUIRE(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == channels,
                "GlobalAvgPool: grad shape mismatch");
    Tensor grad_input(cached_in_shape_);
    float* dx = grad_input.data();
    const float* dy = grad_output.data();
    const float inv = 1.0f / static_cast<float>(plane);
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float g = dy[n * channels + c] * inv;
            float* dst = dx + (n * channels + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
                dst[i] = g;
            }
        }
    }
    return grad_input;
}

UpsampleNearest2d::UpsampleNearest2d(std::int64_t factor) : factor_(factor) {
    ENS_REQUIRE(factor_ >= 1, "UpsampleNearest2d: factor must be >= 1");
}

Tensor UpsampleNearest2d::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == 4, "UpsampleNearest2d expects NCHW input");
    cached_in_shape_ = input.shape();
    const std::int64_t batch = input.dim(0);
    const std::int64_t channels = input.dim(1);
    const std::int64_t in_h = input.dim(2);
    const std::int64_t in_w = input.dim(3);
    const std::int64_t out_h = in_h * factor_;
    const std::int64_t out_w = in_w * factor_;
    Tensor output(Shape{batch, channels, out_h, out_w});
    const float* x = input.data();
    float* y = output.data();
    for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
        const float* src = x + nc * in_h * in_w;
        float* dst = y + nc * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
            const float* src_row = src + (oh / factor_) * in_w;
            for (std::int64_t ow = 0; ow < out_w; ++ow) {
                dst[oh * out_w + ow] = src_row[ow / factor_];
            }
        }
    }
    return output;
}

Tensor UpsampleNearest2d::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_in_shape_.rank() == 4, "UpsampleNearest2d::backward before forward");
    const std::int64_t batch = cached_in_shape_.dim(0);
    const std::int64_t channels = cached_in_shape_.dim(1);
    const std::int64_t in_h = cached_in_shape_.dim(2);
    const std::int64_t in_w = cached_in_shape_.dim(3);
    const std::int64_t out_h = in_h * factor_;
    const std::int64_t out_w = in_w * factor_;
    ENS_REQUIRE(grad_output.rank() == 4 && grad_output.dim(2) == out_h &&
                    grad_output.dim(3) == out_w,
                "UpsampleNearest2d: grad shape mismatch");
    Tensor grad_input(cached_in_shape_);
    float* dx = grad_input.data();
    const float* dy = grad_output.data();
    for (std::int64_t nc = 0; nc < batch * channels; ++nc) {
        const float* src = dy + nc * out_h * out_w;
        float* dst = dx + nc * in_h * in_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
            float* dst_row = dst + (oh / factor_) * in_w;
            for (std::int64_t ow = 0; ow < out_w; ++ow) {
                dst_row[ow / factor_] += src[oh * out_w + ow];
            }
        }
    }
    return grad_input;
}

std::string UpsampleNearest2d::name() const {
    return "UpsampleNearest2d(x" + std::to_string(factor_) + ")";
}

}  // namespace ens::nn
