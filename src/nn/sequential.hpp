#pragma once
// Ordered container of layers with chained forward/backward.
//
// Sequential owns its layers (unique_ptr). It is itself a Layer, so blocks
// nest (BasicBlock holds Sequentials; networks hold blocks). `slice` clones
// nothing — it moves layers out to build split models (head/body/tail).

#include <utility>

#include "nn/layer.hpp"

namespace ens::nn {

class Sequential final : public Layer {
public:
    Sequential() = default;

    /// Appends a layer; returns a reference to the stored layer for chaining.
    Layer& push_back(LayerPtr layer);

    /// Inserts a layer before position `index` (index == size() appends).
    /// Used by the §IV-C extensions to splice perturbation layers (e.g.
    /// always-on dropout ahead of the tail's Linear) into trained models.
    Layer& insert(std::size_t index, LayerPtr layer);

    /// Constructs a layer in place.
    template <typename L, typename... Args>
    L& emplace(Args&&... args) {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L& ref = *layer;
        push_back(std::move(layer));
        return ref;
    }

    std::size_t size() const { return layers_.size(); }
    bool empty() const { return layers_.empty(); }
    Layer& layer(std::size_t i);
    const Layer& layer(std::size_t i) const;

    /// Removes and returns the layers in [begin, end); used to carve a
    /// trained network into head / body / tail for split inference.
    std::vector<LayerPtr> release_slice(std::size_t begin, std::size_t end);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::vector<NamedBuffer> buffers() override;
    std::string name() const override;
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;

private:
    std::vector<LayerPtr> layers_;
};

}  // namespace ens::nn
