#pragma once
// Checkpointing for layer trees (by traversal order, name+shape validated).
//
// Two fidelities:
//   save_parameters / load_parameters — trainable Parameters only. Enough
//     for weights that will be retrained or whose BN statistics are
//     re-derived (the in-process experiment flows).
//   save_state / load_state — Parameters PLUS the named non-parameter
//     buffers from Layer::buffers() (BatchNorm running statistics, fixed
//     noise masks). This is the deployment-grade format: a network
//     restored with load_state reproduces eval-mode outputs bit-for-bit
//     in a fresh process (serve/bundle.hpp builds on exactly this).
//
// Loaders treat the stream as UNTRUSTED: every count and length is bounded
// before allocation, and every failure — wrong magic, truncation, count/
// name/shape mismatch against the target model — surfaces as a typed
// ens::Error{ErrorCode::checkpoint_error} whose message names `context`
// (the file path for the *_file entry points), never a raw read explosion
// or an attacker-sized allocation.

#include <iosfwd>
#include <string>

#include "nn/layer.hpp"

namespace ens::nn {

/// Binary format: magic, parameter count, then (name, shape, f32 data).
void save_parameters(Layer& layer, std::ostream& out);

/// Restores into an identically-structured layer; throws
/// ens::Error{checkpoint_error} (message prefixed with `context`) on any
/// mismatch or corruption.
void load_parameters(Layer& layer, std::istream& in,
                     const std::string& context = "checkpoint stream");

void save_parameters_file(Layer& layer, const std::string& path);
void load_parameters_file(Layer& layer, const std::string& path);

/// Full-fidelity checkpoint: parameters + buffers (BN running stats,
/// fixed noise masks).
void save_state(Layer& layer, std::ostream& out);
void load_state(Layer& layer, std::istream& in,
                const std::string& context = "checkpoint stream");

void save_state_file(Layer& layer, const std::string& path);
void load_state_file(Layer& layer, const std::string& path);

}  // namespace ens::nn
