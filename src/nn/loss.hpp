#pragma once
// Loss functions with analytic gradients.
//
// Each returns the scalar loss and the gradient w.r.t. its first argument,
// ready to feed into Layer::backward. Cross-entropy fuses the softmax
// (stable log-sum-exp) so the gradient is the familiar (p - y) / batch.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ens::nn {

struct LossResult {
    float value = 0.0f;
    Tensor grad;  // d loss / d input, same shape as the input
};

/// Mean cross-entropy over the batch; logits [N, C], labels in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Mean squared error over all elements (used by the inversion decoder).
LossResult mse_loss(const Tensor& prediction, const Tensor& target);

/// Mean over the batch of per-sample cosine similarity between rows of
/// `a` and `b` (samples are flattened). Gradient is w.r.t. `a` only —
/// Eq. 3's regularizer compares the live head output against frozen
/// stage-1 head outputs.
LossResult cosine_similarity_mean(const Tensor& a, const Tensor& b);

}  // namespace ens::nn
