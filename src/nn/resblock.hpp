#pragma once
// ResNet BasicBlock:  out = ReLU( BN(conv3x3(ReLU(BN(conv3x3(x))))) + shortcut(x) )
// with a projection shortcut (1x1 conv + BN) when stride != 1 or the channel
// count changes — the standard He et al. (2016) topology.

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"

namespace ens::nn {

class BasicBlock final : public Layer {
public:
    BasicBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::vector<NamedBuffer> buffers() override;
    std::string name() const override;
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;

    bool has_projection() const { return proj_conv_ != nullptr; }

    /// Sub-layer access for analysis passes (FLOP counting, inspection)
    /// and the BN-fold compiler pass (nn/compile.cpp).
    const Conv2d& conv1() const { return conv1_; }
    const Conv2d& conv2() const { return conv2_; }
    const Conv2d* projection_conv() const { return proj_conv_.get(); }
    const BatchNorm2d& bn1() const { return bn1_; }
    const BatchNorm2d& bn2() const { return bn2_; }
    const BatchNorm2d* projection_bn() const { return proj_bn_.get(); }

private:
    Conv2d conv1_;
    BatchNorm2d bn1_;
    ReLU relu1_;
    Conv2d conv2_;
    BatchNorm2d bn2_;
    std::unique_ptr<Conv2d> proj_conv_;
    std::unique_ptr<BatchNorm2d> proj_bn_;
    ReLU relu_out_;
};

}  // namespace ens::nn
