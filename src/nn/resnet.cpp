#include "nn/resnet.hpp"

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/resblock.hpp"

namespace ens::nn {

std::size_t resnet18_head_layer_count(const ResNetConfig& config) {
    return config.include_maxpool ? 4 : 3;
}

std::int64_t resnet18_split_channels(const ResNetConfig& config) { return config.base_width; }

std::int64_t resnet18_split_hw(const ResNetConfig& config) {
    return config.include_maxpool ? config.image_size / 2 : config.image_size;
}

std::int64_t resnet18_feature_width(const ResNetConfig& config) { return 8 * config.base_width; }

std::unique_ptr<Sequential> build_resnet18(const ResNetConfig& config, Rng& rng) {
    ENS_REQUIRE(config.base_width > 0 && config.num_classes > 0 && config.image_size >= 8,
                "ResNetConfig: bad dimensions");
    ENS_REQUIRE(config.image_size % 8 == 0,
                "ResNetConfig: image_size must be divisible by 8 for the stride schedule");

    auto net = std::make_unique<Sequential>();
    const std::int64_t w = config.base_width;

    net->emplace<Conv2d>(config.in_channels, w, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
    net->emplace<BatchNorm2d>(w);
    net->emplace<ReLU>();
    if (config.include_maxpool) {
        net->emplace<MaxPool2d>(2);
    }

    // Stage 1: width w, stride 1.
    net->emplace<BasicBlock>(w, w, 1, rng);
    net->emplace<BasicBlock>(w, w, 1, rng);
    // Stage 2: width 2w, first block stride 2.
    net->emplace<BasicBlock>(w, 2 * w, 2, rng);
    net->emplace<BasicBlock>(2 * w, 2 * w, 1, rng);
    // Stage 3: width 4w.
    net->emplace<BasicBlock>(2 * w, 4 * w, 2, rng);
    net->emplace<BasicBlock>(4 * w, 4 * w, 1, rng);
    // Stage 4: width 8w.
    net->emplace<BasicBlock>(4 * w, 8 * w, 2, rng);
    net->emplace<BasicBlock>(8 * w, 8 * w, 1, rng);

    net->emplace<GlobalAvgPool>();
    net->emplace<Linear>(8 * w, config.num_classes, rng);
    return net;
}

}  // namespace ens::nn
