#include "nn/arch.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/typed_error.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/pooling.hpp"
#include "nn/resblock.hpp"
#include "nn/sequential.hpp"

namespace ens::nn {

namespace {

// Geometry layouts (documented once, enforced by both codec directions):
//   Sequential       children only
//   Linear           ints = [in_features, out_features, with_bias]
//   Conv2d           ints = [in_ch, out_ch, kernel, stride, padding, with_bias]
//   BatchNorm2d      ints = [channels], floats = [eps, momentum]
//   BasicBlock       ints = [in_ch, out_ch, stride]
//   LeakyReLU        floats = [negative_slope]
//   MaxPool2d        ints = [kernel, stride]
//   UpsampleNearest2d ints = [factor]
//   Reshape          ints = per-sample dims
//   FixedNoise       ints = [trainable, mask dims...], floats = [stddev]
//   Dropout          ints = [active_in_eval], floats = [p]
//   ReLU / Sigmoid / Tanh / GlobalAvgPool / Flatten   no geometry

// Decode bounds: a hostile bundle must never drive an allocation. Specs
// describe hand-built networks, so the ceilings are generous, not tight.
constexpr std::size_t kMaxTypeLength = 64;
constexpr std::size_t kMaxInts = 64;
constexpr std::size_t kMaxFloats = 16;
constexpr std::size_t kMaxChildren = 4096;
constexpr std::size_t kMaxDepth = 64;

// Weight init of rebuilt layers is throwaway — the checkpoint that ships
// with every spec overwrites it — but the constructors need an Rng.
constexpr std::uint64_t kRebuildSeed = 0x524553544F5245ULL;  // "RESTORE"

[[noreturn]] void fail(const std::string& context, const std::string& msg) {
    checkpoint_fail(context, msg);
}

void require_geometry(bool ok, const std::string& context, const ArchSpec& spec) {
    if (!ok) {
        fail(context, "malformed geometry for layer type \"" + spec.type + "\"");
    }
}

// Boolean geometry ints are recorded as exactly 0/1 by describe_layer; a
// spec carrying any other value is corrupt or hostile, not a "truthy" hint
// to coerce (PR-5 hostile-input contract — reject, never repair).
bool decode_bool(std::int64_t value, const std::string& context, const ArchSpec& spec,
                 const char* field) {
    if (value != 0 && value != 1) {
        fail(context, "layer type \"" + spec.type + "\": boolean field " + field +
                          " must be 0 or 1, got " + std::to_string(value));
    }
    return value == 1;
}

LayerPtr build_node(const ArchSpec& spec, const std::string& context, std::size_t depth,
                    Rng& rng);

LayerPtr build_known(const ArchSpec& spec, const std::string& context, std::size_t depth,
                     Rng& rng) {
    const auto& ints = spec.ints;
    const auto& floats = spec.floats;
    if (spec.type == "Sequential") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        auto seq = std::make_unique<Sequential>();
        for (const ArchSpec& child : spec.children) {
            seq->push_back(build_node(child, context, depth + 1, rng));
        }
        return seq;
    }
    // Leaf types below never carry children.
    require_geometry(spec.children.empty(), context, spec);
    if (spec.type == "Linear") {
        require_geometry(ints.size() == 3 && floats.empty(), context, spec);
        return std::make_unique<Linear>(ints[0], ints[1], rng,
                                        decode_bool(ints[2], context, spec, "with_bias"));
    }
    if (spec.type == "Conv2d") {
        require_geometry(ints.size() == 6 && floats.empty(), context, spec);
        return std::make_unique<Conv2d>(ints[0], ints[1], ints[2], ints[3], ints[4], rng,
                                        decode_bool(ints[5], context, spec, "with_bias"));
    }
    if (spec.type == "BatchNorm2d") {
        require_geometry(ints.size() == 1 && floats.size() == 2, context, spec);
        return std::make_unique<BatchNorm2d>(ints[0], floats[0], floats[1]);
    }
    if (spec.type == "BasicBlock") {
        require_geometry(ints.size() == 3 && floats.empty(), context, spec);
        return std::make_unique<BasicBlock>(ints[0], ints[1], ints[2], rng);
    }
    if (spec.type == "ReLU") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        return std::make_unique<ReLU>();
    }
    if (spec.type == "LeakyReLU") {
        require_geometry(ints.empty() && floats.size() == 1, context, spec);
        return std::make_unique<LeakyReLU>(floats[0]);
    }
    if (spec.type == "Sigmoid") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        return std::make_unique<Sigmoid>();
    }
    if (spec.type == "Tanh") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        return std::make_unique<Tanh>();
    }
    if (spec.type == "MaxPool2d") {
        require_geometry(ints.size() == 2 && floats.empty(), context, spec);
        return std::make_unique<MaxPool2d>(ints[0], ints[1]);
    }
    if (spec.type == "GlobalAvgPool") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        return std::make_unique<GlobalAvgPool>();
    }
    if (spec.type == "UpsampleNearest2d") {
        require_geometry(ints.size() == 1 && floats.empty(), context, spec);
        return std::make_unique<UpsampleNearest2d>(ints[0]);
    }
    if (spec.type == "Flatten") {
        require_geometry(ints.empty() && floats.empty(), context, spec);
        return std::make_unique<Flatten>();
    }
    if (spec.type == "Reshape") {
        require_geometry(!ints.empty() && floats.empty(), context, spec);
        return std::make_unique<Reshape>(Shape{ints});
    }
    if (spec.type == "FixedNoise") {
        require_geometry(ints.size() >= 2 && floats.size() == 1, context, spec);
        const std::vector<std::int64_t> dims(ints.begin() + 1, ints.end());
        return std::make_unique<FixedNoise>(Shape{dims}, floats[0], rng,
                                            decode_bool(ints[0], context, spec, "trainable"));
    }
    if (spec.type == "Dropout") {
        require_geometry(ints.size() == 1 && floats.size() == 1, context, spec);
        // The live layer's rng stream position is not capturable; a rebuilt
        // active-in-eval Dropout is stochastic at inference regardless.
        return std::make_unique<Dropout>(floats[0], rng.fork_named("dropout"),
                                         decode_bool(ints[0], context, spec, "active_in_eval"));
    }
    fail(context, "unknown layer type \"" + spec.type + "\" in arch spec");
}

LayerPtr build_node(const ArchSpec& spec, const std::string& context, std::size_t depth,
                    Rng& rng) {
    if (depth > kMaxDepth) {
        fail(context, "arch spec nests deeper than " + std::to_string(kMaxDepth));
    }
    try {
        return build_known(spec, context, depth, rng);
    } catch (const Error&) {
        throw;
    } catch (const std::exception& e) {
        // A constructor precondition (negative channel count, bad kernel)
        // on corrupted geometry: surface it typed, naming the source.
        fail(context, "cannot rebuild \"" + spec.type + "\": " + e.what());
    }
}

ArchSpec decode_node(BinaryReader& reader, const std::string& context, std::size_t depth) {
    if (depth > kMaxDepth) {
        fail(context, "arch spec nests deeper than " + std::to_string(kMaxDepth));
    }
    ArchSpec spec;
    spec.type = reader.read_string_bounded(kMaxTypeLength);
    const std::uint32_t num_ints = reader.read_u32();
    if (num_ints > kMaxInts) {
        fail(context, "arch spec int count " + std::to_string(num_ints) + " exceeds bound " +
                          std::to_string(kMaxInts));
    }
    spec.ints.reserve(num_ints);
    for (std::uint32_t i = 0; i < num_ints; ++i) {
        spec.ints.push_back(reader.read_i64());
    }
    const std::uint32_t num_floats = reader.read_u32();
    if (num_floats > kMaxFloats) {
        fail(context, "arch spec float count " + std::to_string(num_floats) +
                          " exceeds bound " + std::to_string(kMaxFloats));
    }
    spec.floats.reserve(num_floats);
    for (std::uint32_t i = 0; i < num_floats; ++i) {
        spec.floats.push_back(reader.read_f32());
    }
    const std::uint32_t num_children = reader.read_u32();
    if (num_children > kMaxChildren) {
        fail(context, "arch spec child count " + std::to_string(num_children) +
                          " exceeds bound " + std::to_string(kMaxChildren));
    }
    spec.children.reserve(num_children);
    for (std::uint32_t i = 0; i < num_children; ++i) {
        spec.children.push_back(decode_node(reader, context, depth + 1));
    }
    return spec;
}

}  // namespace

std::string ArchSpec::to_string() const {
    std::ostringstream oss;
    oss << type;
    if (!ints.empty() || !floats.empty()) {
        oss << '(';
        for (std::size_t i = 0; i < ints.size(); ++i) {
            oss << (i > 0 ? "," : "") << ints[i];
        }
        for (std::size_t i = 0; i < floats.size(); ++i) {
            oss << (!ints.empty() || i > 0 ? "," : "") << floats[i];
        }
        oss << ')';
    }
    if (!children.empty()) {
        oss << '[';
        for (std::size_t i = 0; i < children.size(); ++i) {
            oss << (i > 0 ? ", " : "") << children[i].to_string();
        }
        oss << ']';
    }
    return oss.str();
}

ArchSpec describe_layer(const Layer& layer) {
    ArchSpec spec;
    if (const auto* seq = dynamic_cast<const Sequential*>(&layer)) {
        spec.type = "Sequential";
        spec.children.reserve(seq->size());
        for (std::size_t i = 0; i < seq->size(); ++i) {
            spec.children.push_back(describe_layer(seq->layer(i)));
        }
        return spec;
    }
    if (const auto* linear = dynamic_cast<const Linear*>(&layer)) {
        // A fused epilogue has no spec representation; describing it as a
        // plain Linear would silently drop the activation from the export.
        // Compiled graphs are a runtime artifact, never a bundle.
        if (linear->epilogue() != Epilogue::none) {
            throw std::invalid_argument("describe_layer: compiled layer \"" + layer.name() +
                                        "\" (fused epilogue) cannot be exported as a spec");
        }
        spec.type = "Linear";
        spec.ints = {linear->in_features(), linear->out_features(),
                     linear->has_bias() ? 1 : 0};
        return spec;
    }
    if (const auto* conv = dynamic_cast<const Conv2d*>(&layer)) {
        if (conv->epilogue() != Epilogue::none) {
            throw std::invalid_argument("describe_layer: compiled layer \"" + layer.name() +
                                        "\" (fused epilogue) cannot be exported as a spec");
        }
        spec.type = "Conv2d";
        spec.ints = {conv->in_channels(), conv->out_channels(), conv->kernel(), conv->stride(),
                     conv->padding(), conv->has_bias() ? 1 : 0};
        return spec;
    }
    if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&layer)) {
        spec.type = "BatchNorm2d";
        spec.ints = {bn->channels()};
        spec.floats = {bn->eps(), bn->momentum()};
        return spec;
    }
    if (const auto* block = dynamic_cast<const BasicBlock*>(&layer)) {
        spec.type = "BasicBlock";
        spec.ints = {block->conv1().in_channels(), block->conv1().out_channels(),
                     block->conv1().stride()};
        return spec;
    }
    if (dynamic_cast<const ReLU*>(&layer) != nullptr) {
        spec.type = "ReLU";
        return spec;
    }
    if (const auto* leaky = dynamic_cast<const LeakyReLU*>(&layer)) {
        spec.type = "LeakyReLU";
        spec.floats = {leaky->slope()};
        return spec;
    }
    if (dynamic_cast<const Sigmoid*>(&layer) != nullptr) {
        spec.type = "Sigmoid";
        return spec;
    }
    if (dynamic_cast<const Tanh*>(&layer) != nullptr) {
        spec.type = "Tanh";
        return spec;
    }
    if (const auto* pool = dynamic_cast<const MaxPool2d*>(&layer)) {
        spec.type = "MaxPool2d";
        spec.ints = {pool->kernel(), pool->stride()};
        return spec;
    }
    if (dynamic_cast<const GlobalAvgPool*>(&layer) != nullptr) {
        spec.type = "GlobalAvgPool";
        return spec;
    }
    if (const auto* upsample = dynamic_cast<const UpsampleNearest2d*>(&layer)) {
        spec.type = "UpsampleNearest2d";
        spec.ints = {upsample->factor()};
        return spec;
    }
    if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
        spec.type = "Flatten";
        return spec;
    }
    if (const auto* reshape = dynamic_cast<const Reshape*>(&layer)) {
        spec.type = "Reshape";
        spec.ints = reshape->per_sample().dims();
        return spec;
    }
    if (const auto* noise = dynamic_cast<const FixedNoise*>(&layer)) {
        spec.type = "FixedNoise";
        spec.ints.push_back(noise->trainable() ? 1 : 0);
        for (const std::int64_t dim : noise->mask().shape().dims()) {
            spec.ints.push_back(dim);
        }
        spec.floats = {noise->stddev()};
        return spec;
    }
    if (const auto* dropout = dynamic_cast<const Dropout*>(&layer)) {
        spec.type = "Dropout";
        spec.ints = {dropout->active_in_eval() ? 1 : 0};
        spec.floats = {dropout->drop_probability()};
        return spec;
    }
    throw std::invalid_argument("describe_layer: no arch-spec codec for layer type \"" +
                                layer.name() + "\"");
}

LayerPtr build_layer(const ArchSpec& spec, const std::string& context) {
    Rng rng(kRebuildSeed);
    return build_node(spec, context, 0, rng);
}

void encode_spec(const ArchSpec& spec, std::ostream& out) {
    BinaryWriter writer(out);
    writer.write_string(spec.type);
    writer.write_u32(static_cast<std::uint32_t>(spec.ints.size()));
    for (const std::int64_t v : spec.ints) {
        writer.write_i64(v);
    }
    writer.write_u32(static_cast<std::uint32_t>(spec.floats.size()));
    for (const float v : spec.floats) {
        writer.write_f32(v);
    }
    writer.write_u32(static_cast<std::uint32_t>(spec.children.size()));
    for (const ArchSpec& child : spec.children) {
        encode_spec(child, out);
    }
}

ArchSpec decode_spec(std::istream& in, const std::string& context) {
    BinaryReader reader(in);
    return with_checkpoint_typing(context, "truncated or corrupt arch spec",
                                  [&] { return decode_node(reader, context, 0); });
}

}  // namespace ens::nn
