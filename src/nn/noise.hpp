#pragma once
// Noise layers at the split point.
//
// FixedNoise is the paper's N(0, σ) mask: sampled once at construction,
// added to the head output in BOTH training and inference (§IV-A: "a fixed
// Gaussian noise g ~ N(0, 0.1)"). Each ensemble member gets its own mask in
// Stage 1; Stage 3 uses a freshly drawn mask. With `trainable = true` the
// mask becomes a Parameter — that is exactly the Shredder baseline (learned
// additive noise at the split).

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace ens::nn {

class FixedNoise final : public Layer {
public:
    /// Mask shape is the per-sample feature shape [C, H, W]; it broadcasts
    /// over the batch axis.
    FixedNoise(Shape mask_shape, float stddev, Rng& rng, bool trainable = false);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    /// A non-trainable mask is not a Parameter, but it IS deployment state:
    /// without it a checkpointed client bundle would draw a fresh mask on
    /// restore and break restart bit-parity. Surface it as a named buffer
    /// (trainable masks already travel via parameters()).
    std::vector<NamedBuffer> buffers() override;
    std::string name() const override;

    const Tensor& mask() const { return mask_.value; }
    Parameter& mask_parameter() { return mask_; }
    float stddev() const { return stddev_; }
    bool trainable() const { return trainable_; }

private:
    float stddev_;
    bool trainable_;
    Parameter mask_;  // [C, H, W]
    std::int64_t last_batch_ = 0;
};

}  // namespace ens::nn
