#include "nn/flatten.hpp"

#include "common/error.hpp"

namespace ens::nn {

Tensor Flatten::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() >= 2, "Flatten expects at least a batch axis + 1");
    cached_in_shape_ = input.shape();
    return input.reshaped(Shape{input.dim(0), input.numel() / input.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_in_shape_.rank() >= 2, "Flatten::backward before forward");
    return grad_output.reshaped(cached_in_shape_);
}

Reshape::Reshape(Shape per_sample) : per_sample_(std::move(per_sample)) {}

Tensor Reshape::forward(const Tensor& input) {
    std::vector<std::int64_t> dims{input.dim(0)};
    dims.insert(dims.end(), per_sample_.dims().begin(), per_sample_.dims().end());
    cached_in_shape_ = input.shape();
    return input.reshaped(Shape{std::move(dims)});
}

Tensor Reshape::backward(const Tensor& grad_output) {
    ENS_CHECK(cached_in_shape_.rank() >= 1, "Reshape::backward before forward");
    return grad_output.reshaped(cached_in_shape_);
}

std::string Reshape::name() const { return "Reshape(to " + per_sample_.to_string() + ")"; }

}  // namespace ens::nn
