#pragma once
// CIFAR-style ResNet-18 builder (He et al. 2016), the architecture used for
// every experiment in the paper (§IV-A).
//
// Topology: conv3x3(w) - BN - ReLU - [MaxPool2] - 4 stages of 2 BasicBlocks
// (widths w, 2w, 4w, 8w; first block of stages 2-4 has stride 2) -
// GlobalAvgPool - Linear(8w -> classes).
//
// The paper's split is h=1, t=1: the client's head is the first convolution
// (with its BN/ReLU and the optional MaxPool, which are parameter-light
// pointwise/pool ops riding along), the tail is the final Linear. §IV-A's
// feature-map sizes are reproduced exactly: with base_width=64 the head
// output is [64, 16, 16] for CIFAR-10 (32px + MaxPool), [64, 32, 32] for
// CIFAR-100 (MaxPool removed), [64, 64, 64] for the CelebA analogue (64px,
// MaxPool removed). `base_width` scales channel count for CPU-budget runs.

#include <memory>

#include "nn/sequential.hpp"

namespace ens::nn {

struct ResNetConfig {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 32;
    std::int64_t base_width = 64;
    std::int64_t num_classes = 10;
    bool include_maxpool = true;
};

/// Number of Sequential entries forming the client head (h=1 split):
/// conv1 + BN + ReLU (+ MaxPool when configured).
std::size_t resnet18_head_layer_count(const ResNetConfig& config);

/// Channels of the head output feature map (= base_width).
std::int64_t resnet18_split_channels(const ResNetConfig& config);

/// Spatial extent of the head output feature map.
std::int64_t resnet18_split_hw(const ResNetConfig& config);

/// Feature width entering the tail Linear (= 8 * base_width).
std::int64_t resnet18_feature_width(const ResNetConfig& config);

/// Builds the full network. Layer order matches the docs above; the final
/// Linear is always the last layer, GlobalAvgPool the one before it.
std::unique_ptr<Sequential> build_resnet18(const ResNetConfig& config, Rng& rng);

}  // namespace ens::nn
