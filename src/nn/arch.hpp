#pragma once
// Serializable architecture specs: the construction recipe of a layer tree,
// separated from its weights.
//
// Checkpoints (nn/checkpoint.hpp) restore state INTO an identically
// structured layer — they deliberately carry no topology, so a fresh
// process must first rebuild the structure before it can load one. ArchSpec
// closes that gap for deployment bundles (serve/bundle.hpp): describe() a
// live layer into a small tree of (type, geometry) nodes, serialize the
// tree next to the save_state payload, and build() an identical untrained
// layer on the other side, ready for load_state. A daemon restored this
// way never needs the trainer (or its seeds) in the process.
//
// Covered types: every concrete Layer of this repository (Sequential,
// Linear, Conv2d, BatchNorm2d, BasicBlock, the activations, pooling,
// Flatten/Reshape, FixedNoise, Dropout). Weight-bearing layers are built
// with a fixed throwaway Rng — their values are ALWAYS overwritten by the
// checkpoint that accompanies the spec. Two caveats hold for Dropout: its
// rng stream position cannot be captured, so a rebuilt active-in-eval
// Dropout draws a fresh (deterministic) stream — such a layer is stochastic
// at inference anyway, so no restart-parity claim is possible for it.
//
// Loading is hostile-input hardened: decode_spec bounds every count before
// allocating and surfaces typed ens::Error{checkpoint_error}, so a
// truncated or corrupted bundle fails loudly instead of OOMing or
// mis-building.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace ens::nn {

/// One node of the recipe tree. `type` names the layer class; `ints` and
/// `floats` carry its constructor geometry (per-type layout documented in
/// arch.cpp next to each codec); `children` nest for containers.
struct ArchSpec {
    std::string type;
    std::vector<std::int64_t> ints;
    std::vector<float> floats;
    std::vector<ArchSpec> children;

    bool operator==(const ArchSpec& other) const {
        return type == other.type && ints == other.ints && floats == other.floats &&
               children == other.children;
    }
    bool operator!=(const ArchSpec& other) const { return !(*this == other); }

    /// "Sequential[Linear(3->4), ReLU]" — for errors and logs.
    std::string to_string() const;
};

/// Extracts the construction recipe of a live layer. Throws
/// std::invalid_argument for layer types without a registered spec codec.
ArchSpec describe_layer(const Layer& layer);

/// Rebuilds an untrained layer from its recipe (weights are garbage until a
/// checkpoint is loaded on top). Throws ens::Error{checkpoint_error} on an
/// unknown type or malformed geometry, `context` names the offending
/// source (e.g. the bundle file) in the message.
LayerPtr build_layer(const ArchSpec& spec, const std::string& context = "arch spec");

/// Binary spec codec (BinaryWriter framing, used inside bundle files).
void encode_spec(const ArchSpec& spec, std::ostream& out);

/// Bounded, typed decode: every count is validated before allocation.
ArchSpec decode_spec(std::istream& in, const std::string& context = "arch spec");

}  // namespace ens::nn
