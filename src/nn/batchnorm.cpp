#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ens::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", Tensor::ones(Shape{channels})),
      beta_("beta", Tensor::zeros(Shape{channels})),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::ones(Shape{channels})) {
    ENS_REQUIRE(channels > 0, "BatchNorm2d: channels must be positive");
}

Tensor BatchNorm2d::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == 4 && input.dim(1) == channels_,
                "BatchNorm2d: input shape mismatch, got " + input.shape().to_string());
    const std::int64_t batch = input.dim(0);
    const std::int64_t h = input.dim(2);
    const std::int64_t w = input.dim(3);
    const std::int64_t plane = h * w;
    const std::int64_t per_channel = batch * plane;

    Tensor output(input.shape());
    const float* x = input.data();
    float* y = output.data();
    const float* g = gamma_.value.data();
    const float* b = beta_.value.data();

    last_forward_training_ = training();
    if (training()) {
        cached_shape_ = input.shape();
        cached_xhat_ = Tensor(input.shape());
        cached_invstd_ = Tensor(Shape{channels_});
        float* xhat = cached_xhat_.data();
        float* invstd = cached_invstd_.data();
        float* rmean = running_mean_.data();
        float* rvar = running_var_.data();

        for (std::int64_t c = 0; c < channels_; ++c) {
            double sum = 0.0;
            double sq_sum = 0.0;
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* src = x + (n * channels_ + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                    sum += src[i];
                    sq_sum += static_cast<double>(src[i]) * src[i];
                }
            }
            const double mean = sum / static_cast<double>(per_channel);
            const double var = sq_sum / static_cast<double>(per_channel) - mean * mean;
            const float istd = static_cast<float>(1.0 / std::sqrt(var + eps_));
            invstd[c] = istd;
            // Normalization uses the biased batch variance, but the running
            // estimate gets Bessel's correction (n / (n - 1)) — PyTorch
            // semantics, and what the eval path / BN-fold compiler pass
            // then consume. A single-element batch keeps the biased value
            // (the correction would divide by zero).
            const double running_var =
                per_channel > 1
                    ? var * (static_cast<double>(per_channel) / static_cast<double>(per_channel - 1))
                    : var;
            rmean[c] = (1.0f - momentum_) * rmean[c] + momentum_ * static_cast<float>(mean);
            rvar[c] = (1.0f - momentum_) * rvar[c] + momentum_ * static_cast<float>(running_var);

            for (std::int64_t n = 0; n < batch; ++n) {
                const float* src = x + (n * channels_ + c) * plane;
                float* xh = xhat + (n * channels_ + c) * plane;
                float* dst = y + (n * channels_ + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                    const float normalized = (src[i] - static_cast<float>(mean)) * istd;
                    xh[i] = normalized;
                    dst[i] = g[c] * normalized + b[c];
                }
            }
        }
    } else {
        cached_shape_ = input.shape();
        const float* rmean = running_mean_.data();
        const float* rvar = running_var_.data();
        for (std::int64_t c = 0; c < channels_; ++c) {
            const float istd = 1.0f / std::sqrt(rvar[c] + eps_);
            const float scale = g[c] * istd;
            const float shift = b[c] - scale * rmean[c];
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* src = x + (n * channels_ + c) * plane;
                float* dst = y + (n * channels_ + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                    dst[i] = scale * src[i] + shift;
                }
            }
        }
    }
    return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
    ENS_REQUIRE(grad_output.shape() == cached_shape_, "BatchNorm2d: grad shape mismatch");

    if (!last_forward_training_) {
        // Eval mode: the normalization is a fixed per-channel affine map, so
        // dx = gamma / sqrt(running_var + eps) * dy. Parameter gradients are
        // skipped — eval-mode backward only occurs through frozen nets
        // (Stage-3 server bodies, attack targets).
        const std::int64_t batch = cached_shape_.dim(0);
        const std::int64_t plane = cached_shape_.dim(2) * cached_shape_.dim(3);
        Tensor grad_input(cached_shape_);
        const float* dy = grad_output.data();
        float* dx = grad_input.data();
        const float* g = gamma_.value.data();
        const float* rvar = running_var_.data();
        for (std::int64_t c = 0; c < channels_; ++c) {
            const float scale = g[c] / std::sqrt(rvar[c] + eps_);
            for (std::int64_t n = 0; n < batch; ++n) {
                const float* gy = dy + (n * channels_ + c) * plane;
                float* gx = dx + (n * channels_ + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                    gx[i] = scale * gy[i];
                }
            }
        }
        return grad_input;
    }

    ENS_CHECK(cached_xhat_.defined(), "BatchNorm2d::backward before forward");

    const std::int64_t batch = cached_shape_.dim(0);
    const std::int64_t plane = cached_shape_.dim(2) * cached_shape_.dim(3);
    const std::int64_t per_channel = batch * plane;

    Tensor grad_input(cached_shape_);
    const float* dy = grad_output.data();
    const float* xhat = cached_xhat_.data();
    const float* invstd = cached_invstd_.data();
    const float* g = gamma_.value.data();
    float* dx = grad_input.data();
    float* dgamma = gamma_.grad.data();
    float* dbeta = beta_.grad.data();

    for (std::int64_t c = 0; c < channels_; ++c) {
        // Channel-wise reductions: sum(dy) and sum(dy * xhat).
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* gy = dy + (n * channels_ + c) * plane;
            const float* xh = xhat + (n * channels_ + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
                sum_dy += gy[i];
                sum_dy_xhat += static_cast<double>(gy[i]) * xh[i];
            }
        }
        if (gamma_.requires_grad) {
            dgamma[c] += static_cast<float>(sum_dy_xhat);
            dbeta[c] += static_cast<float>(sum_dy);
        }

        // dx = (gamma * invstd / m) * (m*dy - sum(dy) - xhat * sum(dy*xhat))
        const float k = g[c] * invstd[c] / static_cast<float>(per_channel);
        const float m = static_cast<float>(per_channel);
        for (std::int64_t n = 0; n < batch; ++n) {
            const float* gy = dy + (n * channels_ + c) * plane;
            const float* xh = xhat + (n * channels_ + c) * plane;
            float* gx = dx + (n * channels_ + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
                gx[i] = k * (m * gy[i] - static_cast<float>(sum_dy) -
                             xh[i] * static_cast<float>(sum_dy_xhat));
            }
        }
    }
    return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<Layer::NamedBuffer> BatchNorm2d::buffers() {
    return {{"bn.running_mean", &running_mean_}, {"bn.running_var", &running_var_}};
}

std::string BatchNorm2d::name() const {
    return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

}  // namespace ens::nn
