#include "nn/noise.hpp"

#include "common/error.hpp"

namespace ens::nn {

FixedNoise::FixedNoise(Shape mask_shape, float stddev, Rng& rng, bool trainable)
    : stddev_(stddev),
      trainable_(trainable),
      mask_("noise_mask", Tensor::randn(mask_shape, rng, 0.0f, stddev)) {
    mask_.requires_grad = trainable;
}

Tensor FixedNoise::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == mask_.value.rank() + 1,
                "FixedNoise: input must have a batch axis over the mask shape");
    const std::int64_t per_sample = mask_.value.numel();
    ENS_REQUIRE(input.numel() % per_sample == 0 &&
                    input.numel() / input.dim(0) == per_sample,
                "FixedNoise: mask shape mismatch with " + input.shape().to_string());
    last_batch_ = input.dim(0);

    Tensor output = input.clone();
    float* y = output.data();
    const float* m = mask_.value.data();
    for (std::int64_t n = 0; n < last_batch_; ++n) {
        float* row = y + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
            row[i] += m[i];
        }
    }
    return output;
}

Tensor FixedNoise::backward(const Tensor& grad_output) {
    ENS_CHECK(last_batch_ > 0, "FixedNoise::backward before forward");
    if (trainable_ && mask_.requires_grad) {
        const std::int64_t per_sample = mask_.value.numel();
        float* dm = mask_.grad.data();
        const float* dy = grad_output.data();
        for (std::int64_t n = 0; n < last_batch_; ++n) {
            const float* row = dy + n * per_sample;
            for (std::int64_t i = 0; i < per_sample; ++i) {
                dm[i] += row[i];
            }
        }
    }
    return grad_output;
}

std::vector<Parameter*> FixedNoise::parameters() {
    if (trainable_) {
        return {&mask_};
    }
    return {};
}

std::vector<Layer::NamedBuffer> FixedNoise::buffers() {
    if (trainable_) {
        return {};
    }
    return {NamedBuffer{"noise_mask", &mask_.value}};
}

std::string FixedNoise::name() const {
    return std::string(trainable_ ? "LearnedNoise" : "FixedNoise") + "(sigma=" +
           std::to_string(stddev_) + ")";
}

}  // namespace ens::nn
