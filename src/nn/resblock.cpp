#include "nn/resblock.hpp"

#include "common/error.hpp"

namespace ens::nn {

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels, std::int64_t stride,
                       Rng& rng)
    : conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*padding=*/1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng),
      bn2_(out_channels) {
    if (stride != 1 || in_channels != out_channels) {
        proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, /*kernel=*/1, stride,
                                              /*padding=*/0, rng);
        proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
    }
}

Tensor BasicBlock::forward(const Tensor& input) {
    Tensor main = conv1_.forward(input);
    main = bn1_.forward(main);
    main = relu1_.forward(main);
    main = conv2_.forward(main);
    main = bn2_.forward(main);

    Tensor shortcut = input;
    if (proj_conv_) {
        shortcut = proj_bn_->forward(proj_conv_->forward(input));
    }
    main.add_(shortcut);  // `main` is block-local; safe to accumulate in place
    return relu_out_.forward(main);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
    const Tensor d_sum = relu_out_.backward(grad_output);

    Tensor d_main = bn2_.backward(d_sum);
    d_main = conv2_.backward(d_main);
    d_main = relu1_.backward(d_main);
    d_main = bn1_.backward(d_main);
    Tensor grad_input = conv1_.backward(d_main);

    if (proj_conv_) {
        Tensor d_short = proj_bn_->backward(d_sum);
        d_short = proj_conv_->backward(d_short);
        grad_input.add_(d_short);
    } else {
        grad_input.add_(d_sum);
    }
    return grad_input;
}

std::vector<Parameter*> BasicBlock::parameters() {
    std::vector<Parameter*> out;
    for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_}) {
        const auto p = l->parameters();
        out.insert(out.end(), p.begin(), p.end());
    }
    if (proj_conv_) {
        for (Layer* l : std::initializer_list<Layer*>{proj_conv_.get(), proj_bn_.get()}) {
            const auto p = l->parameters();
            out.insert(out.end(), p.begin(), p.end());
        }
    }
    return out;
}

std::vector<Layer::NamedBuffer> BasicBlock::buffers() {
    std::vector<NamedBuffer> out;
    for (Layer* l : std::initializer_list<Layer*>{&conv1_, &bn1_, &conv2_, &bn2_}) {
        const auto state = l->buffers();
        out.insert(out.end(), state.begin(), state.end());
    }
    if (proj_conv_) {
        for (Layer* l : std::initializer_list<Layer*>{proj_conv_.get(), proj_bn_.get()}) {
            const auto state = l->buffers();
            out.insert(out.end(), state.begin(), state.end());
        }
    }
    return out;
}

std::string BasicBlock::name() const {
    return "BasicBlock(" + std::to_string(conv1_.in_channels()) + "->" +
           std::to_string(conv1_.out_channels()) + ", s" + std::to_string(conv1_.stride()) + ")";
}

void BasicBlock::set_training(bool training) {
    Layer::set_training(training);
    conv1_.set_training(training);
    bn1_.set_training(training);
    relu1_.set_training(training);
    conv2_.set_training(training);
    bn2_.set_training(training);
    relu_out_.set_training(training);
    if (proj_conv_) {
        proj_conv_->set_training(training);
        proj_bn_->set_training(training);
    }
}

void BasicBlock::on_parameters_changed() {
    conv1_.on_parameters_changed();
    bn1_.on_parameters_changed();
    conv2_.on_parameters_changed();
    bn2_.on_parameters_changed();
    if (proj_conv_) {
        proj_conv_->on_parameters_changed();
        proj_bn_->on_parameters_changed();
    }
}

void BasicBlock::prepare_inference() {
    Layer::set_training(false);
    conv1_.prepare_inference();
    bn1_.prepare_inference();
    relu1_.prepare_inference();
    conv2_.prepare_inference();
    bn2_.prepare_inference();
    relu_out_.prepare_inference();
    if (proj_conv_) {
        proj_conv_->prepare_inference();
        proj_bn_->prepare_inference();
    }
}

}  // namespace ens::nn
