#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ens::nn {

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
    ENS_REQUIRE(logits.rank() == 2, "cross_entropy expects [batch, classes] logits");
    const std::int64_t batch = logits.dim(0);
    const std::int64_t classes = logits.dim(1);
    ENS_REQUIRE(static_cast<std::int64_t>(labels.size()) == batch,
                "cross_entropy: label count mismatch");

    LossResult result;
    result.grad = Tensor(logits.shape());
    const float* x = logits.data();
    float* g = result.grad.data();
    double total = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(batch);

    for (std::int64_t i = 0; i < batch; ++i) {
        const std::int64_t label = labels[static_cast<std::size_t>(i)];
        ENS_REQUIRE(label >= 0 && label < classes, "cross_entropy: label out of range");
        const float* row = x + i * classes;
        float* grow = g + i * classes;

        const float row_max = *std::max_element(row, row + classes);
        double denom = 0.0;
        for (std::int64_t j = 0; j < classes; ++j) {
            denom += std::exp(static_cast<double>(row[j] - row_max));
        }
        const double log_denom = std::log(denom);
        total += -(static_cast<double>(row[label] - row_max) - log_denom);

        for (std::int64_t j = 0; j < classes; ++j) {
            const float p =
                static_cast<float>(std::exp(static_cast<double>(row[j] - row_max)) / denom);
            grow[j] = (p - (j == label ? 1.0f : 0.0f)) * inv_batch;
        }
    }
    result.value = static_cast<float>(total / static_cast<double>(batch));
    return result;
}

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
    ENS_REQUIRE(prediction.shape() == target.shape(), "mse_loss: shape mismatch");
    const std::int64_t n = prediction.numel();
    ENS_REQUIRE(n > 0, "mse_loss: empty input");

    LossResult result;
    result.grad = Tensor(prediction.shape());
    const float* p = prediction.data();
    const float* t = target.data();
    float* g = result.grad.data();
    double total = 0.0;
    const float scale = 2.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
        const float diff = p[i] - t[i];
        total += static_cast<double>(diff) * diff;
        g[i] = scale * diff;
    }
    result.value = static_cast<float>(total / static_cast<double>(n));
    return result;
}

LossResult cosine_similarity_mean(const Tensor& a, const Tensor& b) {
    ENS_REQUIRE(a.shape() == b.shape(), "cosine_similarity: shape mismatch");
    ENS_REQUIRE(a.rank() >= 1 && a.dim(0) > 0, "cosine_similarity: need a batch axis");
    const std::int64_t batch = a.dim(0);
    const std::int64_t stride = a.numel() / batch;

    LossResult result;
    result.grad = Tensor(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* g = result.grad.data();
    double total = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    constexpr double kEps = 1e-12;

    for (std::int64_t i = 0; i < batch; ++i) {
        const float* ra = pa + i * stride;
        const float* rb = pb + i * stride;
        double dot = 0.0;
        double na = 0.0;
        double nb = 0.0;
        for (std::int64_t j = 0; j < stride; ++j) {
            dot += static_cast<double>(ra[j]) * rb[j];
            na += static_cast<double>(ra[j]) * ra[j];
            nb += static_cast<double>(rb[j]) * rb[j];
        }
        const double norm_a = std::sqrt(na) + kEps;
        const double norm_b = std::sqrt(nb) + kEps;
        const double cs = dot / (norm_a * norm_b);
        total += cs;

        // d cs / d a_j = b_j / (|a||b|) - cs * a_j / |a|^2
        float* grow = g + i * stride;
        const double inv_ab = 1.0 / (norm_a * norm_b);
        const double cs_over_na = cs / (na + kEps);
        for (std::int64_t j = 0; j < stride; ++j) {
            grow[j] = static_cast<float>((rb[j] * inv_ab - cs_over_na * ra[j]) * inv_batch);
        }
    }
    result.value = static_cast<float>(total / static_cast<double>(batch));
    return result;
}

}  // namespace ens::nn
