#pragma once
// 2-d convolution (NCHW) via im2col + GEMM, batch-parallel.

#include "nn/layer.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"

namespace ens::nn {

class Conv2d final : public Layer {
public:
    /// Square kernels only (all nets in this repo use 1x1/3x3/7x7).
    /// He-normal init with fan_in = in_channels * k * k. ResNet convs are
    /// bias-free (BatchNorm follows); the attack decoder uses biased convs.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
           std::int64_t stride, std::int64_t padding, Rng& rng, bool with_bias = false);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string name() const override;

    /// Eval-mode forwards run the GEMM against a per-instance packed copy
    /// of the weight (A-operand panels, packed lazily on first eval forward
    /// or eagerly by prepare_inference). Training mode, checkpoint loads
    /// and copy_parameters drop the pack so it can never go stale.
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;
    bool weights_packed() const { return packed_weight_.defined(); }

    std::int64_t in_channels() const { return in_channels_; }
    std::int64_t out_channels() const { return out_channels_; }
    std::int64_t kernel() const { return kernel_; }
    std::int64_t stride() const { return stride_; }
    std::int64_t padding() const { return padding_; }
    bool has_bias() const { return with_bias_; }

    /// Weight stored as [out_channels, in_channels * k * k] for the GEMM.
    Parameter& weight() { return weight_; }

private:
    ConvGeometry geometry_for(const Tensor& input) const;

    std::int64_t in_channels_;
    std::int64_t out_channels_;
    std::int64_t kernel_;
    std::int64_t stride_;
    std::int64_t padding_;
    bool with_bias_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
    // Weight repacked for the blocked kernel ([out_channels, patch] as the
    // GEMM's A operand). Per-instance, so hot-swapped deployment
    // generations can never alias another generation's pack.
    kernel::PackedMatrix packed_weight_;
};

}  // namespace ens::nn
