#pragma once
// 2-d convolution (NCHW) via im2col + GEMM, batch-parallel.

#include "nn/layer.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"

namespace ens::nn {

/// Activation fused into a Conv2d/Linear output loop by the graph compiler
/// (nn/compile.hpp). Fusion is bit-exact: the fused loop applies the same
/// scalar max(0,x) / leaky expression a separate ReLU/LeakyReLU layer
/// would, just without materializing the intermediate tensor. A layer with
/// an epilogue is inference-only (backward refuses).
enum class Epilogue : std::uint8_t { none = 0, relu = 1, leaky_relu = 2 };

/// Applies `epilogue` in place over `n` contiguous floats.
void apply_epilogue(Epilogue epilogue, float slope, float* data, std::int64_t n);

/// "relu" / "leaky_relu(0.2)" suffix for compiled-layer names.
std::string epilogue_suffix(Epilogue epilogue, float slope);

class Conv2d final : public Layer {
public:
    /// Square kernels only (all nets in this repo use 1x1/3x3/7x7).
    /// He-normal init with fan_in = in_channels * k * k. ResNet convs are
    /// bias-free (BatchNorm follows); the attack decoder uses biased convs.
    Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
           std::int64_t stride, std::int64_t padding, Rng& rng, bool with_bias = false);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string name() const override;

    /// Eval-mode forwards run the GEMM against a per-instance packed copy
    /// of the weight (A-operand panels, packed lazily on first eval forward
    /// or eagerly by prepare_inference). Training mode, checkpoint loads
    /// and copy_parameters drop the pack so it can never go stale.
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;
    bool weights_packed() const { return packed_weight_.defined(); }

    std::int64_t in_channels() const { return in_channels_; }
    std::int64_t out_channels() const { return out_channels_; }
    std::int64_t kernel() const { return kernel_; }
    std::int64_t stride() const { return stride_; }
    std::int64_t padding() const { return padding_; }
    bool has_bias() const { return with_bias_; }

    /// Weight stored as [out_channels, in_channels * k * k] for the GEMM.
    Parameter& weight() { return weight_; }
    const Parameter& weight() const { return weight_; }
    Parameter& bias() { return bias_; }
    const Parameter& bias() const { return bias_; }

    /// Overwrites weight (and bias, when present) values in one shot,
    /// shape-checked, and invalidates the packed-weight cache. Compiler
    /// passes MUST rewrite parameters through this (not via weight().value
    /// writes) — a direct tensor write would leave a stale pack serving
    /// the old weights.
    void assign_parameters(const Tensor& weight, const Tensor* bias = nullptr);

    /// Fuses an activation into the output loop (graph compiler only).
    /// The layer becomes inference-only: backward() refuses.
    void set_epilogue(Epilogue epilogue, float slope = 0.0f);
    Epilogue epilogue() const { return epilogue_; }
    float epilogue_slope() const { return epilogue_slope_; }

private:
    ConvGeometry geometry_for(const Tensor& input) const;

    std::int64_t in_channels_;
    std::int64_t out_channels_;
    std::int64_t kernel_;
    std::int64_t stride_;
    std::int64_t padding_;
    bool with_bias_;
    Epilogue epilogue_ = Epilogue::none;
    float epilogue_slope_ = 0.0f;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
    // Weight repacked for the blocked kernel ([out_channels, patch] as the
    // GEMM's A operand). Per-instance, so hot-swapped deployment
    // generations can never alias another generation's pack.
    kernel::PackedMatrix packed_weight_;
};

}  // namespace ens::nn
