#pragma once
// Fully-connected layer: y = x W^T + b over [batch, features] matrices.

#include "nn/layer.hpp"

namespace ens::nn {

class Linear final : public Layer {
public:
    /// He-normal weight init (fan_in = in_features); bias zero-init.
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string name() const override;

    std::int64_t in_features() const { return in_features_; }
    std::int64_t out_features() const { return out_features_; }

    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }
    bool has_bias() const { return with_bias_; }

private:
    std::int64_t in_features_;
    std::int64_t out_features_;
    bool with_bias_;
    Parameter weight_;  // [out, in]
    Parameter bias_;    // [out]
    Tensor cached_input_;
};

}  // namespace ens::nn
