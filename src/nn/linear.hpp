#pragma once
// Fully-connected layer: y = x W^T + b over [batch, features] matrices.

#include "nn/conv2d.hpp"  // Epilogue (shared conv/linear fused-activation enum)
#include "nn/layer.hpp"
#include "tensor/gemm_kernel.hpp"

namespace ens::nn {

class Linear final : public Layer {
public:
    /// He-normal weight init (fan_in = in_features); bias zero-init.
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias = true);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::string name() const override;

    /// Eval-mode forwards use a per-instance packed copy of W^T (B-operand
    /// panels) — lazily on first eval forward, eagerly via
    /// prepare_inference; invalidated exactly like Conv2d's pack.
    void set_training(bool training) override;
    void on_parameters_changed() override;
    void prepare_inference() override;
    bool weights_packed() const { return packed_weight_.defined(); }

    std::int64_t in_features() const { return in_features_; }
    std::int64_t out_features() const { return out_features_; }

    Parameter& weight() { return weight_; }
    const Parameter& weight() const { return weight_; }
    Parameter& bias() { return bias_; }
    const Parameter& bias() const { return bias_; }
    bool has_bias() const { return with_bias_; }

    /// Overwrites weight/bias values in one shot, shape-checked, and
    /// invalidates the packed-weight cache (see Conv2d::assign_parameters).
    void assign_parameters(const Tensor& weight, const Tensor* bias = nullptr);

    /// Fuses an activation into the output loop (graph compiler only).
    /// The layer becomes inference-only: backward() refuses.
    void set_epilogue(Epilogue epilogue, float slope = 0.0f);
    Epilogue epilogue() const { return epilogue_; }
    float epilogue_slope() const { return epilogue_slope_; }

private:
    std::int64_t in_features_;
    std::int64_t out_features_;
    bool with_bias_;
    Epilogue epilogue_ = Epilogue::none;
    float epilogue_slope_ = 0.0f;
    Parameter weight_;  // [out, in]
    Parameter bias_;    // [out]
    Tensor cached_input_;
    // W^T packed as the GEMM's B operand for the eval path.
    kernel::PackedMatrix packed_weight_;
};

}  // namespace ens::nn
