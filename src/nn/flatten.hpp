#pragma once
// Flatten [N, C, H, W] -> [N, C*H*W]; backward restores the saved shape.

#include "nn/layer.hpp"

namespace ens::nn {

class Flatten final : public Layer {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Flatten"; }

private:
    Shape cached_in_shape_;
};

/// Inverse of Flatten for decoder pipelines: [N, C*H*W] -> [N, C, H, W].
class Reshape final : public Layer {
public:
    /// `per_sample` is the target shape without the batch axis.
    explicit Reshape(Shape per_sample);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override;

    const Shape& per_sample() const { return per_sample_; }

private:
    Shape per_sample_;
    Shape cached_in_shape_;
};

}  // namespace ens::nn
