#include "nn/vgg.hpp"

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace ens::nn {

std::size_t vgg_head_layer_count(const VggConfig&) { return 3; }

std::int64_t vgg_split_channels(const VggConfig& config) { return config.base_width; }

std::int64_t vgg_split_hw(const VggConfig& config) { return config.image_size; }

std::int64_t vgg_feature_width(const VggConfig& config) {
    return config.base_width << (config.stages - 1);
}

std::unique_ptr<Sequential> build_vgg(const VggConfig& config, Rng& rng) {
    ENS_REQUIRE(config.base_width > 0 && config.num_classes > 0 && config.stages >= 1,
                "VggConfig: bad dimensions");
    ENS_REQUIRE(config.image_size % (std::int64_t{1} << (config.stages - 1)) == 0,
                "VggConfig: image_size must be divisible by 2^(stages-1)");

    auto net = std::make_unique<Sequential>();
    std::int64_t width = config.base_width;

    // Stage 1 begins with the h=1 head: conv1 + BN + ReLU.
    net->emplace<Conv2d>(config.in_channels, width, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
                         rng);
    net->emplace<BatchNorm2d>(width);
    net->emplace<ReLU>();
    net->emplace<Conv2d>(width, width, 3, 1, 1, rng);
    net->emplace<BatchNorm2d>(width);
    net->emplace<ReLU>();

    for (std::int64_t stage = 1; stage < config.stages; ++stage) {
        net->emplace<MaxPool2d>(2);
        const std::int64_t next_width = width * 2;
        net->emplace<Conv2d>(width, next_width, 3, 1, 1, rng);
        net->emplace<BatchNorm2d>(next_width);
        net->emplace<ReLU>();
        net->emplace<Conv2d>(next_width, next_width, 3, 1, 1, rng);
        net->emplace<BatchNorm2d>(next_width);
        net->emplace<ReLU>();
        width = next_width;
    }

    net->emplace<GlobalAvgPool>();
    net->emplace<Linear>(width, config.num_classes, rng);
    return net;
}

}  // namespace ens::nn
