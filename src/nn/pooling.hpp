#pragma once
// Spatial pooling and upsampling layers (NCHW).

#include "nn/layer.hpp"

namespace ens::nn {

/// Max pooling with square kernel; caches argmax indices for backward.
class MaxPool2d final : public Layer {
public:
    explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = 0 /* = kernel */);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override;

    std::int64_t kernel() const { return kernel_; }
    std::int64_t stride() const { return stride_; }

private:
    std::int64_t kernel_;
    std::int64_t stride_;
    Shape cached_in_shape_;
    std::vector<std::int64_t> cached_argmax_;  // flat input index per output element
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "GlobalAvgPool"; }

private:
    Shape cached_in_shape_;
};

/// Nearest-neighbour upsampling by an integer factor (attack decoder).
class UpsampleNearest2d final : public Layer {
public:
    explicit UpsampleNearest2d(std::int64_t factor);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override;

    std::int64_t factor() const { return factor_; }

private:
    std::int64_t factor_;
    Shape cached_in_shape_;
};

}  // namespace ens::nn
