#include "nn/linear.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng, bool with_bias)
    : in_features_(in_features), out_features_(out_features), with_bias_(with_bias) {
    ENS_REQUIRE(in_features > 0 && out_features > 0, "Linear: bad feature counts");
    const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    weight_ = Parameter("weight", Tensor::randn(Shape{out_features, in_features}, rng, 0.0f, stddev));
    if (with_bias_) {
        bias_ = Parameter("bias", Tensor::zeros(Shape{out_features}));
    }
}

Tensor Linear::forward(const Tensor& input) {
    ENS_REQUIRE(input.rank() == 2 && input.dim(1) == in_features_,
                "Linear: input shape mismatch, got " + input.shape().to_string());
    cached_input_ = input;
    Tensor out(Shape{input.dim(0), out_features_});
    if (!training_) {
        // Packed eval path — bit-identical to the gemm() below (same
        // blocked kernel), but skips re-packing W^T on every forward.
        if (!packed_weight_.defined()) {
            kernel::pack_b_into(packed_weight_, weight_.value.data(), in_features_,
                                /*trans_b=*/true, in_features_, out_features_);
        }
        kernel::gemm_packed_b(input.data(), in_features_, /*trans_a=*/false, input.dim(0),
                              packed_weight_, out.data(), out_features_, 1.0f, 0.0f,
                              /*parallel=*/true);
    } else {
        gemm(input, false, weight_.value, true, out);
    }
    if (with_bias_) {
        float* o = out.data();
        const float* b = bias_.value.data();
        const std::int64_t rows = out.dim(0);
        for (std::int64_t i = 0; i < rows; ++i) {
            for (std::int64_t j = 0; j < out_features_; ++j) {
                o[i * out_features_ + j] += b[j];
            }
        }
    }
    apply_epilogue(epilogue_, epilogue_slope_, out.data(), out.numel());
    return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
    ENS_CHECK(epilogue_ == Epilogue::none,
              "Linear::backward: layer has a fused activation epilogue (compiled, "
              "inference-only)");
    ENS_CHECK(cached_input_.defined(), "Linear::backward before forward");
    ENS_REQUIRE(grad_output.rank() == 2 && grad_output.dim(1) == out_features_ &&
                    grad_output.dim(0) == cached_input_.dim(0),
                "Linear: grad shape mismatch");

    if (weight_.requires_grad) {
        // dW += dY^T X  ([out, in])
        gemm(grad_output, true, cached_input_, false, weight_.grad, 1.0f, 1.0f);
        if (with_bias_) {
            const float* g = grad_output.data();
            float* db = bias_.grad.data();
            const std::int64_t rows = grad_output.dim(0);
            for (std::int64_t i = 0; i < rows; ++i) {
                for (std::int64_t j = 0; j < out_features_; ++j) {
                    db[j] += g[i * out_features_ + j];
                }
            }
        }
    }

    // dX = dY W  ([batch, in])
    Tensor grad_input(Shape{grad_output.dim(0), in_features_});
    gemm(grad_output, false, weight_.value, false, grad_input);
    return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
    if (with_bias_) {
        return {&weight_, &bias_};
    }
    return {&weight_};
}

void Linear::set_training(bool training) {
    Layer::set_training(training);
    if (training) {
        packed_weight_.clear();
    }
}

void Linear::on_parameters_changed() { packed_weight_.clear(); }

void Linear::assign_parameters(const Tensor& weight, const Tensor* bias) {
    ENS_REQUIRE(weight.shape() == weight_.value.shape(),
                "Linear::assign_parameters: weight shape " + weight.shape().to_string() +
                    " != " + weight_.value.shape().to_string());
    ENS_REQUIRE((bias != nullptr) == with_bias_,
                "Linear::assign_parameters: bias presence must match with_bias");
    weight_.value.copy_from(weight);
    if (bias != nullptr) {
        ENS_REQUIRE(bias->shape() == bias_.value.shape(),
                    "Linear::assign_parameters: bias shape mismatch");
        bias_.value.copy_from(*bias);
    }
    on_parameters_changed();
}

void Linear::set_epilogue(Epilogue epilogue, float slope) {
    epilogue_ = epilogue;
    epilogue_slope_ = slope;
}

void Linear::prepare_inference() {
    set_training(false);
    kernel::pack_b_into(packed_weight_, weight_.value.data(), in_features_, /*trans_b=*/true,
                        in_features_, out_features_);
}

std::string Linear::name() const {
    return "Linear(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) +
           ")" + epilogue_suffix(epilogue_, epilogue_slope_);
}

}  // namespace ens::nn
