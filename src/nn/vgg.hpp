#pragma once
// Plain VGG-style CNN builder (Simonyan & Zisserman style, CIFAR-scale).
//
// The paper's framework is architecture-agnostic: "each M^i: {M_c,h, M^i_s,
// M_c,t} is a standard pipeline for the inference task" — nothing in the
// Selector, the three-stage trainer, or the MIA requires residual bodies.
// This builder provides a second backbone so the generality claim is
// exercised end-to-end (tests train Ensembler over VGG bodies and attack
// them with the same shadow/decoder machinery).
//
// Topology (width w, S stages): [conv3x3 - BN - ReLU] x2 per stage with
// channel doubling and MaxPool2 between stages, then GlobalAvgPool and a
// Linear classifier. The h=1 / t=1 split matches ResNet's: the head is the
// first conv(+BN+ReLU) — same [w, H, W] transmit geometry as ResNet-18
// without MaxPool — and the tail is the final Linear, so every attack and
// latency component applies unchanged.

#include <memory>

#include "nn/sequential.hpp"

namespace ens::nn {

struct VggConfig {
    std::int64_t in_channels = 3;
    std::int64_t image_size = 32;
    std::int64_t base_width = 64;
    std::int64_t num_classes = 10;
    /// Conv stages; each halves the spatial extent after the first.
    /// image_size must be divisible by 2^(stages-1).
    std::int64_t stages = 3;
};

/// Sequential entries forming the h=1 client head: conv1 + BN + ReLU.
std::size_t vgg_head_layer_count(const VggConfig& config);

/// Channels of the head output (= base_width).
std::int64_t vgg_split_channels(const VggConfig& config);

/// Spatial extent of the head output (= image_size; no pool in the head).
std::int64_t vgg_split_hw(const VggConfig& config);

/// Feature width entering the tail Linear (= base_width * 2^(stages-1)).
std::int64_t vgg_feature_width(const VggConfig& config);

/// Builds the full network; final Linear last, GlobalAvgPool before it.
std::unique_ptr<Sequential> build_vgg(const VggConfig& config, Rng& rng);

}  // namespace ens::nn
