#pragma once
// BatchNorm2d over NCHW: per-channel normalization with affine transform
// and exponential-moving-average running statistics for eval mode.

#include "nn/layer.hpp"

namespace ens::nn {

class BatchNorm2d final : public Layer {
public:
    explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f, float momentum = 0.1f);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Parameter*> parameters() override;
    std::vector<NamedBuffer> buffers() override;
    std::string name() const override;

    std::int64_t channels() const { return channels_; }
    float eps() const { return eps_; }
    float momentum() const { return momentum_; }
    Parameter& gamma() { return gamma_; }
    const Parameter& gamma() const { return gamma_; }
    Parameter& beta() { return beta_; }
    const Parameter& beta() const { return beta_; }
    Tensor& running_mean() { return running_mean_; }
    const Tensor& running_mean() const { return running_mean_; }
    Tensor& running_var() { return running_var_; }
    const Tensor& running_var() const { return running_var_; }

private:
    std::int64_t channels_;
    float eps_;
    float momentum_;
    Parameter gamma_;  // scale, [C]
    Parameter beta_;   // shift, [C]
    Tensor running_mean_;
    Tensor running_var_;

    // Backward caches (training mode).
    Tensor cached_xhat_;
    Tensor cached_invstd_;  // [C]
    Shape cached_shape_;
    bool last_forward_training_ = false;
};

}  // namespace ens::nn
