#pragma once
// Layer abstraction: explicit forward/backward with per-layer caching.
//
// This library deliberately uses layer-local backprop (Caffe style) instead
// of a general autograd tape: every network in the paper is a feed-forward
// chain (residual blocks handle their own skip wiring), so the simpler
// contract keeps kernels fast and the gradient path auditable. The contract:
//
//   Tensor y  = layer.forward(x);        // caches whatever backward needs
//   Tensor dx = layer.backward(dy);      // must follow the matching forward
//
// backward() ACCUMULATES into Parameter::grad (so gradients from several
// branches sum naturally); optimizers zero grads after each step. Parameters
// with requires_grad == false skip weight-gradient computation but still
// propagate input gradients (needed for frozen server bodies in Stage 3 and
// for the inversion attacks, which both backprop *through* frozen nets).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ens::nn {

/// A named trainable tensor with its gradient accumulator.
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    bool requires_grad = true;

    Parameter() = default;
    Parameter(std::string param_name, Tensor init)
        : name(std::move(param_name)), value(std::move(init)), grad(Tensor::zeros(value.shape())) {}

    void zero_grad() { grad.fill(0.0f); }
};

class Layer {
public:
    virtual ~Layer() = default;

    /// Computes the layer output, caching activations needed by backward.
    virtual Tensor forward(const Tensor& input) = 0;

    /// Propagates `grad_output` (gradient w.r.t. the last forward's output)
    /// back to the input; accumulates parameter gradients.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Pointers to this layer's parameters (empty for stateless layers).
    virtual std::vector<Parameter*> parameters() { return {}; }

    /// Named non-parameter state that full-fidelity checkpoints must carry
    /// (e.g. BatchNorm running statistics). Parameters are NOT repeated
    /// here. Containers concatenate their children's buffers in traversal
    /// order, mirroring parameters().
    struct NamedBuffer {
        std::string name;
        Tensor* tensor = nullptr;
    };
    virtual std::vector<NamedBuffer> buffers() { return {}; }

    /// Human-readable layer type + geometry, e.g. "Conv2d(3->8, k3 s1 p1)".
    virtual std::string name() const = 0;

    /// Train/eval mode (BatchNorm statistics, Dropout masks). Switching to
    /// training mode also drops any derived inference state (packed-weight
    /// panels) so stale layouts can never shadow updated parameters.
    virtual void set_training(bool training) { training_ = training; }
    bool training() const { return training_; }

    /// Notifies the layer that parameter VALUES were overwritten behind its
    /// back (checkpoint restore, copy_parameters) so derived state — e.g.
    /// the packed GEMM panels Conv2d/Linear cache in eval mode — must be
    /// rebuilt before the next forward. Containers recurse to children.
    virtual void on_parameters_changed() {}

    /// Puts the layer in eval mode AND eagerly builds derived inference
    /// state (packed-weight panels), so a bundle pays the packing cost once
    /// at load instead of on the first request. Containers recurse.
    virtual void prepare_inference() { set_training(false); }

protected:
    bool training_ = true;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Sets requires_grad on every parameter of `layer` (freeze / unfreeze).
void set_requires_grad(Layer& layer, bool requires_grad);

/// Zeroes every parameter gradient of `layer`.
void zero_grad(Layer& layer);

/// Total number of scalar parameters.
std::int64_t parameter_count(Layer& layer);

/// Deep-copies all parameter values from `src` into `dst`; layers must have
/// identical parameter lists (checked by name and shape).
void copy_parameters(Layer& src, Layer& dst);

}  // namespace ens::nn
