#include "nn/compile.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/resblock.hpp"
#include "nn/sequential.hpp"

namespace ens::nn {

namespace {

// Rewritten layers are constructed through the normal ctors (which demand
// an Rng) and immediately overwritten via assign_parameters — the init is
// throwaway, like arch.cpp's rebuild seed.
constexpr std::uint64_t kCompileSeed = 0x434F4D50494C45ULL;  // "COMPILE"

// ------------------------------------------------------------- rewrites

/// Conv2d -> BatchNorm2d collapsed into one biased Conv2d using the BN's
/// RUNNING statistics (the eval-mode affine): per output channel,
/// scale = gamma/sqrt(running_var + eps), W' = W * scale,
/// b' = beta - scale * running_mean + scale * (conv bias or 0).
std::unique_ptr<Conv2d> fold_conv_bn(const Conv2d& conv, const BatchNorm2d& bn) {
    Rng rng(kCompileSeed);
    auto folded = std::make_unique<Conv2d>(conv.in_channels(), conv.out_channels(),
                                           conv.kernel(), conv.stride(), conv.padding(), rng,
                                           /*with_bias=*/true);
    const std::int64_t out_ch = conv.out_channels();
    const std::int64_t patch = conv.weight().value.dim(1);
    Tensor weight = conv.weight().value.clone();
    Tensor bias = Tensor::zeros(Shape{out_ch});
    float* w = weight.data();
    float* b_out = bias.data();
    const float* gamma = bn.gamma().value.data();
    const float* beta = bn.beta().value.data();
    const float* rmean = bn.running_mean().data();
    const float* rvar = bn.running_var().data();
    const float* conv_bias = conv.has_bias() ? conv.bias().value.data() : nullptr;
    for (std::int64_t c = 0; c < out_ch; ++c) {
        const float istd = 1.0f / std::sqrt(rvar[c] + bn.eps());
        const float scale = gamma[c] * istd;
        const float shift = beta[c] - scale * rmean[c];
        for (std::int64_t i = 0; i < patch; ++i) {
            w[c * patch + i] *= scale;
        }
        b_out[c] = shift + (conv_bias != nullptr ? scale * conv_bias[c] : 0.0f);
    }
    folded->assign_parameters(weight, &bias);
    folded->set_training(false);
    return folded;
}

/// A Linear with the same weights but a replacement bias (synthesizing one
/// when the source layer was bias-free). Keeps any fused epilogue.
std::unique_ptr<Linear> rebias_linear(const Linear& linear, const Tensor& new_bias) {
    Rng rng(kCompileSeed);
    auto out = std::make_unique<Linear>(linear.in_features(), linear.out_features(), rng,
                                        /*with_bias=*/true);
    out->assign_parameters(linear.weight().value, &new_bias);
    out->set_epilogue(linear.epilogue(), linear.epilogue_slope());
    out->set_training(false);
    return out;
}

Tensor linear_bias_or_zero(const Linear& linear) {
    return linear.has_bias() ? linear.bias().value.clone()
                             : Tensor::zeros(Shape{linear.out_features()});
}

/// BasicBlock -> CompiledResidual: both convs and the optional projection
/// fold their BNs; conv1 gains the inner ReLU as an epilogue.
std::unique_ptr<CompiledResidual> compile_residual(const BasicBlock& block) {
    auto conv1 = fold_conv_bn(block.conv1(), block.bn1());
    conv1->set_epilogue(Epilogue::relu);
    auto conv2 = fold_conv_bn(block.conv2(), block.bn2());
    std::unique_ptr<Conv2d> proj;
    if (block.projection_conv() != nullptr) {
        proj = fold_conv_bn(*block.projection_conv(), *block.projection_bn());
    }
    return std::make_unique<CompiledResidual>(std::move(conv1), std::move(conv2),
                                              std::move(proj));
}

/// Legal bake target: a non-trainable rank-1 mask. Trainable masks are
/// Parameters a caller may keep training/inspecting; higher-rank masks
/// belong to conv feature maps, where no adjacent op is a plain GEMM.
bool bakeable_mask(const FixedNoise& noise) {
    return !noise.trainable() && noise.mask().rank() == 1;
}

// ------------------------------------------------------------ pass body
// Each pass is a peephole over one Sequential's child vector; the driver
// below recurses into nested Sequentials first (bottom-up), so patterns
// spanning a child Sequential's boundary are intentionally out of scope.

std::size_t fold_batchnorm_children(std::vector<LayerPtr>& children) {
    std::size_t rewrites = 0;
    std::vector<LayerPtr> out;
    out.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (const auto* block = dynamic_cast<const BasicBlock*>(children[i].get())) {
            out.push_back(compile_residual(*block));
            ++rewrites;
            continue;
        }
        auto* conv = dynamic_cast<Conv2d*>(children[i].get());
        if (conv != nullptr && conv->epilogue() == Epilogue::none &&
            i + 1 < children.size()) {
            const auto* bn = dynamic_cast<const BatchNorm2d*>(children[i + 1].get());
            if (bn != nullptr && bn->channels() == conv->out_channels()) {
                out.push_back(fold_conv_bn(*conv, *bn));
                ++i;  // consume the BatchNorm2d
                ++rewrites;
                continue;
            }
        }
        out.push_back(std::move(children[i]));
    }
    children = std::move(out);
    return rewrites;
}

std::size_t bake_noise_children(std::vector<LayerPtr>& children) {
    std::size_t rewrites = 0;
    std::vector<LayerPtr> out;
    out.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
        Layer* next = i + 1 < children.size() ? children[i + 1].get() : nullptr;

        // [FixedNoise, Linear]: y = W(x + m) + b = Wx + (b + W m). Legal
        // even with a fused epilogue (the epilogue applies after the sum).
        if (const auto* noise = dynamic_cast<const FixedNoise*>(children[i].get())) {
            const auto* linear = dynamic_cast<const Linear*>(next);
            if (linear != nullptr && bakeable_mask(*noise) &&
                noise->mask().numel() == linear->in_features()) {
                Tensor bias = linear_bias_or_zero(*linear);
                const float* w = linear->weight().value.data();
                const float* m = noise->mask().data();
                float* b = bias.data();
                const std::int64_t in = linear->in_features();
                for (std::int64_t o = 0; o < linear->out_features(); ++o) {
                    float acc = 0.0f;
                    for (std::int64_t k = 0; k < in; ++k) {
                        acc += w[o * in + k] * m[k];
                    }
                    b[o] += acc;
                }
                out.push_back(rebias_linear(*linear, bias));
                ++i;  // consume the Linear (noise layer is dropped)
                ++rewrites;
                continue;
            }
        }

        // [Linear, FixedNoise]: y = (Wx + b) + m = Wx + (b + m) — only
        // while the Linear has no fused epilogue (relu(x) + m != relu(x + m)).
        if (const auto* linear = dynamic_cast<const Linear*>(children[i].get())) {
            const auto* noise = dynamic_cast<const FixedNoise*>(next);
            if (noise != nullptr && linear->epilogue() == Epilogue::none &&
                bakeable_mask(*noise) && noise->mask().numel() == linear->out_features()) {
                Tensor bias = linear_bias_or_zero(*linear);
                bias.add_(noise->mask());
                out.push_back(rebias_linear(*linear, bias));
                ++i;  // consume the FixedNoise
                ++rewrites;
                continue;
            }
        }

        out.push_back(std::move(children[i]));
    }
    children = std::move(out);
    return rewrites;
}

std::size_t fuse_activation_children(std::vector<LayerPtr>& children) {
    std::size_t rewrites = 0;
    std::vector<LayerPtr> out;
    out.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
        Layer* next = i + 1 < children.size() ? children[i + 1].get() : nullptr;
        Epilogue epilogue = Epilogue::none;
        float slope = 0.0f;
        if (dynamic_cast<const ReLU*>(next) != nullptr) {
            epilogue = Epilogue::relu;
        } else if (const auto* leaky = dynamic_cast<const LeakyReLU*>(next)) {
            epilogue = Epilogue::leaky_relu;
            slope = leaky->slope();
        }
        bool fused = false;
        if (epilogue != Epilogue::none) {
            if (auto* conv = dynamic_cast<Conv2d*>(children[i].get());
                conv != nullptr && conv->epilogue() == Epilogue::none) {
                conv->set_epilogue(epilogue, slope);
                fused = true;
            } else if (auto* linear = dynamic_cast<Linear*>(children[i].get());
                       linear != nullptr && linear->epilogue() == Epilogue::none) {
                linear->set_epilogue(epilogue, slope);
                fused = true;
            }
        }
        out.push_back(std::move(children[i]));
        if (fused) {
            ++i;  // drop the standalone activation layer
            ++rewrites;
        }
    }
    children = std::move(out);
    return rewrites;
}

// ---------------------------------------------------------- pass driver

using Peephole = std::size_t (*)(std::vector<LayerPtr>&);

/// Applies `fn` to every Sequential child list, bottom-up. A
/// non-Sequential root still gets one single-element window, so a bare
/// BasicBlock root compiles too.
std::size_t run_peephole(LayerPtr& node, Peephole fn) {
    std::size_t rewrites = 0;
    if (auto* seq = dynamic_cast<Sequential*>(node.get())) {
        std::vector<LayerPtr> children = seq->release_slice(0, seq->size());
        for (LayerPtr& child : children) {
            if (dynamic_cast<Sequential*>(child.get()) != nullptr) {
                rewrites += run_peephole(child, fn);
            }
        }
        rewrites += fn(children);
        for (LayerPtr& child : children) {
            seq->push_back(std::move(child));
        }
        return rewrites;
    }
    std::vector<LayerPtr> window;
    window.push_back(std::move(node));
    rewrites += fn(window);
    ENS_CHECK(window.size() == 1, "graph compiler: root rewrite changed arity");
    node = std::move(window[0]);
    return rewrites;
}

std::size_t count_remaining_noise(const Layer& node) {
    if (const auto* seq = dynamic_cast<const Sequential*>(&node)) {
        std::size_t n = 0;
        for (std::size_t i = 0; i < seq->size(); ++i) {
            n += count_remaining_noise(seq->layer(i));
        }
        return n;
    }
    return dynamic_cast<const FixedNoise*>(&node) != nullptr ? 1 : 0;
}

}  // namespace

// -------------------------------------------------------- CompileReport

bool CompileReport::changed() const {
    for (const PassStats& stats : passes) {
        if (stats.rewrites > 0) {
            return true;
        }
    }
    return false;
}

std::string CompileReport::to_string() const {
    std::ostringstream oss;
    oss << "compile[";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        oss << (i > 0 ? ", " : "") << passes[i].pass << "=" << passes[i].rewrites;
    }
    oss << "]";
    return oss.str();
}

// ------------------------------------------------- compile_for_inference

LayerPtr compile_for_inference(LayerPtr root, const CompileOptions& options,
                               CompileReport* report) {
    ENS_REQUIRE(root != nullptr, "compile_for_inference: null graph");
    CompileReport local;

    struct Pass {
        const char* name;
        Peephole fn;
        bool enabled;
    };
    // Order matters: folding first exposes bare Conv2d outputs, baking
    // runs before fusion so a [Linear, FixedNoise, ReLU] chain can bake
    // THEN fuse (an already-fused epilogue would make the bake illegal).
    const Pass pipeline[] = {
        {"fold-batchnorm", &fold_batchnorm_children, options.fold_batchnorm},
        {"bake-noise", &bake_noise_children, options.bake_noise},
        {"fuse-activations", &fuse_activation_children, options.fuse_activations},
    };
    for (const Pass& pass : pipeline) {
        if (!pass.enabled) {
            continue;
        }
        local.passes.push_back({pass.name, run_peephole(root, pass.fn)});
    }

    if (options.require_noise_baking) {
        const std::size_t remaining = count_remaining_noise(*root);
        if (remaining > 0) {
            throw Error(ErrorCode::compile_error,
                        "compile_for_inference: " + std::to_string(remaining) +
                            " FixedNoise layer(s) have no legal bake target (trainable, "
                            "non-rank-1, or not adjacent to a Linear) and "
                            "require_noise_baking is set");
        }
    }

    if (options.repack) {
        root->prepare_inference();
        local.passes.push_back({"repack", 0});
    }
    if (report != nullptr) {
        *report = std::move(local);
    }
    return root;
}

// ----------------------------------------------------- CompiledResidual

CompiledResidual::CompiledResidual(std::unique_ptr<Conv2d> conv1, std::unique_ptr<Conv2d> conv2,
                                   std::unique_ptr<Conv2d> projection)
    : conv1_(std::move(conv1)), conv2_(std::move(conv2)), proj_(std::move(projection)) {
    ENS_REQUIRE(conv1_ != nullptr && conv2_ != nullptr, "CompiledResidual: null conv");
    training_ = false;
}

Tensor CompiledResidual::forward(const Tensor& input) {
    Tensor main = conv1_->forward(input);
    main = conv2_->forward(main);
    if (proj_ != nullptr) {
        main.add_(proj_->forward(input));
    } else {
        main.add_(input);
    }
    apply_epilogue(Epilogue::relu, 0.0f, main.data(), main.numel());
    return main;
}

Tensor CompiledResidual::backward(const Tensor&) {
    ENS_FAIL("CompiledResidual::backward: compiled residual blocks are inference-only");
}

std::vector<Parameter*> CompiledResidual::parameters() {
    std::vector<Parameter*> out;
    for (Conv2d* conv : {conv1_.get(), conv2_.get(), proj_.get()}) {
        if (conv != nullptr) {
            const auto p = conv->parameters();
            out.insert(out.end(), p.begin(), p.end());
        }
    }
    return out;
}

std::string CompiledResidual::name() const {
    return "CompiledResidual(" + std::to_string(conv1_->in_channels()) + "->" +
           std::to_string(conv1_->out_channels()) + ", s" + std::to_string(conv1_->stride()) +
           (proj_ != nullptr ? ", proj" : "") + ")";
}

void CompiledResidual::set_training(bool training) {
    ENS_REQUIRE(!training,
                "CompiledResidual: compiled residual blocks are inference-only and cannot "
                "re-enter training mode");
    Layer::set_training(false);
    conv1_->set_training(false);
    conv2_->set_training(false);
    if (proj_ != nullptr) {
        proj_->set_training(false);
    }
}

void CompiledResidual::on_parameters_changed() {
    conv1_->on_parameters_changed();
    conv2_->on_parameters_changed();
    if (proj_ != nullptr) {
        proj_->on_parameters_changed();
    }
}

void CompiledResidual::prepare_inference() {
    Layer::set_training(false);
    conv1_->prepare_inference();
    conv2_->prepare_inference();
    if (proj_ != nullptr) {
        proj_->prepare_inference();
    }
}

}  // namespace ens::nn
