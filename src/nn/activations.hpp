#pragma once
// Pointwise activations. ReLU is used throughout the classifiers;
// LeakyReLU and Sigmoid belong to the attack decoder (inversion networks
// reconstruct pixel intensities in [0, 1]).

#include "nn/layer.hpp"

namespace ens::nn {

class ReLU final : public Layer {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "ReLU"; }

private:
    Tensor cached_mask_;  // 1 where input > 0
};

class LeakyReLU final : public Layer {
public:
    explicit LeakyReLU(float negative_slope = 0.2f) : slope_(negative_slope) {}

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override;

    float slope() const { return slope_; }

private:
    float slope_;
    Tensor cached_input_;
};

class Sigmoid final : public Layer {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Sigmoid"; }

private:
    Tensor cached_output_;
};

class Tanh final : public Layer {
public:
    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Tanh"; }

private:
    Tensor cached_output_;
};

}  // namespace ens::nn
