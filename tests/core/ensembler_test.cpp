#include "core/ensembler.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar10.hpp"
#include "metrics/similarity.hpp"
#include "nn/linear.hpp"
#include "tensor/ops.hpp"

namespace ens::core {
namespace {

nn::ResNetConfig tiny_arch() {
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 10;
    return arch;
}

EnsemblerConfig tiny_config(std::size_t n = 3, std::size_t p = 2) {
    EnsemblerConfig config;
    config.num_networks = n;
    config.num_selected = p;
    config.noise_stddev = 0.1f;
    config.lambda = 0.5f;
    config.stage1_options.epochs = 1;
    config.stage1_options.batch_size = 32;
    config.stage3_options.epochs = 1;
    config.stage3_options.batch_size = 32;
    config.seed = 77;
    return config;
}

TEST(Ensembler, ValidatesConfig) {
    EnsemblerConfig bad = tiny_config();
    bad.num_networks = 1;
    EXPECT_THROW(Ensembler(tiny_arch(), bad), std::invalid_argument);
    bad = tiny_config();
    bad.num_selected = 5;  // > N = 3
    EXPECT_THROW(Ensembler(tiny_arch(), bad), std::invalid_argument);
}

TEST(Ensembler, StageGatingEnforced) {
    Ensembler ensembler(tiny_arch(), tiny_config());
    EXPECT_THROW(ensembler.run_stage2(), std::runtime_error);
    EXPECT_THROW(ensembler.selector(), std::runtime_error);
    EXPECT_THROW(ensembler.client_head(), std::runtime_error);
    EXPECT_THROW(ensembler.predict(Tensor(Shape{1, 3, 16, 16})), std::runtime_error);
}

struct TrainedEnsemblerFixture : public ::testing::Test {
    data::SynthCifar10 train_set{160, 501, 16};
    data::SynthCifar10 test_set{64, 502, 16};
    std::unique_ptr<Ensembler> ensembler;

    void SetUp() override {
        ensembler = std::make_unique<Ensembler>(tiny_arch(), tiny_config());
        ensembler->run_stage1(train_set);
    }
};

TEST_F(TrainedEnsemblerFixture, Stage1ProducesDistinctNoisesAndHeads) {
    // Each member must carry a different fixed noise mask...
    const float mask_cs = metrics::cosine_similarity(ensembler->member_noise(0).mask(),
                                                     ensembler->member_noise(1).mask());
    EXPECT_LT(std::abs(mask_cs), 0.2f);  // quasi-orthogonal random masks

    // ...and distinct head weights (§III-C: noises force distinct heads).
    Rng rng(1);
    const Tensor x = Tensor::uniform(Shape{8, 3, 16, 16}, rng, 0.0f, 1.0f);
    ensembler->member_head(0).set_training(false);
    ensembler->member_head(1).set_training(false);
    const Tensor z0 = ensembler->member_head(0).forward(x);
    const Tensor z1 = ensembler->member_head(1).forward(x);
    EXPECT_LT(metrics::cosine_similarity(z0, z1), 0.99f);
}

TEST_F(TrainedEnsemblerFixture, Stage2SelectionIsSeededAndSized) {
    ensembler->run_stage2();
    const Selector first = ensembler->selector();
    EXPECT_EQ(first.n(), 3u);
    EXPECT_EQ(first.p(), 2u);
    ensembler->run_stage2();
    EXPECT_EQ(ensembler->selector().indices(), first.indices());
}

TEST_F(TrainedEnsemblerFixture, ExplicitSelectionRespected) {
    ensembler->run_stage2({0, 2});
    EXPECT_EQ(ensembler->selector().indices(), (std::vector<std::size_t>{0, 2}));
}

TEST_F(TrainedEnsemblerFixture, Stage3BuildsDeployablePipeline) {
    ensembler->run_stage2();
    const Stage3Diagnostics diagnostics = ensembler->run_stage3(train_set);
    EXPECT_GT(diagnostics.final_ce, 0.0f);
    EXPECT_LE(diagnostics.final_max_cosine, 1.0f);

    Rng rng(2);
    const Tensor x = Tensor::uniform(Shape{4, 3, 16, 16}, rng, 0.0f, 1.0f);
    const Tensor logits = ensembler->predict(x);
    EXPECT_EQ(logits.shape(), Shape({4, 10}));

    // Tail consumes the P * 8w concatenation.
    const auto* tail_linear =
        dynamic_cast<const nn::Linear*>(&ensembler->client_tail().layer(0));
    ASSERT_NE(tail_linear, nullptr);
    EXPECT_EQ(tail_linear->in_features(),
              2 * nn::resnet18_feature_width(ensembler->architecture()));

    const float accuracy = ensembler->evaluate_accuracy(test_set, 32);
    EXPECT_GT(accuracy, 0.12f);  // above chance even at this tiny scale
}

TEST_F(TrainedEnsemblerFixture, DeployedViewExposesAllNBodies) {
    ensembler->run_stage2();
    ensembler->run_stage3(train_set);
    split::DeployedPipeline view = ensembler->deployed();
    EXPECT_EQ(view.bodies.size(), 3u);

    Rng rng(3);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0.0f, 1.0f);
    const Tensor z = view.transmit(x);
    EXPECT_EQ(z.dim(1), nn::resnet18_split_channels(ensembler->architecture()));

    // transmit must include the fixed stage-3 noise: subtracting the raw
    // head output leaves exactly the mask.
    ensembler->client_head().set_training(false);
    const Tensor raw = ensembler->client_head().forward(x);
    const Tensor difference = sub(z, raw);
    for (std::int64_t n = 0; n < 2; ++n) {
        for (std::int64_t i = 0; i < ensembler->client_noise().mask().numel(); ++i) {
            EXPECT_NEAR(difference.at(n * ensembler->client_noise().mask().numel() + i),
                        ensembler->client_noise().mask().at(i), 1e-5f);
        }
    }
}

TEST_F(TrainedEnsemblerFixture, Stage3HeadIsNotAStage1Head) {
    ensembler->run_stage2();
    ensembler->run_stage3(train_set);
    Rng rng(4);
    const Tensor x = Tensor::uniform(Shape{8, 3, 16, 16}, rng, 0.0f, 1.0f);
    // The Eq. 3 regularizer pushes max cosine similarity well below 1.
    EXPECT_LT(ensembler->max_head_cosine(x), 0.95f);
}

TEST(Ensembler, FitRunsAllStages) {
    const data::SynthCifar10 train_set{96, 503, 16};
    EnsemblerConfig config = tiny_config(2, 1);
    Ensembler ensembler(tiny_arch(), config);
    ensembler.fit(train_set);
    Rng rng(5);
    const Tensor logits = ensembler.predict(Tensor::uniform(Shape{1, 3, 16, 16}, rng, 0, 1));
    EXPECT_EQ(logits.shape(), Shape({1, 10}));
}

}  // namespace
}  // namespace ens::core
