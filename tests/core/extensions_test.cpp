#include "core/extensions.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar10.hpp"
#include "nn/dropout.hpp"

namespace ens::core {
namespace {

/// One fit tiny Ensembler shared across the suite (fitting dominates cost).
class ExtensionsFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        train_ = new data::SynthCifar10(96, 301, 16);
        test_ = new data::SynthCifar10(48, 302, 16);

        arch_ = new nn::ResNetConfig();
        arch_->base_width = 4;
        arch_->image_size = 16;
        arch_->num_classes = 10;

        EnsemblerConfig config;
        config.num_networks = 3;
        config.num_selected = 2;
        config.stage1_options.epochs = 2;
        config.stage3_options.epochs = 2;
        config.seed = 77;
        reference_ = new Ensembler(*arch_, config);
        reference_->fit(*train_);
        reference_accuracy_ = reference_->evaluate_accuracy(*test_);
    }

    static void TearDownTestSuite() {
        delete reference_;
        delete arch_;
        delete test_;
        delete train_;
    }

    /// Fresh identically-trained Ensembler (same seed => same weights) so
    /// each test mutates its own instance.
    static Ensembler make_fit_copy() {
        EnsemblerConfig config;
        config.num_networks = 3;
        config.num_selected = 2;
        config.stage1_options.epochs = 2;
        config.stage3_options.epochs = 2;
        config.seed = 77;
        Ensembler ensembler(*arch_, config);
        ensembler.fit(*train_);
        return ensembler;
    }

    static nn::ResNetConfig* arch_;
    static data::SynthCifar10* train_;
    static data::SynthCifar10* test_;
    static Ensembler* reference_;
    static float reference_accuracy_;
};

nn::ResNetConfig* ExtensionsFixture::arch_ = nullptr;
data::SynthCifar10* ExtensionsFixture::train_ = nullptr;
data::SynthCifar10* ExtensionsFixture::test_ = nullptr;
Ensembler* ExtensionsFixture::reference_ = nullptr;
float ExtensionsFixture::reference_accuracy_ = 0.0f;

// ------------------------------------------------------- shredder-in-stage3

TEST_F(ExtensionsFixture, ShredderNoiseGrowsMaskPower) {
    Ensembler ensembler = make_fit_copy();
    ShredderStage3Options options;
    options.epochs = 2;
    options.noise_reward = 0.1f;
    const ShredderStage3Result result = attach_shredder_noise(ensembler, *train_, options);
    EXPECT_GT(result.final_mask_power, result.initial_mask_power);
}

TEST_F(ExtensionsFixture, ShredderNoiseKeepsAccuracyUsable) {
    Ensembler ensembler = make_fit_copy();
    ShredderStage3Options options;
    options.epochs = 2;
    const ShredderStage3Result result = attach_shredder_noise(ensembler, *train_, options);
    (void)result;
    const float accuracy = ensembler.evaluate_accuracy(*test_);
    // The CE term anchors the mask: the combined defense must not collapse
    // the classifier (paper: Shredder's additive variant costs ~3%).
    EXPECT_GT(accuracy, reference_accuracy_ - 0.15f);
}

TEST_F(ExtensionsFixture, ShredderNoiseChangesTheWire) {
    Ensembler ensembler = make_fit_copy();
    const Tensor probe = test_->get(0).image.reshaped(Shape{1, 3, 16, 16});
    const Tensor wire_before = ensembler.deployed().transmit(probe);
    attach_shredder_noise(ensembler, *train_, ShredderStage3Options{.epochs = 1});
    const Tensor wire_after = ensembler.deployed().transmit(probe);
    ASSERT_EQ(wire_before.shape(), wire_after.shape());
    float max_diff = 0.0f;
    const auto a = wire_before.to_vector();
    const auto b = wire_after.to_vector();
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    }
    EXPECT_GT(max_diff, 1e-4f);
}

TEST_F(ExtensionsFixture, ReplaceClientNoiseValidatesShape) {
    Ensembler ensembler = make_fit_copy();
    Rng rng(1);
    auto wrong_shape = std::make_unique<nn::FixedNoise>(Shape{1, 2, 2}, 0.1f, rng);
    EXPECT_THROW(ensembler.replace_client_noise(std::move(wrong_shape)),
                 std::invalid_argument);
    EXPECT_THROW(ensembler.replace_client_noise(nullptr), std::invalid_argument);
}

// ----------------------------------------------------------- tail dropout

TEST_F(ExtensionsFixture, TailDropoutInsertsBeforeLinear) {
    Ensembler ensembler = make_fit_copy();
    const std::size_t tail_size = ensembler.client_tail().size();
    const std::size_t position = attach_tail_dropout(ensembler, 0.3f);
    EXPECT_EQ(position, tail_size - 1);
    EXPECT_EQ(ensembler.client_tail().size(), tail_size + 1);
    EXPECT_TRUE(ensembler.client_tail().layer(position).name().starts_with("Dropout"));
}

TEST_F(ExtensionsFixture, TailDropoutIsActiveOnTheDeployedPipeline) {
    Ensembler ensembler = make_fit_copy();
    attach_tail_dropout(ensembler, 0.5f);
    const Tensor probe = test_->get(0).image.reshaped(Shape{1, 3, 16, 16});
    // Two eval-mode predictions differ because the DR dropout stays live.
    const Tensor first = ensembler.predict(probe);
    const Tensor second = ensembler.predict(probe);
    const auto a = first.to_vector();
    const auto b = second.to_vector();
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_diff = any_diff || std::abs(a[i] - b[i]) > 1e-6f;
    }
    EXPECT_TRUE(any_diff);
}

TEST_F(ExtensionsFixture, TailDropoutRejectsDegenerateProbability) {
    Ensembler ensembler = make_fit_copy();
    EXPECT_THROW(attach_tail_dropout(ensembler, 0.0f), std::invalid_argument);
    EXPECT_THROW(attach_tail_dropout(ensembler, 1.0f), std::invalid_argument);
}

TEST_F(ExtensionsFixture, CombinedDefensesStackOnOnePipeline) {
    // §IV-C's full composition: ensemble + Shredder mask + FC dropout.
    Ensembler ensembler = make_fit_copy();
    attach_shredder_noise(ensembler, *train_, ShredderStage3Options{.epochs = 1});
    attach_tail_dropout(ensembler, 0.2f);
    const float accuracy = ensembler.evaluate_accuracy(*test_);
    EXPECT_GT(accuracy, 0.05f);  // still a functioning classifier
}

}  // namespace
}  // namespace ens::core
