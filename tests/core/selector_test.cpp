#include "core/selector.hpp"

#include <set>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"

namespace ens::core {
namespace {

TEST(Selector, ValidatesConstruction) {
    EXPECT_NO_THROW(Selector(5, {0, 2, 4}));
    EXPECT_THROW(Selector(5, {}), std::invalid_argument);
    EXPECT_THROW(Selector(5, {0, 5}), std::invalid_argument);
    EXPECT_THROW(Selector(5, {1, 1}), std::invalid_argument);
    EXPECT_THROW(Selector(0, {0}), std::invalid_argument);
}

TEST(Selector, RandomDrawsDistinctIndices) {
    Rng rng(1);
    for (int round = 0; round < 20; ++round) {
        const Selector s = Selector::random(10, 4, rng);
        EXPECT_EQ(s.n(), 10u);
        EXPECT_EQ(s.p(), 4u);
        const std::set<std::size_t> unique(s.indices().begin(), s.indices().end());
        EXPECT_EQ(unique.size(), 4u);
        EXPECT_LT(*unique.rbegin(), 10u);
    }
}

TEST(Selector, RandomIsSeedDeterministic) {
    Rng a(7);
    Rng b(7);
    EXPECT_EQ(Selector::random(10, 3, a).indices(), Selector::random(10, 3, b).indices());
}

TEST(Selector, RandomCoversAllSubsetsEventually) {
    Rng rng(2);
    std::set<std::vector<std::size_t>> seen;
    for (int i = 0; i < 400; ++i) {
        auto idx = Selector::random(4, 2, rng).indices();
        std::sort(idx.begin(), idx.end());
        seen.insert(idx);
    }
    EXPECT_EQ(seen.size(), 6u);  // C(4,2)
}

TEST(Selector, Contains) {
    const Selector s(6, {1, 3});
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(5));
}

TEST(Selector, ApplyPicksScalesAndConcats) {
    const Selector s(3, {2, 0});
    const Tensor f0 = Tensor::from_vector(Shape{1, 2}, {2, 4});
    const Tensor f1 = Tensor::from_vector(Shape{1, 2}, {100, 100});
    const Tensor f2 = Tensor::from_vector(Shape{1, 2}, {6, 8});
    const Tensor combined = s.apply({f0, f1, f2});
    EXPECT_EQ(combined.shape(), Shape({1, 4}));
    // Order follows the selector's index list (2 then 0), scaled by 1/2.
    EXPECT_EQ(combined.to_vector(), (std::vector<float>{3, 4, 1, 2}));
}

TEST(Selector, ApplyRequiresAllN) {
    const Selector s(3, {0});
    EXPECT_THROW(s.apply({Tensor(Shape{1, 2})}), std::invalid_argument);
}

TEST(Selector, CombineSelectedMatchesApply) {
    Rng rng(3);
    const Selector s(4, {1, 3});
    std::vector<Tensor> all;
    for (int i = 0; i < 4; ++i) {
        all.push_back(Tensor::randn(Shape{2, 3}, rng));
    }
    const Tensor via_apply = s.apply(all);
    const Tensor via_selected = s.combine_selected({all[1], all[3]});
    EXPECT_EQ(via_apply.to_vector(), via_selected.to_vector());
}

TEST(Selector, SplitGradientIsAdjointOfCombine) {
    // <combine(f), g> must equal sum_i <f_i, split(g)_i>.
    Rng rng(4);
    const Selector s(5, {0, 2, 4});
    std::vector<Tensor> features;
    for (int i = 0; i < 3; ++i) {
        features.push_back(Tensor::randn(Shape{2, 4}, rng));
    }
    const Tensor combined = s.combine_selected(features);
    const Tensor g = Tensor::randn(combined.shape(), rng);
    const auto grads = s.split_gradient(g);
    ASSERT_EQ(grads.size(), 3u);

    double lhs = dot(combined, g);
    double rhs = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        rhs += dot(features[i], grads[i]);
    }
    EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Selector, ToString) {
    EXPECT_EQ(Selector(10, {2, 5, 7}).to_string(), "{2,5,7}/10");
}

}  // namespace
}  // namespace ens::core
