#include "core/server_state.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synth_cifar10.hpp"
#include "nn/resnet.hpp"

namespace ens::core {
namespace {

nn::ResNetConfig tiny_arch() {
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 10;
    return arch;
}

EnsemblerConfig tiny_config(std::uint64_t seed) {
    EnsemblerConfig config;
    config.num_networks = 2;
    config.num_selected = 1;
    config.stage1_options.epochs = 1;
    config.stage3_options.epochs = 1;
    config.seed = seed;
    return config;
}

TEST(ServerBundle, RoundTripReproducesBodyOutputsExactly) {
    const data::SynthCifar10 train_set(64, 5, 16);
    const nn::ResNetConfig arch = tiny_arch();

    Ensembler source(arch, tiny_config(1));
    source.fit(train_set);
    std::stringstream bundle;
    save_server_bundle(source, bundle);

    // A server process with different init (seed) loads the bundle.
    Ensembler target(arch, tiny_config(2));
    target.fit(train_set);
    load_server_bundle(target, bundle);

    Rng rng(9);
    const Tensor wire = Tensor::randn(
        Shape{2, nn::resnet18_split_channels(arch), nn::resnet18_split_hw(arch),
              nn::resnet18_split_hw(arch)},
        rng);
    for (std::size_t i = 0; i < source.num_networks(); ++i) {
        source.member_body(i).set_training(false);
        target.member_body(i).set_training(false);
        const auto expected = source.member_body(i).forward(wire).to_vector();
        const auto actual = target.member_body(i).forward(wire).to_vector();
        ASSERT_EQ(expected.size(), actual.size());
        for (std::size_t k = 0; k < expected.size(); ++k) {
            ASSERT_FLOAT_EQ(expected[k], actual[k]) << "body " << i << " element " << k;
        }
    }
}

TEST(ServerBundle, RejectsMismatchedEnsembleSize) {
    const data::SynthCifar10 train_set(64, 5, 16);
    const nn::ResNetConfig arch = tiny_arch();
    Ensembler source(arch, tiny_config(1));
    source.fit(train_set);
    std::stringstream bundle;
    save_server_bundle(source, bundle);

    EnsemblerConfig bigger = tiny_config(3);
    bigger.num_networks = 3;
    Ensembler target(arch, bigger);
    target.fit(train_set);
    EXPECT_THROW(load_server_bundle(target, bundle), std::invalid_argument);
}

TEST(ServerBundle, RejectsGarbageMagic) {
    const data::SynthCifar10 train_set(64, 5, 16);
    Ensembler target(tiny_arch(), tiny_config(1));
    target.fit(train_set);
    std::stringstream garbage("not a bundle at all");
    EXPECT_THROW(load_server_bundle(target, garbage), std::runtime_error);
}

}  // namespace
}  // namespace ens::core
