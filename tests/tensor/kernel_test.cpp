// Parity and lifecycle suite for the blocked GEMM micro-kernel
// (src/tensor/gemm_kernel.hpp) and the packed-weight caches built on it.
//
// Two distinct equality notions, per the kernel's determinism contract:
//
//   - BOUNDED ERROR vs the naive reference (gemm_naive) and a
//     double-accumulating oracle: blocking + FMA reorder the summation, so
//     cross-kernel comparisons use EXPECT_NEAR with a 1e-3 tolerance
//     (inputs are O(1) randn, K <= a few hundred — the same bound
//     ops_test.cpp has always used for GEMM).
//   - BIT-EXACT across the kernel's own axes: packed vs unpacked operands,
//     parallel vs serial, train-mode vs eval-mode layer forwards, and
//     bundle loads. These use EXPECT_EQ on to_vector()/raw floats — any
//     reordering is a bug, because serving bit-parity rests on it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "serve/bundle.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

#include "../serve/serve_harness.hpp"

namespace ens {
namespace {

namespace fs = std::filesystem;

/// Double-accumulating oracle, independent of both kernels.
Tensor reference_gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b, float alpha,
                      float beta, const Tensor& c_in) {
    const std::int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const std::int64_t k = trans_a ? a.dim(0) : a.dim(1);
    const std::int64_t n = trans_b ? b.dim(0) : b.dim(1);
    Tensor out(Shape{m, n});
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = trans_a ? a.data()[p * a.dim(1) + i] : a.data()[i * a.dim(1) + p];
                const float bv = trans_b ? b.data()[j * b.dim(1) + p] : b.data()[p * b.dim(1) + j];
                acc += static_cast<double>(av) * bv;
            }
            out.data()[i * n + j] = static_cast<float>(
                alpha * acc + (beta == 0.0f ? 0.0 : beta * c_in.data()[i * n + j]));
        }
    }
    return out;
}

struct GemmCase {
    std::int64_t m, n, k;
    bool trans_a, trans_b;
};

class KernelSweep : public ::testing::TestWithParam<GemmCase> {};

// Shapes chosen to stress every ragged edge: below one tile, exact tile
// multiples, one-past-a-tile, K crossing the kKC slab boundary, and the
// degenerate M=1 / N=1 / K=1 rows.
INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelSweep,
    ::testing::Values(GemmCase{1, 1, 1, false, false}, GemmCase{1, 7, 3, false, false},
                      GemmCase{5, 3, 2, false, true}, GemmCase{3, 129, 7, true, false},
                      GemmCase{6, 16, 256, false, false},   // exact MR/NR/KC tiles
                      GemmCase{7, 17, 257, false, false},   // one past every tile
                      GemmCase{12, 32, 512, true, true},    // tile multiples, both trans
                      GemmCase{13, 31, 57, false, false}, GemmCase{65, 33, 300, false, true},
                      GemmCase{97, 5, 301, true, false},    // K crosses the kKC slab
                      GemmCase{1, 64, 19, false, false},    // M=1
                      GemmCase{64, 1, 19, true, true},      // N=1
                      GemmCase{23, 29, 1, false, false}));  // K=1

TEST_P(KernelSweep, MatchesReferenceAllTransCombos) {
    const GemmCase p = GetParam();
    Rng rng(0x5EED + static_cast<std::uint64_t>(p.m * 1000 + p.n * 10 + p.k));
    const Tensor a = Tensor::randn(p.trans_a ? Shape{p.k, p.m} : Shape{p.m, p.k}, rng);
    const Tensor b = Tensor::randn(p.trans_b ? Shape{p.n, p.k} : Shape{p.k, p.n}, rng);
    const float alpha = 1.25f;

    // beta == 0 must fully overwrite C: poison it with NaN so a
    // read-modify-write (0 * NaN = NaN) cannot hide.
    Tensor c(Shape{p.m, p.n});
    c.fill(std::nanf(""));
    kernel::gemm_blocked(p.m, p.n, p.k, a.data(), a.dim(1), p.trans_a, b.data(), b.dim(1),
                         p.trans_b, c.data(), p.n, alpha, 0.0f, /*parallel=*/false);
    const Tensor expected0 = reference_gemm(a, p.trans_a, b, p.trans_b, alpha, 0.0f, c);
    for (std::int64_t i = 0; i < c.numel(); ++i) {
        ASSERT_NEAR(c.data()[i], expected0.data()[i], 1e-3f) << "beta=0 element " << i;
    }

    // beta != 0 accumulates into existing C.
    Tensor c1 = Tensor::randn(Shape{p.m, p.n}, rng);
    const Tensor c1_before = c1.clone();
    kernel::gemm_blocked(p.m, p.n, p.k, a.data(), a.dim(1), p.trans_a, b.data(), b.dim(1),
                         p.trans_b, c1.data(), p.n, alpha, 0.5f, /*parallel=*/true);
    const Tensor expected1 = reference_gemm(a, p.trans_a, b, p.trans_b, alpha, 0.5f, c1_before);
    for (std::int64_t i = 0; i < c1.numel(); ++i) {
        ASSERT_NEAR(c1.data()[i], expected1.data()[i], 1e-3f) << "beta=0.5 element " << i;
    }
}

TEST_P(KernelSweep, AgreesWithNaiveKernel) {
    const GemmCase p = GetParam();
    Rng rng(0xA11CE);
    const Tensor a = Tensor::randn(p.trans_a ? Shape{p.k, p.m} : Shape{p.m, p.k}, rng);
    const Tensor b = Tensor::randn(p.trans_b ? Shape{p.n, p.k} : Shape{p.k, p.n}, rng);
    Tensor c_blocked(Shape{p.m, p.n});
    Tensor c_naive(Shape{p.m, p.n});
    gemm(a, p.trans_a, b, p.trans_b, c_blocked);
    gemm_naive(a, p.trans_a, b, p.trans_b, c_naive);
    for (std::int64_t i = 0; i < c_blocked.numel(); ++i) {
        ASSERT_NEAR(c_blocked.data()[i], c_naive.data()[i], 1e-3f) << "element " << i;
    }
}

TEST(Kernel, PackedUnpackedAndParallelAreBitIdentical) {
    // One C, five ways: unpacked serial, unpacked parallel, pre-packed A,
    // pre-packed B, both pre-packed. All five must agree to the bit.
    const std::int64_t m = 97, n = 65, k = 300;
    Rng rng(0xB17);
    const Tensor a = Tensor::randn(Shape{m, k}, rng);
    const Tensor bt = Tensor::randn(Shape{n, k}, rng);  // used as op(B) via trans_b

    const auto run = [&](auto&& fn) {
        Tensor c(Shape{m, n});
        c.fill(std::nanf(""));
        fn(c);
        return c.to_vector();
    };
    const std::vector<float> serial = run([&](Tensor& c) {
        kernel::gemm_blocked(m, n, k, a.data(), k, false, bt.data(), k, true, c.data(), n, 1.0f,
                             0.0f, false);
    });
    const std::vector<float> parallel = run([&](Tensor& c) {
        kernel::gemm_blocked(m, n, k, a.data(), k, false, bt.data(), k, true, c.data(), n, 1.0f,
                             0.0f, true);
    });
    const kernel::PackedMatrix pa = kernel::pack_a(a.data(), k, false, m, k);
    const kernel::PackedMatrix pb = kernel::pack_b(bt.data(), k, true, k, n);
    const std::vector<float> packed_a = run([&](Tensor& c) {
        kernel::gemm_packed_a(pa, bt.data(), k, true, n, c.data(), n, 1.0f, 0.0f, true);
    });
    const std::vector<float> packed_b = run([&](Tensor& c) {
        kernel::gemm_packed_b(a.data(), k, false, m, pb, c.data(), n, 1.0f, 0.0f, false);
    });
    const std::vector<float> packed_both = run(
        [&](Tensor& c) { kernel::gemm_packed(pa, pb, c.data(), n, 1.0f, 0.0f, true); });

    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial, packed_a);
    EXPECT_EQ(serial, packed_b);
    EXPECT_EQ(serial, packed_both);
}

TEST(Kernel, TensorGemmAndGemmSerialAreBitIdentical) {
    Rng rng(0x90D);
    const Tensor a = Tensor::randn(Shape{70, 130}, rng);
    const Tensor b = Tensor::randn(Shape{130, 40}, rng);
    Tensor c_par(Shape{70, 40});
    Tensor c_ser(Shape{70, 40});
    gemm(a, false, b, false, c_par, 0.7f);
    gemm_serial(a, false, b, false, c_ser, 0.7f);
    EXPECT_EQ(c_par.to_vector(), c_ser.to_vector());
}

TEST(Kernel, IsaIsDispatched) {
    const std::string isa = kernel::kernel_isa();
    EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "portable") << isa;
}

TEST(Kernel, RejectsWrongSidePacksAndGeometryMismatch) {
    Rng rng(7);
    const Tensor a = Tensor::randn(Shape{8, 12}, rng);
    const Tensor b = Tensor::randn(Shape{12, 10}, rng);
    const kernel::PackedMatrix pa = kernel::pack_a(a.data(), 12, false, 8, 12);
    const kernel::PackedMatrix pb = kernel::pack_b(b.data(), 10, false, 12, 10);
    Tensor c(Shape{8, 10});
    EXPECT_THROW(kernel::gemm_packed(pb, pb, c.data(), 10, 1.0f, 0.0f, false),
                 std::invalid_argument);
    EXPECT_THROW(kernel::gemm_packed(pa, pa, c.data(), 10, 1.0f, 0.0f, false),
                 std::invalid_argument);
    // Inner-dimension mismatch: A pack is [8, 12], a [13, 10] B pack.
    const Tensor b_bad = Tensor::randn(Shape{13, 10}, rng);
    const kernel::PackedMatrix pb_bad = kernel::pack_b(b_bad.data(), 10, false, 13, 10);
    EXPECT_THROW(kernel::gemm_packed(pa, pb_bad, c.data(), 10, 1.0f, 0.0f, false),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- layers

TEST(PackedWeights, LinearEvalForwardIsBitIdenticalToTrainAndPacksLazily) {
    Rng rng(0x11EA);
    nn::Linear layer(23, 17, rng);
    const Tensor x = Tensor::randn(Shape{5, 23}, rng);

    ASSERT_TRUE(layer.training());
    const Tensor out_train = layer.forward(x);
    EXPECT_FALSE(layer.weights_packed()) << "training forward must not pack";

    layer.set_training(false);
    EXPECT_FALSE(layer.weights_packed()) << "pack is lazy, not built on mode switch";
    const Tensor out_eval = layer.forward(x);
    EXPECT_TRUE(layer.weights_packed());
    EXPECT_EQ(out_train.to_vector(), out_eval.to_vector())
        << "packed eval path diverged from the unpacked train path";
}

TEST(PackedWeights, Conv2dEvalForwardIsBitIdenticalToTrain) {
    Rng rng(0xC0DE);
    nn::Conv2d layer(3, 5, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng, /*with_bias=*/true);
    const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);

    const Tensor out_train = layer.forward(x);
    EXPECT_FALSE(layer.weights_packed());
    layer.set_training(false);
    const Tensor out_eval = layer.forward(x);
    EXPECT_TRUE(layer.weights_packed());
    EXPECT_EQ(out_train.to_vector(), out_eval.to_vector());
}

TEST(PackedWeights, SetTrainingDropsThePackAndRepackReflectsNewWeights) {
    Rng rng(0x7EA1);
    nn::Linear layer(9, 4, rng);
    const Tensor x = Tensor::randn(Shape{3, 9}, rng);
    layer.set_training(false);
    (void)layer.forward(x);
    ASSERT_TRUE(layer.weights_packed());

    // Back to training: the pack dies with the mode.
    layer.set_training(true);
    EXPECT_FALSE(layer.weights_packed());

    // Mutate the weight in training mode (an optimizer step), return to
    // eval: the fresh pack must see the new values.
    layer.weight().value.scale_(2.0f);
    layer.set_training(false);
    const Tensor out = layer.forward(x);
    Tensor expected(Shape{3, 4});
    gemm(x, false, layer.weight().value, true, expected);
    const float* b = layer.bias().value.data();
    for (std::int64_t i = 0; i < 3; ++i) {
        for (std::int64_t j = 0; j < 4; ++j) {
            expected.data()[i * 4 + j] += b[j];
        }
    }
    EXPECT_EQ(out.to_vector(), expected.to_vector());
}

TEST(PackedWeights, LoadStateInvalidatesThePack) {
    Rng rng_a(1), rng_b(2);
    nn::Linear live(11, 6, rng_a);
    nn::Linear donor(11, 6, rng_b);
    donor.set_training(false);
    live.set_training(false);
    const Tensor x = Tensor::randn(Shape{4, 11}, rng_a);
    (void)live.forward(x);
    ASSERT_TRUE(live.weights_packed());

    std::stringstream buffer;
    nn::save_state(donor, buffer);
    nn::load_state(live, buffer, "kernel_test");
    EXPECT_FALSE(live.weights_packed()) << "checkpoint restore left a stale pack";
    EXPECT_EQ(live.forward(x).to_vector(), donor.forward(x).to_vector())
        << "post-restore forward does not match the donor weights";
}

TEST(PackedWeights, CopyParametersInvalidatesThePack) {
    Rng rng_a(3), rng_b(4);
    nn::Conv2d live(2, 3, 3, 1, 1, rng_a);
    nn::Conv2d donor(2, 3, 3, 1, 1, rng_b);
    live.set_training(false);
    donor.set_training(false);
    const Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng_a);
    (void)live.forward(x);
    ASSERT_TRUE(live.weights_packed());

    nn::copy_parameters(donor, live);
    EXPECT_FALSE(live.weights_packed()) << "copy_parameters left a stale pack";
    EXPECT_EQ(live.forward(x).to_vector(), donor.forward(x).to_vector());
}

TEST(PackedWeights, PrepareInferencePacksEagerlyThroughContainers) {
    Rng rng(0x5E9);
    nn::Sequential net;
    auto& lin1 = net.emplace<nn::Linear>(8, 8, rng);
    auto& lin2 = net.emplace<nn::Linear>(8, 2, rng);
    EXPECT_FALSE(lin1.weights_packed());
    net.prepare_inference();
    EXPECT_FALSE(net.training());
    EXPECT_TRUE(lin1.weights_packed()) << "prepare_inference must pack before any forward";
    EXPECT_TRUE(lin2.weights_packed());
}

// ------------------------------------------------------- bundle hot-swap

/// Packed-weight lifecycle across a bundle hot-swap, at the exact layer
/// the reactor's DeploymentManager uses (load_bundle_bodies backs both
/// BodyHost::from_bundle boot and swap_from_bundle): generation 2 loading
/// beside generation 1 must neither inherit nor disturb generation 1's
/// packs, and an in-place reload of a body from the new bundle must drop
/// the old pack rather than serve stale weights.
TEST(PackedWeights, BundleHotSwapGetsFreshPacksAndLeavesPinnedGenerationIntact) {
    constexpr std::size_t kBodies = 2;
    serve::harness::EnsembleParts v1 =
        serve::harness::make_linear_ensemble(0xA1, kBodies, /*num_selected=*/1);
    serve::harness::EnsembleParts v2 =
        serve::harness::make_linear_ensemble(0xB2, kBodies, /*num_selected=*/1);
    serve::harness::set_eval(v1);
    serve::harness::set_eval(v2);
    const core::Selector selector(kBodies, {0});

    const auto save_generation = [&](const std::string& name,
                                     serve::harness::EnsembleParts& bodies) {
        const fs::path dir = fs::path("bundle_artifacts") / name;
        fs::remove_all(dir);
        fs::create_directories(dir);
        serve::BundleArtifacts artifacts;
        for (nn::LayerPtr& body : bodies.bodies) {
            artifacts.bodies.push_back(body.get());
        }
        artifacts.head = v1.head.get();
        artifacts.tail = v1.tail.get();
        artifacts.selector = &selector;
        serve::save_bundle(dir.string(), artifacts);
        return dir.string();
    };
    const std::string dir_v1 = save_generation("kernel_swap_v1", v1);
    const std::string dir_v2 = save_generation("kernel_swap_v2", v2);

    const auto inner_linear = [](nn::Layer& body) -> nn::Linear& {
        auto& seq = dynamic_cast<nn::Sequential&>(body);
        return dynamic_cast<nn::Linear&>(seq.layer(0));
    };

    // Generation 1 boots: bodies come back eval-mode with weights ALREADY
    // packed (prepare_inference at load — no first-request packing cost).
    std::vector<nn::LayerPtr> gen1 =
        serve::load_bundle_bodies(dir_v1, serve::load_bundle_manifest(dir_v1));
    ASSERT_EQ(gen1.size(), kBodies);
    for (const nn::LayerPtr& body : gen1) {
        EXPECT_FALSE(body->training());
        EXPECT_TRUE(inner_linear(*body).weights_packed())
            << "bundle load must pack weights eagerly";
    }

    Rng rng(0xDA7A);
    const Tensor x = Tensor::randn(Shape{4, serve::harness::kHidden}, rng);
    const Tensor out1_before = gen1[0]->forward(x);
    // Oracle: the very ensemble the bundle snapshotted.
    EXPECT_EQ(out1_before.to_vector(), v1.bodies[0]->forward(x).to_vector());

    // The hot-swap: generation 2 loads BESIDE generation 1.
    std::vector<nn::LayerPtr> gen2 =
        serve::load_bundle_bodies(dir_v2, serve::load_bundle_manifest(dir_v2));
    const Tensor out2 = gen2[0]->forward(x);
    EXPECT_EQ(out2.to_vector(), v2.bodies[0]->forward(x).to_vector())
        << "generation 2 serves wrong weights";
    EXPECT_NE(out2.to_vector(), out1_before.to_vector())
        << "generations indistinguishable — test cannot detect pack aliasing";

    // The pinned generation is untouched by the swap: bit-exact replay.
    const Tensor out1_after = gen1[0]->forward(x);
    EXPECT_EQ(out1_before.to_vector(), out1_after.to_vector())
        << "loading generation 2 disturbed generation 1's packed weights";

    // In-place reload (roll a body to the new checkpoint): the pack from
    // the old weights must die with them.
    nn::load_state_file(*gen1[0], (fs::path(dir_v2) / "body_000.ckpt").string());
    EXPECT_FALSE(inner_linear(*gen1[0]).weights_packed())
        << "reload kept the generation 1 pack";
    EXPECT_EQ(gen1[0]->forward(x).to_vector(), out2.to_vector())
        << "reloaded body still serves generation 1 outputs — stale pack";
}

}  // namespace
}  // namespace ens
