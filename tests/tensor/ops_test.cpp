#include "tensor/ops.hpp"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ens {
namespace {

TEST(Ops, ElementwiseAllocate) {
    const Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
    const Tensor b = Tensor::from_vector(Shape{3}, {4, 5, 6});
    EXPECT_EQ(add(a, b).to_vector(), (std::vector<float>{5, 7, 9}));
    EXPECT_EQ(sub(a, b).to_vector(), (std::vector<float>{-3, -3, -3}));
    EXPECT_EQ(mul(a, b).to_vector(), (std::vector<float>{4, 10, 18}));
    EXPECT_EQ(scale(a, 2.0f).to_vector(), (std::vector<float>{2, 4, 6}));
    EXPECT_EQ(a.to_vector(), (std::vector<float>{1, 2, 3}));  // inputs untouched
}

TEST(Ops, Reductions) {
    const Tensor a = Tensor::from_vector(Shape{4}, {1, -2, 3, -4});
    EXPECT_FLOAT_EQ(sum(a), -2.0f);
    EXPECT_FLOAT_EQ(mean(a), -0.5f);
    EXPECT_FLOAT_EQ(min_value(a), -4.0f);
    EXPECT_FLOAT_EQ(max_value(a), 3.0f);
    EXPECT_FLOAT_EQ(squared_norm(a), 30.0f);
}

TEST(Ops, Dot) {
    const Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
    const Tensor b = Tensor::from_vector(Shape{3}, {4, -5, 6});
    EXPECT_FLOAT_EQ(dot(a, b), 12.0f);
}

TEST(Ops, MatmulSmallKnown) {
    const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor b = Tensor::from_vector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_EQ(c.to_vector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(Ops, MatmulShapeChecks) {
    const Tensor a(Shape{2, 3});
    const Tensor b(Shape{4, 2});
    EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, Transpose) {
    const Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor t = transpose(a);
    EXPECT_EQ(t.shape(), Shape({3, 2}));
    EXPECT_EQ(t.to_vector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

/// Reference GEMM for property checks.
Tensor reference_gemm(const Tensor& a, bool ta, const Tensor& b, bool tb, float alpha) {
    const std::int64_t m = ta ? a.dim(1) : a.dim(0);
    const std::int64_t k = ta ? a.dim(0) : a.dim(1);
    const std::int64_t n = tb ? b.dim(0) : b.dim(1);
    Tensor c(Shape{m, n});
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = ta ? a.at(p, i) : a.at(i, p);
                const float bv = tb ? b.at(j, p) : b.at(p, j);
                acc += static_cast<double>(av) * bv;
            }
            c.at(i, j) = alpha * static_cast<float>(acc);
        }
    }
    return c;
}

using GemmCase = std::tuple<int, int, int, bool, bool>;

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
    const auto [m, n, k, ta, tb] = GetParam();
    Rng rng(m * 1000 + n * 100 + k * 10 + (ta ? 2 : 0) + (tb ? 1 : 0));
    const Tensor a = ta ? Tensor::randn(Shape{k, m}, rng) : Tensor::randn(Shape{m, k}, rng);
    const Tensor b = tb ? Tensor::randn(Shape{n, k}, rng) : Tensor::randn(Shape{k, n}, rng);
    Tensor c(Shape{m, n});
    gemm(a, ta, b, tb, c, 1.5f, 0.0f);
    const Tensor expected = reference_gemm(a, ta, b, tb, 1.5f);
    for (std::int64_t i = 0; i < c.numel(); ++i) {
        EXPECT_NEAR(c.at(i), expected.at(i), 1e-3f) << "at " << i;
    }

    // Serial variant must agree exactly in structure.
    Tensor c2(Shape{m, n});
    gemm_serial(a, ta, b, tb, c2, 1.5f, 0.0f);
    for (std::int64_t i = 0; i < c.numel(); ++i) {
        EXPECT_NEAR(c2.at(i), expected.at(i), 1e-3f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, false, false}, GemmCase{2, 3, 4, false, false},
                      GemmCase{5, 7, 3, true, false}, GemmCase{4, 2, 6, false, true},
                      GemmCase{3, 3, 3, true, true}, GemmCase{16, 16, 16, false, false},
                      GemmCase{33, 17, 9, false, false}, GemmCase{64, 64, 64, false, false},
                      GemmCase{128, 96, 40, false, false}));

TEST(Ops, GemmBetaAccumulates) {
    Rng rng(3);
    const Tensor a = Tensor::randn(Shape{3, 4}, rng);
    const Tensor b = Tensor::randn(Shape{4, 2}, rng);
    Tensor c = Tensor::ones(Shape{3, 2});
    gemm(a, false, b, false, c, 1.0f, 1.0f);
    const Tensor expected = reference_gemm(a, false, b, false, 1.0f);
    for (std::int64_t i = 0; i < c.numel(); ++i) {
        EXPECT_NEAR(c.at(i), expected.at(i) + 1.0f, 1e-4f);
    }
}

TEST(Ops, SoftmaxRowsSumToOneAndOrderPreserved) {
    const Tensor logits = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, -1, 5, 0});
    const Tensor p = softmax_rows(logits);
    for (std::int64_t r = 0; r < 2; ++r) {
        float total = 0.0f;
        for (std::int64_t c = 0; c < 3; ++c) {
            total += p.at(r, c);
            EXPECT_GT(p.at(r, c), 0.0f);
        }
        EXPECT_NEAR(total, 1.0f, 1e-5f);
    }
    EXPECT_GT(p.at(0, 2), p.at(0, 1));
    EXPECT_GT(p.at(1, 1), p.at(1, 2));
}

TEST(Ops, SoftmaxNumericallyStable) {
    const Tensor logits = Tensor::from_vector(Shape{1, 2}, {1000.0f, 1002.0f});
    const Tensor p = softmax_rows(logits);
    EXPECT_TRUE(std::isfinite(p.at(0, 0)));
    EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0f, 1e-5f);
}

TEST(Ops, ArgmaxRows) {
    const Tensor m = Tensor::from_vector(Shape{3, 3}, {9, 1, 2, 0, 5, 4, 1, 1, 8});
    EXPECT_EQ(argmax_rows(m), (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(Ops, ConcatSplitRoundTrip) {
    Rng rng(9);
    const Tensor a = Tensor::randn(Shape{4, 3}, rng);
    const Tensor b = Tensor::randn(Shape{4, 5}, rng);
    const Tensor c = Tensor::randn(Shape{4, 2}, rng);
    const Tensor cat = concat_cols({a, b, c});
    EXPECT_EQ(cat.shape(), Shape({4, 10}));
    const auto parts = split_cols(cat, {3, 5, 2});
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0].to_vector(), a.to_vector());
    EXPECT_EQ(parts[1].to_vector(), b.to_vector());
    EXPECT_EQ(parts[2].to_vector(), c.to_vector());
}

TEST(Ops, ConcatColsRejectsRowMismatch) {
    EXPECT_THROW(concat_cols({Tensor(Shape{2, 2}), Tensor(Shape{3, 2})}), std::invalid_argument);
}

TEST(Ops, SliceCols) {
    const Tensor m = Tensor::from_vector(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
    const Tensor s = slice_cols(m, 1, 2);
    EXPECT_EQ(s.to_vector(), (std::vector<float>{2, 3, 6, 7}));
    EXPECT_THROW(slice_cols(m, 3, 2), std::invalid_argument);
}

TEST(Ops, ConcatChannels) {
    Rng rng(4);
    const Tensor a = Tensor::randn(Shape{2, 1, 2, 2}, rng);
    const Tensor b = Tensor::randn(Shape{2, 2, 2, 2}, rng);
    const Tensor cat = concat_channels({a, b});
    EXPECT_EQ(cat.shape(), Shape({2, 3, 2, 2}));
    EXPECT_EQ(cat.at(1, 0, 1, 1), a.at(1, 0, 1, 1));
    EXPECT_EQ(cat.at(1, 2, 0, 1), b.at(1, 1, 0, 1));
}

TEST(Ops, ConcatBatchAndSliceBatchRoundTrip) {
    Rng rng(5);
    const Tensor a = Tensor::randn(Shape{2, 3, 2, 2}, rng);
    const Tensor b = Tensor::randn(Shape{1, 3, 2, 2}, rng);
    const Tensor c = Tensor::randn(Shape{3, 3, 2, 2}, rng);
    const Tensor merged = concat_batch({a, b, c});
    EXPECT_EQ(merged.shape(), Shape({6, 3, 2, 2}));
    EXPECT_EQ(slice_batch(merged, 0, 2).to_vector(), a.to_vector());
    EXPECT_EQ(slice_batch(merged, 2, 1).to_vector(), b.to_vector());
    EXPECT_EQ(slice_batch(merged, 3, 3).to_vector(), c.to_vector());
}

TEST(Ops, ConcatBatchMatrices) {
    Rng rng(6);
    const Tensor a = Tensor::randn(Shape{1, 4}, rng);
    const Tensor b = Tensor::randn(Shape{2, 4}, rng);
    const Tensor merged = concat_batch({a, b});
    EXPECT_EQ(merged.shape(), Shape({3, 4}));
    EXPECT_EQ(merged.at(0, 1), a.at(0, 1));
    EXPECT_EQ(merged.at(2, 3), b.at(1, 3));
}

TEST(Ops, ConcatBatchRejectsMismatchedTrailingDims) {
    Rng rng(7);
    const Tensor a = Tensor::randn(Shape{1, 4}, rng);
    const Tensor b = Tensor::randn(Shape{1, 5}, rng);
    EXPECT_THROW((void)concat_batch({a, b}), std::invalid_argument);
    EXPECT_THROW((void)slice_batch(a, 0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace ens
