#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(Tensor, ZeroInitialized) {
    const Tensor t(Shape{2, 3});
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_EQ(t.at(i), 0.0f);
    }
}

TEST(Tensor, FullAndOnes) {
    const Tensor ones = Tensor::ones(Shape{4});
    const Tensor sevens = Tensor::full(Shape{4}, 7.0f);
    for (std::int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ones.at(i), 1.0f);
        EXPECT_EQ(sevens.at(i), 7.0f);
    }
}

TEST(Tensor, FromVectorChecksSize) {
    EXPECT_NO_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4}));
    EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, CopyAliasesCloneDoesNot) {
    Tensor a = Tensor::from_vector(Shape{2}, {1, 2});
    Tensor alias = a;
    Tensor deep = a.clone();
    alias.at(0) = 42.0f;
    EXPECT_EQ(a.at(0), 42.0f);
    EXPECT_EQ(deep.at(0), 1.0f);
}

TEST(Tensor, ReshapeSharesStorage) {
    Tensor a = Tensor::from_vector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = a.reshaped(Shape{3, 2});
    r.at(0, 0) = 99.0f;
    EXPECT_EQ(a.at(0, 0), 99.0f);
    EXPECT_THROW(a.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
    Rng rng(5);
    const Tensor t = Tensor::randn(Shape{10000}, rng, 2.0f, 3.0f);
    double sum = 0.0;
    double sq = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        sum += t.at(i);
        sq += static_cast<double>(t.at(i)) * t.at(i);
    }
    const double mean = sum / t.numel();
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(sq / t.numel() - mean * mean, 9.0, 0.5);
}

TEST(Tensor, UniformRange) {
    Rng rng(5);
    const Tensor t = Tensor::uniform(Shape{1000}, rng, -1.0f, 1.0f);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t.at(i), -1.0f);
        EXPECT_LT(t.at(i), 1.0f);
    }
}

TEST(Tensor, InPlaceArithmetic) {
    Tensor a = Tensor::from_vector(Shape{3}, {1, 2, 3});
    const Tensor b = Tensor::from_vector(Shape{3}, {10, 20, 30});
    a.add_(b);
    EXPECT_EQ(a.at(1), 22.0f);
    a.sub_(b);
    EXPECT_EQ(a.at(1), 2.0f);
    a.mul_(b);
    EXPECT_EQ(a.at(2), 90.0f);
    a.scale_(0.5f);
    EXPECT_EQ(a.at(0), 5.0f);
    a.add_scalar_(1.0f);
    EXPECT_EQ(a.at(0), 6.0f);
    a.axpy_(2.0f, b);
    EXPECT_EQ(a.at(0), 26.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
    Tensor a(Shape{3});
    const Tensor b(Shape{4});
    EXPECT_THROW(a.add_(b), std::invalid_argument);
    EXPECT_THROW(a.copy_from(b), std::invalid_argument);
}

TEST(Tensor, IndexedAccessors) {
    Tensor m(Shape{2, 3});
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.at(1, 2), 5.0f);
    EXPECT_THROW(m.at(2, 0), std::invalid_argument);

    Tensor t(Shape{1, 2, 3, 4});
    t.at(0, 1, 2, 3) = 7.0f;
    EXPECT_EQ(t.at(0, 1, 2, 3), 7.0f);
    EXPECT_THROW(t.at(0, 2, 0, 0), std::invalid_argument);
    EXPECT_THROW(m.at(0, 0, 0, 0), std::invalid_argument);
}

TEST(Tensor, UndefinedAccessThrows) {
    const Tensor t;
    EXPECT_FALSE(t.defined());
    EXPECT_THROW(t.data(), std::runtime_error);
}

TEST(Tensor, ToVectorRoundTrip) {
    const std::vector<float> v{3, 1, 4, 1, 5, 9};
    EXPECT_EQ(Tensor::from_vector(Shape{6}, v).to_vector(), v);
}

}  // namespace
}  // namespace ens
