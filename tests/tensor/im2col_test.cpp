#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ens {
namespace {

TEST(Im2col, Identity1x1) {
    ConvGeometry geom;
    geom.in_channels = 2;
    geom.in_h = 3;
    geom.in_w = 3;
    geom.kernel_h = 1;
    geom.kernel_w = 1;
    Rng rng(1);
    const Tensor x = Tensor::randn(Shape{2, 3, 3}, rng);
    Tensor col(Shape{geom.patch_size(), geom.out_positions()});
    im2col(x.data(), geom, col.data());
    EXPECT_EQ(col.to_vector(), x.to_vector());
}

TEST(Im2col, KnownPatch3x3) {
    ConvGeometry geom;
    geom.in_channels = 1;
    geom.in_h = 3;
    geom.in_w = 3;
    geom.kernel_h = 2;
    geom.kernel_w = 2;
    const Tensor x = Tensor::from_vector(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor col(Shape{geom.patch_size(), geom.out_positions()});
    im2col(x.data(), geom, col.data());
    // Rows are kernel offsets, columns are the 4 output positions.
    EXPECT_EQ(col.to_vector(),
              (std::vector<float>{1, 2, 4, 5,   // k(0,0)
                                  2, 3, 5, 6,   // k(0,1)
                                  4, 5, 7, 8,   // k(1,0)
                                  5, 6, 8, 9}));  // k(1,1)
}

TEST(Im2col, PaddingFillsZeros) {
    ConvGeometry geom;
    geom.in_channels = 1;
    geom.in_h = 2;
    geom.in_w = 2;
    geom.kernel_h = 3;
    geom.kernel_w = 3;
    geom.padding = 1;
    const Tensor x = Tensor::from_vector(Shape{1, 2, 2}, {1, 2, 3, 4});
    Tensor col(Shape{geom.patch_size(), geom.out_positions()});
    im2col(x.data(), geom, col.data());
    // k(0,0) looks up-left: only the bottom-right output position sees x[0].
    EXPECT_EQ(col.at(0 * 4 + 0), 0.0f);
    EXPECT_EQ(col.at(0 * 4 + 3), 1.0f);
    // Center tap k(1,1) reproduces the image.
    EXPECT_EQ(col.at(4 * 4 + 0), 1.0f);
    EXPECT_EQ(col.at(4 * 4 + 3), 4.0f);
}

TEST(Im2col, StrideSkipsPositions) {
    ConvGeometry geom;
    geom.in_channels = 1;
    geom.in_h = 4;
    geom.in_w = 4;
    geom.kernel_h = 2;
    geom.kernel_w = 2;
    geom.stride = 2;
    EXPECT_EQ(geom.out_h(), 2);
    EXPECT_EQ(geom.out_w(), 2);
}

/// col2im must be the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2col, Col2imIsAdjoint) {
    ConvGeometry geom;
    geom.in_channels = 3;
    geom.in_h = 6;
    geom.in_w = 5;
    geom.kernel_h = 3;
    geom.kernel_w = 3;
    geom.stride = 2;
    geom.padding = 1;

    Rng rng(7);
    const Tensor x = Tensor::randn(Shape{geom.in_channels, geom.in_h, geom.in_w}, rng);
    const Tensor y = Tensor::randn(Shape{geom.patch_size(), geom.out_positions()}, rng);

    Tensor col(Shape{geom.patch_size(), geom.out_positions()});
    im2col(x.data(), geom, col.data());

    Tensor back(Shape{geom.in_channels, geom.in_h, geom.in_w});
    col2im(y.data(), geom, back.data());

    EXPECT_NEAR(dot(col, y), dot(x, back), 1e-3f);
}

}  // namespace
}  // namespace ens
