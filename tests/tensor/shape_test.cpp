#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(Shape, DefaultIsRankZero) {
    const Shape s;
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, InitializerList) {
    const Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(s.dim(1), 3);
    EXPECT_EQ(s.dim(2), 4);
    EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, VectorConstructor) {
    const Shape s(std::vector<std::int64_t>{5, 7});
    EXPECT_EQ(s.numel(), 35);
}

TEST(Shape, RejectsNonPositiveExtents) {
    EXPECT_THROW(Shape({0}), std::invalid_argument);
    EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, AxisOutOfRangeThrows) {
    const Shape s{2, 2};
    EXPECT_THROW(s.dim(2), std::invalid_argument);
}

TEST(Shape, Equality) {
    EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
    EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
    EXPECT_NE(Shape({1, 2}), Shape({1, 2, 1}));
}

TEST(Shape, ToString) {
    EXPECT_EQ(Shape({2, 3, 16, 16}).to_string(), "[2, 3, 16, 16]");
    EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace ens
