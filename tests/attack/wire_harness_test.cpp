// End-to-end wiretap attack suite (attack/wire_harness.hpp) against a REAL
// forked BodyHost daemon booted from an on-disk bundle: a TapChannel
// records every frame a live RemoteSession puts on a loopback TCP socket,
// WireCapture parses the record into attacker evidence, and the
// capture-replay MIA interfaces are pinned against the in-proc Table-1
// oracle:
//
//   * handshake/frame parsing round-trips what the client negotiated;
//   * f32 captures are BIT-identical to the pre-codec transmit closure, so
//     the captured attack reproduces the in-proc attack scores exactly;
//   * q8 captures carry real dequantization drift (the satellite bug: the
//     in-proc interface silently ignored it) yet stay close enough that
//     the decoder round trip lands within loose bounds of the oracle;
//   * traffic volume reveals N (reply fan-out) but NOT the secret P —
//     different selectors produce byte-identical traffic;
//   * the client's own payload billing (read through the tap) agrees with
//     the eavesdropper's parsed payload bytes (stats-delegation parity).

#include "attack/wire_harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "../serve/serve_harness.hpp"
#include "core/ensembler.hpp"
#include "data/synth_cifar10.hpp"
#include "metrics/similarity.hpp"
#include "serve/bundle.hpp"
#include "split/tcp_channel.hpp"

namespace ens::attack {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kBatch = 8;

/// Tiny trained ResNet Ensembler served from a bundle by forked daemons.
/// Same scale as the brute-force suite: width 4, 16 px, N = 3, P = 2.
class WireHarnessFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        arch_ = new nn::ResNetConfig();
        arch_->base_width = 4;
        arch_->image_size = 16;
        arch_->num_classes = 10;

        train_ = new data::SynthCifar10(96, 201, 16);
        aux_ = new data::SynthCifar10(96, 202, 16);
        victim_inputs_ = new data::SynthCifar10(16, 203, 16);

        core::EnsemblerConfig config;
        config.num_networks = 3;
        config.num_selected = 2;
        config.stage1_options.epochs = 1;
        config.stage3_options.epochs = 1;
        config.seed = 21;
        ensembler_ = new core::Ensembler(*arch_, config);
        ensembler_->fit(*train_);

        bundle_dir_ = new std::string("wire_attack_artifacts/bundle");
        fs::remove_all(*bundle_dir_);
        fs::create_directories(*bundle_dir_);
        serve::save_bundle(*bundle_dir_, *ensembler_);

        ensembler_->client_head().set_training(false);
        ensembler_->client_noise().set_training(false);
        ensembler_->client_tail().set_training(false);
    }

    static void TearDownTestSuite() {
        delete bundle_dir_;
        delete ensembler_;
        delete victim_inputs_;
        delete aux_;
        delete train_;
        delete arch_;
        ensembler_ = nullptr;
    }

    static MiaOptions fast_mia() {
        MiaOptions options;
        options.shadow_options.epochs = 1;
        options.decoder_options.epochs = 1;
        options.eval_batch = kBatch;
        options.eval_samples = 16;
        options.seed = 5;
        return options;
    }

    /// The victim's submissions: victim_inputs_ in eval_batch-sized chunks,
    /// partitioned exactly like the in-proc oracle's evaluation loop so
    /// f32 parity is bit-exact.
    static std::vector<Tensor> victim_batches() {
        std::vector<Tensor> batches;
        for (std::size_t cursor = 0; cursor < victim_inputs_->size(); cursor += kBatch) {
            batches.push_back(data::materialize(*victim_inputs_, cursor, kBatch).images);
        }
        return batches;
    }

    /// Forks a daemon from the bundle, runs one tapped victim session
    /// through it, and returns the trace (the daemon exits after serving).
    static VictimTrace captured_session(split::WireFormat wire, std::size_t inflight,
                                        const core::Selector& selector) {
        serve::harness::ForkedDaemon daemon = serve::harness::spawn_body_host(
            [dir = *bundle_dir_] { return serve::BodyHost::from_bundle(dir); },
            /*connections=*/1);
        EXPECT_GT(daemon.port(), 0) << "daemon failed to spawn";
        VictimTrace trace = drive_victim_session(
            split::tcp_connect("127.0.0.1", daemon.port()), ensembler_->client_head(),
            &ensembler_->client_noise(), ensembler_->client_tail(), selector, victim_batches(),
            wire, inflight);
        EXPECT_EQ(daemon.wait_exit_code(), 0) << "daemon did not exit cleanly";
        return trace;
    }

    static nn::ResNetConfig* arch_;
    static data::SynthCifar10* train_;
    static data::SynthCifar10* aux_;
    static data::SynthCifar10* victim_inputs_;
    static core::Ensembler* ensembler_;
    static std::string* bundle_dir_;
};

nn::ResNetConfig* WireHarnessFixture::arch_ = nullptr;
data::SynthCifar10* WireHarnessFixture::train_ = nullptr;
data::SynthCifar10* WireHarnessFixture::aux_ = nullptr;
data::SynthCifar10* WireHarnessFixture::victim_inputs_ = nullptr;
core::Ensembler* WireHarnessFixture::ensembler_ = nullptr;
std::string* WireHarnessFixture::bundle_dir_ = nullptr;

TEST_F(WireHarnessFixture, CaptureParsesHandshakeFramesAndBilling) {
    const VictimTrace trace =
        captured_session(split::WireFormat::f32, /*inflight=*/4, ensembler_->selector());
    const WireCapture capture = WireCapture::parse(*trace.tap);

    // The eavesdropper decodes the SAME handshake the client negotiated.
    EXPECT_EQ(capture.handshake.total_bodies, 3u);
    EXPECT_EQ(capture.handshake.total_bodies, trace.handshake.total_bodies);
    EXPECT_EQ(capture.handshake.wire_mask, trace.handshake.wire_mask);
    EXPECT_EQ(capture.handshake.max_inflight, trace.handshake.max_inflight);
    EXPECT_EQ(capture.handshake.deployment_version, trace.handshake.deployment_version);

    // One uplink frame per submitted batch, in submit order; N replies per
    // request regardless of completion order.
    ASSERT_EQ(capture.requests.size(), victim_batches().size());
    EXPECT_EQ(capture.replies.size(), capture.requests.size() * 3);
    EXPECT_EQ(capture.bodies_inferred_from_traffic(), 3u);
    for (const CapturedRequest& request : capture.requests) {
        EXPECT_EQ(request.wire_format, split::WireFormat::f32);
        ASSERT_EQ(request.features.rank(), 4);
        EXPECT_EQ(request.features.dim(0), static_cast<std::int64_t>(kBatch));
    }

    // f32 wire is lossless: captured uplink features are BIT-identical to
    // the in-proc transmit closure on the same truth batches.
    const split::DeployedPipeline victim = ensembler_->deployed();
    const std::vector<Tensor> batches = victim_batches();
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const Tensor oracle = victim.transmit(batches[i]);
        EXPECT_EQ(capture.requests[i].features.to_vector(), oracle.to_vector())
            << "request " << i;
    }

    // Billing parity (the decorator-delegation satellite, end to end): the
    // client's own traffic counters — read THROUGH the TapChannel — must
    // equal the payload bytes the eavesdropper parsed out of the capture.
    std::uint64_t parsed_payload_bytes = 0;
    for (const CapturedRequest& request : capture.requests) {
        parsed_payload_bytes += request.payload_bytes;
    }
    EXPECT_EQ(trace.reported.messages, capture.requests.size());
    EXPECT_EQ(trace.reported.bytes, parsed_payload_bytes);
    // The raw capture is strictly larger: it includes the request tags.
    EXPECT_EQ(capture.uplink_bytes,
              parsed_payload_bytes + capture.requests.size() * serve::kRequestTagBytes);
}

TEST_F(WireHarnessFixture, TrafficVolumeRevealsNButNotTheSecretP) {
    // Two different secret selections, same deployment, same inputs: every
    // observable — frame counts, fan-out, byte volumes — must be identical,
    // because all N bodies answer every request and the selector runs
    // client-side. This is the wire half of the §III defense argument.
    const VictimTrace trace_a =
        captured_session(split::WireFormat::q8, /*inflight=*/2, core::Selector(3, {0, 1}));
    const VictimTrace trace_b =
        captured_session(split::WireFormat::q8, /*inflight=*/2, core::Selector(3, {1, 2}));
    const WireCapture a = WireCapture::parse(*trace_a.tap);
    const WireCapture b = WireCapture::parse(*trace_b.tap);

    EXPECT_EQ(a.requests.size(), b.requests.size());
    EXPECT_EQ(a.replies.size(), b.replies.size());
    EXPECT_EQ(a.bodies_inferred_from_traffic(), b.bodies_inferred_from_traffic());
    EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
    EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
    // What the fan-out does reveal is N — which the handshake already said.
    EXPECT_EQ(a.bodies_inferred_from_traffic(), a.handshake.total_bodies);
}

TEST_F(WireHarnessFixture, F32CaptureReplayMatchesInProcOracleExactly) {
    const VictimTrace trace =
        captured_session(split::WireFormat::f32, /*inflight=*/4, ensembler_->selector());
    const WireCapture capture = WireCapture::parse(*trace.tap);
    const WireObservations observed = capture.observations(victim_batches());

    const split::DeployedPipeline victim = ensembler_->deployed();

    // Fresh, identically-seeded attack instances: the ONLY difference is
    // the evidence source, and for lossless f32 the evidence is identical,
    // so the scores must agree to float precision.
    ModelInversionAttack oracle_mia(*arch_, fast_mia());
    const AttackOutcome oracle =
        oracle_mia.attack_adaptive(victim.bodies, *aux_, *victim_inputs_, victim.transmit);

    ModelInversionAttack capture_mia(*arch_, fast_mia());
    const AttackOutcome replayed =
        capture_mia.attack_subset_captured(victim.bodies, *aux_, observed);

    EXPECT_NEAR(replayed.ssim, oracle.ssim, 1e-4f);
    EXPECT_NEAR(replayed.psnr, oracle.psnr, 1e-3f);
    EXPECT_NEAR(replayed.shadow_aux_accuracy, oracle.shadow_aux_accuracy, 1e-4f);
    EXPECT_NEAR(replayed.decoder_aux_mse, oracle.decoder_aux_mse, 1e-5f);
}

TEST_F(WireHarnessFixture, Q8CaptureCarriesDriftYetDecodesWithinOracleBounds) {
    const VictimTrace trace =
        captured_session(split::WireFormat::q8, /*inflight=*/4, ensembler_->selector());
    const WireCapture capture = WireCapture::parse(*trace.tap);
    const std::vector<Tensor> batches = victim_batches();

    // The satellite bug, made visible: a q8 capture decodes to features
    // that are NOT the pre-codec f32 values (dequantization drift) — yet
    // stay close (8-bit affine over the observed range).
    const split::DeployedPipeline victim = ensembler_->deployed();
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const Tensor oracle = victim.transmit(batches[i]);
        const Tensor& captured = capture.requests[i].features;
        EXPECT_EQ(capture.requests[i].wire_format, split::WireFormat::q8);
        EXPECT_NE(captured.to_vector(), oracle.to_vector())
            << "q8 round trip was bit-exact — drift vanished?";
        EXPECT_LT(metrics::relative_l2_distance(captured, oracle), 0.1f);
    }

    // Decoder round trip on the drifted evidence lands within loose bounds
    // of the in-proc oracle: drift perturbs, it must not derail.
    ModelInversionAttack oracle_mia(*arch_, fast_mia());
    const AttackOutcome oracle =
        oracle_mia.attack_adaptive(victim.bodies, *aux_, *victim_inputs_, victim.transmit);

    ModelInversionAttack capture_mia(*arch_, fast_mia());
    const AttackOutcome replayed = capture_mia.attack_subset_captured(
        victim.bodies, *aux_, capture.observations(batches));

    EXPECT_GT(replayed.psnr, 0.0f);
    EXPECT_LT(replayed.psnr, 100.0f);
    EXPECT_GE(replayed.ssim, -1.0f);
    EXPECT_LE(replayed.ssim, 1.0f);
    EXPECT_NEAR(replayed.ssim, oracle.ssim, 0.25f);
    EXPECT_NEAR(replayed.psnr, oracle.psnr, 4.0f);
}

TEST_F(WireHarnessFixture, SelectorSearchOverCapturedTrafficReportsBlindness) {
    const VictimTrace trace =
        captured_session(split::WireFormat::q8, /*inflight=*/4, ensembler_->selector());
    const WireCapture capture = WireCapture::parse(*trace.tap);
    const WireObservations observed = capture.observations(victim_batches());
    const split::DeployedPipeline victim = ensembler_->deployed();

    WireHarness harness(*arch_, fast_mia());
    BruteForceOptions search;
    search.min_subset_size = 2;  // attacker knows |P| = 2 (worst case for us)
    search.max_subset_size = 2;
    const WireAttackReport report = harness.attack(
        capture, observed, victim.bodies, *aux_, ensembler_->selector().indices(), search);

    EXPECT_EQ(report.observed_body_count, 3u);
    EXPECT_EQ(report.handshake.total_bodies, 3u);
    EXPECT_GT(report.uplink_bytes, 0u);
    EXPECT_GT(report.downlink_bytes, 0u);
    // The downlink's structure (not raw volume — the per-body reply maps
    // can be smaller than the split map) is what leaks N: every request
    // fans out into exactly N tagged replies.
    EXPECT_EQ(capture.replies.size(), capture.requests.size() * 3u);

    EXPECT_EQ(report.selector_search.search_space_size, 3u);  // C(3,2)
    ASSERT_EQ(report.selector_search.results.size(), 3u);
    std::size_t true_count = 0;
    for (const SubsetAttackResult& result : report.selector_search.results) {
        EXPECT_EQ(result.subset.size(), 2u);
        true_count += result.is_true_selection ? 1 : 0;
    }
    EXPECT_EQ(true_count, 1u);
    EXPECT_EQ(report.selector_identified,
              report.selector_search.attacker_pick().is_true_selection);
}

TEST(WireCaptureParse, RejectsCapturesWithoutHandshake) {
    split::TapLog empty;
    EXPECT_THROW(WireCapture::parse(empty), std::invalid_argument);
}

}  // namespace
}  // namespace ens::attack
