#include "attack/brute_force.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/ensembler.hpp"
#include "data/synth_cifar10.hpp"

namespace ens::attack {
namespace {

// ----------------------------------------------------- search-space algebra

TEST(SubsetSearchSpace, MatchesPowerSetMinusEmpty) {
    EXPECT_EQ(subset_search_space(1), 1u);
    EXPECT_EQ(subset_search_space(4), 15u);
    EXPECT_EQ(subset_search_space(10), 1023u);
    EXPECT_EQ(subset_search_space(20), (1u << 20) - 1u);
}

TEST(SubsetSearchSpace, SizeBoundsSelectBinomialSlices) {
    // n = 5: C(5,2) = 10, C(5,2)+C(5,3) = 20.
    EXPECT_EQ(subset_search_space(5, 2, 2), 10u);
    EXPECT_EQ(subset_search_space(5, 2, 3), 20u);
    EXPECT_EQ(subset_search_space(5, 5, 5), 1u);
    EXPECT_EQ(subset_search_space(5, 6, 9), 0u);
}

TEST(SubsetSearchSpace, DoublesPerExtraBody) {
    // The §III-D exponential: each extra body doubles the space (+1).
    for (std::size_t n = 2; n < 16; ++n) {
        EXPECT_EQ(subset_search_space(n + 1), 2 * subset_search_space(n) + 1);
    }
}

// -------------------------------------------------------- end-to-end search

/// Tiny trained Ensembler victim shared by the search tests (stage costs
/// seconds at width 4 / 16 px / N = 3).
class BruteForceFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        arch_ = new nn::ResNetConfig();
        arch_->base_width = 4;
        arch_->image_size = 16;
        arch_->num_classes = 10;

        train_ = new data::SynthCifar10(96, 101, 16);
        aux_ = new data::SynthCifar10(96, 102, 16);
        victim_inputs_ = new data::SynthCifar10(32, 103, 16);

        core::EnsemblerConfig config;
        config.num_networks = 3;
        config.num_selected = 2;
        config.stage1_options.epochs = 1;
        config.stage3_options.epochs = 1;
        config.seed = 11;
        ensembler_ = new core::Ensembler(*arch_, config);
        ensembler_->fit(*train_);
    }

    static void TearDownTestSuite() {
        delete ensembler_;
        delete victim_inputs_;
        delete aux_;
        delete train_;
        delete arch_;
        ensembler_ = nullptr;
    }

    static MiaOptions fast_mia() {
        MiaOptions options;
        options.shadow_options.epochs = 1;
        options.decoder_options.epochs = 1;
        options.eval_samples = 16;
        options.seed = 5;
        return options;
    }

    static nn::ResNetConfig* arch_;
    static data::SynthCifar10* train_;
    static data::SynthCifar10* aux_;
    static data::SynthCifar10* victim_inputs_;
    static core::Ensembler* ensembler_;
};

nn::ResNetConfig* BruteForceFixture::arch_ = nullptr;
data::SynthCifar10* BruteForceFixture::train_ = nullptr;
data::SynthCifar10* BruteForceFixture::aux_ = nullptr;
data::SynthCifar10* BruteForceFixture::victim_inputs_ = nullptr;
core::Ensembler* BruteForceFixture::ensembler_ = nullptr;

TEST_F(BruteForceFixture, EnumeratesEveryNonEmptySubsetOnce) {
    ModelInversionAttack mia(*arch_, fast_mia());
    const split::DeployedPipeline victim = ensembler_->deployed();
    const BruteForceReport report = brute_force_attack(
        mia, victim, *aux_, *victim_inputs_, ensembler_->selector().indices());

    EXPECT_EQ(report.search_space_size, 7u);  // 2^3 - 1
    ASSERT_EQ(report.results.size(), 7u);
    std::set<std::vector<std::size_t>> seen;
    for (const auto& result : report.results) {
        EXPECT_TRUE(seen.insert(result.subset).second) << "duplicate subset";
    }
    // Size-major order: three singletons first, the full set last.
    EXPECT_EQ(report.results.front().subset.size(), 1u);
    EXPECT_EQ(report.results.back().subset.size(), 3u);
}

TEST_F(BruteForceFixture, MarksExactlyTheTrueSelection) {
    ModelInversionAttack mia(*arch_, fast_mia());
    const split::DeployedPipeline victim = ensembler_->deployed();
    const BruteForceReport report = brute_force_attack(
        mia, victim, *aux_, *victim_inputs_, ensembler_->selector().indices());

    std::size_t true_count = 0;
    for (const auto& result : report.results) {
        if (result.is_true_selection) {
            ++true_count;
            std::vector<std::size_t> sorted = ensembler_->selector().indices();
            std::sort(sorted.begin(), sorted.end());
            EXPECT_EQ(result.subset, sorted);
        }
    }
    EXPECT_EQ(true_count, 1u);
}

TEST_F(BruteForceFixture, BudgetCapStopsEarlyButKeepsSearchSpace) {
    ModelInversionAttack mia(*arch_, fast_mia());
    const split::DeployedPipeline victim = ensembler_->deployed();
    BruteForceOptions options;
    options.max_subsets = 4;
    const BruteForceReport report = brute_force_attack(
        mia, victim, *aux_, *victim_inputs_, ensembler_->selector().indices(), options);
    EXPECT_EQ(report.results.size(), 4u);
    EXPECT_EQ(report.search_space_size, 7u);  // full cost still reported
}

TEST_F(BruteForceFixture, SizeBoundsRestrictCandidates) {
    ModelInversionAttack mia(*arch_, fast_mia());
    const split::DeployedPipeline victim = ensembler_->deployed();
    BruteForceOptions options;
    options.min_subset_size = 2;
    options.max_subset_size = 2;
    const BruteForceReport report = brute_force_attack(
        mia, victim, *aux_, *victim_inputs_, ensembler_->selector().indices(), options);
    EXPECT_EQ(report.search_space_size, 3u);  // C(3,2)
    ASSERT_EQ(report.results.size(), 3u);
    for (const auto& result : report.results) {
        EXPECT_EQ(result.subset.size(), 2u);
    }
}

TEST_F(BruteForceFixture, ReportsConsistentBestIndices) {
    ModelInversionAttack mia(*arch_, fast_mia());
    const split::DeployedPipeline victim = ensembler_->deployed();
    const BruteForceReport report = brute_force_attack(
        mia, victim, *aux_, *victim_inputs_, ensembler_->selector().indices());

    ASSERT_LT(report.oracle_best_by_ssim, report.results.size());
    ASSERT_LT(report.attacker_best_by_aux, report.results.size());
    ASSERT_LT(report.attacker_best_by_mse, report.results.size());
    for (const auto& result : report.results) {
        EXPECT_LE(result.outcome.ssim, report.oracle_best().outcome.ssim);
        EXPECT_LE(result.outcome.shadow_aux_accuracy,
                  report.attacker_pick().outcome.shadow_aux_accuracy);
    }
    EXPECT_EQ(report.aux_pick_matches_oracle,
              report.attacker_best_by_aux == report.oracle_best_by_ssim);
}

TEST(BruteForce, RejectsZeroMinSubsetSize) {
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    ModelInversionAttack mia(arch, MiaOptions{});
    split::DeployedPipeline victim;
    nn::Sequential dummy;
    victim.bodies = {&dummy};
    const data::SynthCifar10 aux(8, 1, 16);
    BruteForceOptions options;
    options.min_subset_size = 0;
    EXPECT_THROW(brute_force_attack(mia, victim, aux, aux, {}, options),
                 std::invalid_argument);
}

}  // namespace
}  // namespace ens::attack
