#include "attack/mia.hpp"

#include <gtest/gtest.h>

#include "attack/decoder.hpp"
#include "attack/shadow.hpp"
#include "defense/baselines.hpp"
#include "data/synth_cifar10.hpp"

namespace ens::attack {
namespace {

nn::ResNetConfig tiny_arch() {
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 10;
    return arch;
}

TEST(Shadow, HeadMatchesTransmitGeometry) {
    const nn::ResNetConfig arch = tiny_arch();
    Rng rng(1);
    auto head = build_shadow_head(arch, rng);
    const Tensor z = head->forward(Tensor::zeros(Shape{2, 3, 16, 16}));
    EXPECT_EQ(z.shape(), Shape({2, nn::resnet18_split_channels(arch),
                                nn::resnet18_split_hw(arch), nn::resnet18_split_hw(arch)}));
}

TEST(Shadow, HeadMatchesNoMaxpoolGeometry) {
    nn::ResNetConfig arch = tiny_arch();
    arch.include_maxpool = false;
    Rng rng(2);
    auto head = build_shadow_head(arch, rng);
    const Tensor z = head->forward(Tensor::zeros(Shape{1, 3, 16, 16}));
    EXPECT_EQ(z.dim(2), 16);
}

TEST(Shadow, HeadHasThreeConvs) {
    const nn::ResNetConfig arch = tiny_arch();
    Rng rng(3);
    auto head = build_shadow_head(arch, rng);
    // conv + bn + relu + conv + bn + relu + conv
    EXPECT_EQ(head->size(), 7u);
    // 3 x (weight + bias) + 2 x (gamma + beta)
    EXPECT_EQ(head->parameters().size(), 10u);
}

TEST(Shadow, TailShape) {
    Rng rng(4);
    auto tail = build_shadow_tail(32, 10, rng);
    EXPECT_EQ(tail->forward(Tensor::zeros(Shape{3, 32})).shape(), Shape({3, 10}));
}

TEST(Decoder, OutputIsImageShaped) {
    const nn::ResNetConfig arch = tiny_arch();
    Rng rng(5);
    auto decoder = build_decoder(arch, rng);
    const std::int64_t c = nn::resnet18_split_channels(arch);
    const std::int64_t s = nn::resnet18_split_hw(arch);
    const Tensor out = decoder->forward(Tensor::zeros(Shape{2, c, s, s}));
    EXPECT_EQ(out.shape(), Shape({2, 3, 16, 16}));
    // Sigmoid output in [0,1].
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out.at(i), 0.0f);
        EXPECT_LE(out.at(i), 1.0f);
    }
}

TEST(Decoder, LearnsToInvertWeakEncoder) {
    // Encoder = shadow head at init (a random conv stack). The decoder
    // should still reduce MSE substantially within a few epochs.
    const nn::ResNetConfig arch = tiny_arch();
    Rng rng(6);
    auto encoder = build_shadow_head(arch, rng);
    encoder->set_training(false);
    auto decoder = build_decoder(arch, rng);

    const data::SynthCifar10 aux(128, 200, 16);
    DecoderTrainOptions options;
    options.epochs = 1;
    options.batch_size = 32;
    const float first = train_decoder(
        *decoder, [&](const Tensor& x) { return encoder->forward(x); }, aux, options);
    float last = first;
    for (int i = 0; i < 3; ++i) {
        last = train_decoder(*decoder, [&](const Tensor& x) { return encoder->forward(x); }, aux,
                             options);
    }
    EXPECT_LT(last, first);
}

struct MiaFixture : public ::testing::Test {
    data::SynthCifar10 train_set{160, 301, 16};
    data::SynthCifar10 test_set{64, 302, 16};
    data::SynthCifar10 aux_set{128, 303, 16};
    nn::ResNetConfig arch = tiny_arch();
    MiaOptions mia_options;

    void SetUp() override {
        mia_options.shadow_options.epochs = 1;
        mia_options.shadow_options.batch_size = 32;
        mia_options.decoder_options.epochs = 2;
        mia_options.eval_samples = 32;
    }

    defense::ExperimentEnv env() const {
        train::TrainOptions options;
        options.epochs = 1;
        options.batch_size = 32;
        return {train_set, test_set, aux_set, arch, options, 99};
    }
};

TEST_F(MiaFixture, SingleBodyAttackEndToEnd) {
    defense::ProtectedModel victim = defense::train_unprotected(env());
    ModelInversionAttack attack(arch, mia_options);
    const split::DeployedPipeline view = victim.deployed();
    const AttackOutcome outcome =
        attack.attack_single_body(*view.bodies[0], aux_set, test_set, view.transmit);
    EXPECT_GE(outcome.ssim, -1.0f);
    EXPECT_LE(outcome.ssim, 1.0f);
    EXPECT_GT(outcome.psnr, 0.0f);
    EXPECT_LT(outcome.psnr, 100.0f);
}

TEST_F(MiaFixture, AdaptiveAttackOnMultiBodyVictim) {
    defense::ProtectedModel victim = defense::train_dropout_ensemble(env(), 2, 0.1f);
    ModelInversionAttack attack(arch, mia_options);
    const split::DeployedPipeline view = victim.deployed();
    const AttackOutcome outcome =
        attack.attack_adaptive(view.bodies, aux_set, test_set, view.transmit);
    EXPECT_GE(outcome.ssim, -1.0f);
    EXPECT_LE(outcome.ssim, 1.0f);
    EXPECT_GT(outcome.psnr, 0.0f);
}

TEST_F(MiaFixture, BestOfNPicksMaxima) {
    defense::ProtectedModel victim = defense::train_dropout_ensemble(env(), 2, 0.1f);
    ModelInversionAttack attack(arch, mia_options);
    const BestOfN result = attack.attack_best_of_n(victim.deployed(), aux_set, test_set);
    ASSERT_EQ(result.per_body.size(), 2u);
    for (const AttackOutcome& outcome : result.per_body) {
        EXPECT_LE(outcome.ssim, result.best_ssim.ssim);
        EXPECT_LE(outcome.psnr, result.best_psnr.psnr);
    }
    EXPECT_GE(result.best_ssim.body_index, 0);
    EXPECT_LT(result.best_ssim.body_index, 2);
}

TEST_F(MiaFixture, ReconstructionEvaluationRespectsSampleCap) {
    defense::ProtectedModel victim = defense::train_unprotected(env());
    Rng rng(7);
    auto decoder = build_decoder(arch, rng);
    ModelInversionAttack attack(arch, mia_options);
    const split::DeployedPipeline view = victim.deployed();
    // Untrained decoder: reconstruction should be poor but well-defined.
    const AttackOutcome outcome =
        attack.evaluate_reconstruction(*decoder, test_set, view.transmit);
    EXPECT_LT(outcome.ssim, 0.5f);
    EXPECT_GT(outcome.psnr, 0.0f);
}

}  // namespace
}  // namespace ens::attack
