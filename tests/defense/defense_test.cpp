#include "defense/baselines.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar10.hpp"
#include "nn/noise.hpp"
#include "tensor/ops.hpp"

namespace ens::defense {
namespace {

struct TinyEnvFixture : public ::testing::Test {
    data::SynthCifar10 train_set{256, 101, 16};
    data::SynthCifar10 test_set{96, 102, 16};
    data::SynthCifar10 aux_set{96, 103, 16};
    nn::ResNetConfig arch;
    train::TrainOptions options;

    void SetUp() override {
        arch.base_width = 4;
        arch.image_size = 16;
        arch.num_classes = 10;
        options.epochs = 4;
        options.batch_size = 32;
        options.learning_rate = 0.1;
    }

    ExperimentEnv env() const { return {train_set, test_set, aux_set, arch, options, 55}; }
};

TEST_F(TinyEnvFixture, UnprotectedLearnsAboveChance) {
    ProtectedModel model = train_unprotected(env());
    EXPECT_EQ(model.bodies.size(), 1u);
    EXPECT_EQ(model.perturb, nullptr);
    // Width-4 ResNet-18 for 2 epochs on 192 samples learns slowly; the
    // check is above-chance (chance = 0.1), not "trained to convergence".
    const float accuracy = model.evaluate_accuracy(test_set, 32);
    EXPECT_GT(accuracy, 0.12f);
}

TEST_F(TinyEnvFixture, SingleGaussianAddsFixedMask) {
    ProtectedModel model = train_single_gaussian(env(), 0.1f);
    ASSERT_NE(model.perturb, nullptr);
    const auto* noise = dynamic_cast<nn::FixedNoise*>(model.perturb.get());
    ASSERT_NE(noise, nullptr);
    EXPECT_GT(squared_norm(noise->mask()), 0.0f);

    // The transmitted features differ from the raw head output by the mask.
    Rng rng(1);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0.0f, 1.0f);
    model.head->set_training(false);
    const Tensor raw = model.head->forward(x);
    const Tensor wire = model.transmit(x);
    EXPECT_GT(squared_norm(sub(wire, raw)), 0.0f);
}

TEST_F(TinyEnvFixture, ShredderGrowsMaskPower) {
    ShredderOptions shredder_options;
    shredder_options.initial_stddev = 0.05f;
    shredder_options.mask_epochs = 2;
    shredder_options.noise_reward = 0.1f;
    ProtectedModel model = train_shredder(env(), shredder_options);
    const auto* noise = dynamic_cast<nn::FixedNoise*>(model.perturb.get());
    ASSERT_NE(noise, nullptr);
    // Mask trained to maximize power: it must exceed its initialization.
    const float power = squared_norm(noise->mask()) / static_cast<float>(noise->mask().numel());
    EXPECT_GT(power, 0.05f * 0.05f);
}

TEST_F(TinyEnvFixture, DropoutDefenseActiveAtInference) {
    ProtectedModel model = train_dropout_single(env(), 0.3f);
    ASSERT_NE(model.perturb, nullptr);
    Rng rng(2);
    const Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng, 0.0f, 1.0f);
    // Dropout remains stochastic in eval mode (defense usage): two
    // transmissions of the same input differ.
    const Tensor first = model.transmit(x);
    const Tensor second = model.transmit(x);
    EXPECT_NE(first.to_vector(), second.to_vector());
}

TEST_F(TinyEnvFixture, DropoutEnsembleHasNBodies) {
    ProtectedModel model = train_dropout_ensemble(env(), 3, 0.2f);
    EXPECT_EQ(model.bodies.size(), 3u);
    const float accuracy = model.evaluate_accuracy(test_set, 32);
    EXPECT_GT(accuracy, 0.15f);

    const split::DeployedPipeline view = model.deployed();
    EXPECT_EQ(view.bodies.size(), 3u);
    Rng rng(3);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0.0f, 1.0f);
    EXPECT_EQ(view.predict(x).shape(), Shape({2, 10}));
}

TEST_F(TinyEnvFixture, DeployedViewTransmitGeometry) {
    ProtectedModel model = train_unprotected(env());
    const split::DeployedPipeline view = model.deployed();
    Rng rng(4);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0.0f, 1.0f);
    const Tensor z = view.transmit(x);
    EXPECT_EQ(z.shape(), Shape({2, nn::resnet18_split_channels(arch),
                                nn::resnet18_split_hw(arch), nn::resnet18_split_hw(arch)}));
}

}  // namespace
}  // namespace ens::defense
