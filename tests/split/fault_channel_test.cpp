// Determinism tests for the scripted fault injector (split::FaultChannel)
// and the promoted DelayChannel. The failover suite builds on these
// decorators; here we pin the decorator semantics themselves: faults fire
// on exact per-direction message indices (never wall clock), each script
// entry fires at most once, truncation kills the stream after forwarding
// the prefix, and a hard close surfaces as typed channel_closed on both
// the faulting call and every call after it.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "split/channel.hpp"
#include "split/fault_channel.hpp"

namespace ens::split {
namespace {

ErrorCode thrown_code(const std::function<void()>& fn) {
    try {
        fn();
    } catch (const Error& e) {
        return e.code();
    } catch (...) {
        ADD_FAILURE() << "expected ens::Error";
        return ErrorCode::generic;
    }
    ADD_FAILURE() << "expected an exception";
    return ErrorCode::generic;
}

TEST(FaultChannel, ForwardsVerbatimWithEmptyScript) {
    auto [near, far] = make_inproc_duplex();
    FaultChannel faulty(std::move(near), {});
    faulty.send("hello");
    EXPECT_EQ(far->recv(), "hello");
    far->send("back");
    EXPECT_EQ(faulty.recv(), "back");
    EXPECT_EQ(faulty.faults_fired(), 0u);
    EXPECT_EQ(faulty.sends_seen(), 1u);
    EXPECT_EQ(faulty.recvs_seen(), 1u);
}

TEST(FaultChannel, DropFiresOnTheExactSendIndexAndOnlyOnce) {
    auto [near, far] = make_inproc_duplex();
    FaultAction drop;
    drop.kind = FaultAction::Kind::drop;
    drop.direction = FaultAction::Direction::send;
    drop.at = 1;
    FaultChannel faulty(std::move(near), {drop});

    faulty.send("m0");
    faulty.send("m1-dropped");
    faulty.send("m2");
    faulty.send("m3");
    EXPECT_EQ(far->recv(), "m0");
    EXPECT_EQ(far->recv(), "m2");  // m1 silently gone, nothing duplicated
    EXPECT_EQ(far->recv(), "m3");
    EXPECT_EQ(faulty.faults_fired(), 1u);
    EXPECT_EQ(faulty.sends_seen(), 4u);
}

TEST(FaultChannel, RecvDropSwallowsOneMessageAndDeliversTheNext) {
    auto [near, far] = make_inproc_duplex();
    FaultAction drop;
    drop.kind = FaultAction::Kind::drop;
    drop.direction = FaultAction::Direction::recv;
    drop.at = 0;
    FaultChannel faulty(std::move(near), {drop});

    far->send("eaten");
    far->send("delivered");
    EXPECT_EQ(faulty.recv(), "delivered");
    // The swallowed message still counted toward the direction index.
    EXPECT_EQ(faulty.recvs_seen(), 2u);
    EXPECT_EQ(faulty.faults_fired(), 1u);
}

TEST(FaultChannel, DelayHoldsTheMessageThenForwardsIt) {
    auto [near, far] = make_inproc_duplex();
    FaultAction hold;
    hold.kind = FaultAction::Kind::delay;
    hold.direction = FaultAction::Direction::send;
    hold.at = 0;
    hold.delay = std::chrono::milliseconds(60);
    FaultChannel faulty(std::move(near), {hold});

    const auto start = std::chrono::steady_clock::now();
    faulty.send("slow");
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(50));
    EXPECT_EQ(far->recv(), "slow");  // delayed, not dropped
    EXPECT_EQ(faulty.faults_fired(), 1u);
}

TEST(FaultChannel, SendTruncationForwardsThePrefixThenKillsTheStream) {
    auto [near, far] = make_inproc_duplex();
    FaultAction cut;
    cut.kind = FaultAction::Kind::truncate;
    cut.direction = FaultAction::Direction::send;
    cut.at = 0;
    cut.keep_bytes = 4;
    FaultChannel faulty(std::move(near), {cut});

    EXPECT_EQ(thrown_code([&] { faulty.send("0123456789"); }), ErrorCode::channel_closed);
    // The peer got exactly the prefix — a short frame a parser must then
    // reject typed — and the stream is gone afterwards.
    EXPECT_EQ(far->recv(), "0123");
    EXPECT_EQ(thrown_code([&] { (void)far->recv(); }), ErrorCode::channel_closed);
    EXPECT_EQ(thrown_code([&] { faulty.send("again"); }), ErrorCode::channel_closed);
}

TEST(FaultChannel, RecvTruncationReturnsThePrefix) {
    auto [near, far] = make_inproc_duplex();
    FaultAction cut;
    cut.kind = FaultAction::Kind::truncate;
    cut.direction = FaultAction::Direction::recv;
    cut.at = 1;
    cut.keep_bytes = 2;
    FaultChannel faulty(std::move(near), {cut});

    far->send("whole");
    far->send("chopped");
    EXPECT_EQ(faulty.recv(), "whole");
    EXPECT_EQ(faulty.recv(), "ch");  // the local parser sees a short frame
}

TEST(FaultChannel, HardCloseIsTypedAndTerminal) {
    auto [near, far] = make_inproc_duplex();
    FaultAction kill;
    kill.kind = FaultAction::Kind::close_hard;
    kill.direction = FaultAction::Direction::send;
    kill.at = 2;
    FaultChannel faulty(std::move(near), {kill});

    faulty.send("a");
    faulty.send("b");
    EXPECT_EQ(thrown_code([&] { faulty.send("c"); }), ErrorCode::channel_closed);
    EXPECT_EQ(far->recv(), "a");
    EXPECT_EQ(far->recv(), "b");  // queued frames drain before the close
    EXPECT_EQ(thrown_code([&] { (void)far->recv(); }), ErrorCode::channel_closed);
}

// The determinism contract the chaos tests rely on: identical script +
// identical traffic -> identical observable transcript, run after run.
TEST(FaultChannel, ScriptedRunsAreBitIdenticalAcrossRepeats) {
    const auto run_once = [] {
        auto [near, far] = make_inproc_duplex();
        FaultAction drop;
        drop.kind = FaultAction::Kind::drop;
        drop.direction = FaultAction::Direction::send;
        drop.at = 2;
        FaultAction cut;
        cut.kind = FaultAction::Kind::truncate;
        cut.direction = FaultAction::Direction::send;
        cut.at = 5;
        cut.keep_bytes = 1;
        FaultChannel faulty(std::move(near), {drop, cut});

        std::vector<std::string> transcript;
        for (int i = 0; i < 8; ++i) {
            try {
                faulty.send("msg" + std::to_string(i));
            } catch (const Error&) {
                transcript.push_back("<closed on " + std::to_string(i) + ">");
                break;
            }
        }
        for (;;) {
            try {
                transcript.push_back(far->recv());
            } catch (const Error&) {
                transcript.push_back("<eof>");
                break;
            }
        }
        return transcript;
    };

    const std::vector<std::string> first = run_once();
    // msg2 dropped, msg5 truncated to "m" and the stream killed; queued
    // frames drain before the close surfaces on the far end.
    const std::vector<std::string> expected = {
        "<closed on 5>", "msg0", "msg1", "msg3", "msg4", "m", "<eof>"};
    EXPECT_EQ(first, expected);
    for (int repeat = 0; repeat < 3; ++repeat) {
        EXPECT_EQ(run_once(), first) << "repeat " << repeat;
    }
}

TEST(DelayChannel, DelaysBothDirectionsWithoutReordering) {
    auto [near, far] = make_inproc_duplex();
    DelayChannel delayed(std::move(near), std::chrono::milliseconds(30));

    const auto start = std::chrono::steady_clock::now();
    delayed.send("first");
    delayed.send("second");
    EXPECT_EQ(far->recv(), "first");
    EXPECT_EQ(far->recv(), "second");
    EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(25));

    far->send("reply");
    EXPECT_EQ(delayed.recv(), "reply");
    delayed.close();
    EXPECT_EQ(thrown_code([&] { (void)delayed.recv(); }), ErrorCode::channel_closed);
}

}  // namespace
}  // namespace ens::split
