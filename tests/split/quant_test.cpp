#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "split/codec.hpp"
#include "split/quant.hpp"
#include "tensor/tensor.hpp"

namespace ens::split {
namespace {

TEST(AffineGrid, CoversTensorRange) {
    Rng rng(11);
    const Tensor t = Tensor::uniform(Shape{64}, rng, -2.0f, 3.0f);
    const AffineGrid grid = choose_affine_grid(t, 256);
    // Code 0 maps to min, the top code to max.
    const auto values = t.to_vector();
    const float lo = *std::min_element(values.begin(), values.end());
    const float hi = *std::max_element(values.begin(), values.end());
    EXPECT_FLOAT_EQ(grid.lo, lo);
    EXPECT_NEAR(grid.value(255), hi, 1e-5f);
}

TEST(AffineGrid, ConstantTensorHasZeroStep) {
    const Tensor t = Tensor::full(Shape{10}, 1.25f);
    const AffineGrid grid = choose_affine_grid(t, 256);
    EXPECT_FLOAT_EQ(grid.step, 0.0f);
    EXPECT_FLOAT_EQ(grid.lo, 1.25f);
    EXPECT_FLOAT_EQ(max_roundtrip_error(grid), 0.0f);
}

TEST(AffineGrid, RejectsFewerThanTwoLevels) {
    const Tensor t = Tensor::ones(Shape{4});
    EXPECT_THROW(choose_affine_grid(t, 1), std::invalid_argument);
}

TEST(Quantize, ConstantTensorRoundTripsExactly) {
    const Tensor t = Tensor::full(Shape{3, 5}, -0.75f);
    const AffineGrid grid = choose_affine_grid(t, 256);
    const auto codes = quantize(t, grid, 256);
    const Tensor back = dequantize(codes, t.shape(), grid);
    EXPECT_EQ(back.to_vector(), t.to_vector());
}

TEST(Quantize, ExtremesHitFirstAndLastCode) {
    Tensor t = Tensor::zeros(Shape{4});
    t.at(0) = -1.0f;
    t.at(1) = 2.0f;
    t.at(2) = -1.0f;
    t.at(3) = 2.0f;
    const AffineGrid grid = choose_affine_grid(t, 16);
    const auto codes = quantize(t, grid, 16);
    EXPECT_EQ(codes[0], 0);
    EXPECT_EQ(codes[1], 15);
}

TEST(Quantize, DequantizeRejectsShapeMismatch) {
    const Tensor t = Tensor::ones(Shape{4});
    const AffineGrid grid = choose_affine_grid(t, 16);
    const auto codes = quantize(t, grid, 16);
    EXPECT_THROW(dequantize(codes, Shape{5}, grid), std::invalid_argument);
}

/// Round-trip error must respect the analytic step/2 bound across formats
/// and value ranges.
struct QuantCase {
    std::uint32_t levels;
    float lo, hi;
};

class QuantErrorBound : public ::testing::TestWithParam<QuantCase> {};

TEST_P(QuantErrorBound, MaxErrorWithinHalfStep) {
    const QuantCase param = GetParam();
    Rng rng(17);
    const Tensor t = Tensor::uniform(Shape{512}, rng, param.lo, param.hi);
    const AffineGrid grid = choose_affine_grid(t, param.levels);
    const RoundTripError error = measure_roundtrip_error(t, param.levels);
    EXPECT_LE(error.max_abs, max_roundtrip_error(grid) + 1e-6f);
    EXPECT_LE(error.mse, max_roundtrip_error(grid) * max_roundtrip_error(grid) + 1e-9f);
}

TEST_P(QuantErrorBound, MoreLevelsNeverWorse) {
    const QuantCase param = GetParam();
    Rng rng(23);
    const Tensor t = Tensor::uniform(Shape{512}, rng, param.lo, param.hi);
    const RoundTripError coarse = measure_roundtrip_error(t, param.levels);
    const std::uint32_t finer = std::min<std::uint32_t>(param.levels * 4, 65536);
    const RoundTripError fine = measure_roundtrip_error(t, finer);
    EXPECT_LE(fine.mse, coarse.mse + 1e-9f);
}

INSTANTIATE_TEST_SUITE_P(Ranges, QuantErrorBound,
                         ::testing::Values(QuantCase{256, 0.0f, 1.0f},
                                           QuantCase{256, -4.0f, 4.0f},
                                           QuantCase{65536, -1.0f, 1.0f},
                                           QuantCase{16, -0.1f, 0.1f},
                                           QuantCase{256, 100.0f, 101.0f}));

/// Wire-format coverage of the self-describing codec.
class CodecFormats : public ::testing::TestWithParam<WireFormat> {};

TEST_P(CodecFormats, RoundTripPreservesShape) {
    Rng rng(31);
    const Tensor t = Tensor::randn(Shape{2, 4, 8, 8}, rng);
    const Tensor back = decode_tensor(encode_tensor(t, GetParam()));
    EXPECT_EQ(back.shape(), t.shape());
}

TEST_P(CodecFormats, RoundTripErrorBounded) {
    Rng rng(37);
    const Tensor t = Tensor::randn(Shape{128}, rng);
    const Tensor back = decode_tensor(encode_tensor(t, GetParam()));
    const AffineGrid grid = choose_affine_grid(t, std::max<std::uint32_t>(wire_format_levels(GetParam()), 2));
    const float bound =
        GetParam() == WireFormat::f32 ? 0.0f : max_roundtrip_error(grid) + 1e-6f;
    const auto original = t.to_vector();
    const auto restored = back.to_vector();
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_LE(std::abs(original[i] - restored[i]), bound) << "element " << i;
    }
}

TEST_P(CodecFormats, EncodedSizeMatchesActualBytes) {
    Rng rng(41);
    const Tensor t = Tensor::randn(Shape{3, 9, 5}, rng);
    EXPECT_EQ(encode_tensor(t, GetParam()).size(), encoded_size(t, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, CodecFormats,
                         ::testing::Values(WireFormat::f32, WireFormat::q16, WireFormat::q8),
                         [](const ::testing::TestParamInfo<WireFormat>& info) {
                             return wire_format_name(info.param);
                         });

TEST(CodecFormats, QuantizedPayloadIsSmaller) {
    Rng rng(43);
    const Tensor t = Tensor::randn(Shape{1, 8, 16, 16}, rng);
    const std::uint64_t f32 = encoded_size(t, WireFormat::f32);
    const std::uint64_t q16 = encoded_size(t, WireFormat::q16);
    const std::uint64_t q8 = encoded_size(t, WireFormat::q8);
    EXPECT_LT(q16, f32);
    EXPECT_LT(q8, q16);
    // Payload dominates: q8 cuts ~4x vs f32 (headers add a few bytes).
    EXPECT_NEAR(static_cast<double>(f32) / static_cast<double>(q8), 4.0, 0.25);
}

TEST(CodecFormats, LegacyF32MessagesStillDecode) {
    Rng rng(47);
    const Tensor t = Tensor::randn(Shape{6, 6}, rng);
    // The one-argument encoder writes the legacy FMAP framing.
    const Tensor back = decode_tensor(encode_tensor(t));
    EXPECT_EQ(back.to_vector(), t.to_vector());
}

TEST(CodecFormats, RejectsTruncatedQuantizedMessage) {
    Rng rng(53);
    std::string bytes = encode_tensor(Tensor::randn(Shape{16}, rng), WireFormat::q8);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(decode_tensor(bytes), std::exception);
}

}  // namespace
}  // namespace ens::split
