// Wiretap decorator (split::TapChannel) semantics: the tap must be
// invisible to the traffic it records (verbatim forwarding, both
// directions), must capture frames exactly as the wire carries them
// (send_parts header+payload glued into ONE logged frame), and — like every
// channel decorator — must report the WRAPPED transport's traffic counters,
// so byte accounting read through a decorator stack matches what actually
// crossed the wire (the parity `sharded_client --stats` relies on).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "split/channel.hpp"
#include "split/fault_channel.hpp"
#include "split/tap_channel.hpp"

namespace ens::split {
namespace {

TEST(TapChannel, ForwardsVerbatimBothDirections) {
    auto [near, far] = make_inproc_duplex();
    auto log = std::make_shared<TapLog>();
    TapChannel tap(std::move(near), log);

    tap.send("uplink-frame");
    EXPECT_EQ(far->recv(), "uplink-frame");
    far->send("downlink-frame");
    EXPECT_EQ(tap.recv(), "downlink-frame");

    ASSERT_EQ(log->sent_count(), 1u);
    ASSERT_EQ(log->received_count(), 1u);
    EXPECT_EQ(log->sent().front(), "uplink-frame");
    EXPECT_EQ(log->received().front(), "downlink-frame");
}

TEST(TapChannel, SendPartsCapturedAsOneWireFrame) {
    auto [near, far] = make_inproc_duplex();
    auto log = std::make_shared<TapLog>();
    TapChannel tap(std::move(near), log);

    tap.send_parts("tag!", "payload-bytes");
    // The peer sees one glued message; the log holds the same frame.
    EXPECT_EQ(far->recv(), "tag!payload-bytes");
    ASSERT_EQ(log->sent_count(), 1u);
    EXPECT_EQ(log->sent().front(), "tag!payload-bytes");
    // Raw capture volume includes the tag (the attacker sees it)...
    EXPECT_EQ(log->sent_bytes(), std::string("tag!payload-bytes").size());
    // ...but billing stays payload-only: the tap forwarded through the
    // inner send_parts, which bills protocol tags like transport framing.
    EXPECT_EQ(tap.stats().messages, 1u);
    EXPECT_EQ(tap.stats().bytes, std::string("payload-bytes").size());
}

TEST(TapChannel, StatsDelegateToWrappedTransport) {
    auto [near, far] = make_inproc_duplex();
    Channel* inner = near.get();
    auto log = std::make_shared<TapLog>();
    TapChannel tap(std::move(near), log);

    tap.send("12345");
    tap.send("678");
    // Decorator and transport agree exactly — a session holding the tap
    // reports real traffic, not the decorator's own empty counters.
    EXPECT_EQ(tap.stats().messages, inner->stats().messages);
    EXPECT_EQ(tap.stats().bytes, inner->stats().bytes);
    EXPECT_EQ(tap.stats().messages, 2u);
    EXPECT_EQ(tap.stats().bytes, 8u);

    tap.reset_stats();
    EXPECT_EQ(inner->stats().messages, 0u);
    EXPECT_EQ(inner->stats().bytes, 0u);
    // The capture is evidence, not billing: reset leaves it intact.
    EXPECT_EQ(log->sent_count(), 2u);
    (void)far;
}

// The satellite bug this PR fixes: decorator channels used to inherit the
// base class's own (never-incremented) counters, so any session or router
// running over a DelayChannel/FaultChannel reported zero traffic while the
// wire carried plenty. Pin the delegation for the fault decorators too.
TEST(FaultChannelStats, DelegateToWrappedTransport) {
    auto [near, far] = make_inproc_duplex();
    Channel* inner = near.get();
    FaultChannel faulty(std::move(near), {});
    faulty.send("abcde");
    EXPECT_EQ(far->recv(), "abcde");
    EXPECT_EQ(faulty.stats().messages, 1u);
    EXPECT_EQ(faulty.stats().bytes, 5u);
    EXPECT_EQ(faulty.stats().messages, inner->stats().messages);
    EXPECT_EQ(faulty.stats().bytes, inner->stats().bytes);
}

TEST(FaultChannelStats, ScriptedDropIsNotBilled) {
    auto [near, far] = make_inproc_duplex();
    FaultAction drop;
    drop.kind = FaultAction::Kind::drop;
    drop.direction = FaultAction::Direction::send;
    drop.at = 0;
    FaultChannel faulty(std::move(near), {drop});
    faulty.send("never-leaves");
    faulty.send("arrives");
    EXPECT_EQ(far->recv(), "arrives");
    // The dropped frame never reached the transport, so the counters say
    // one message — they report what actually crossed the wire.
    EXPECT_EQ(faulty.stats().messages, 1u);
    EXPECT_EQ(faulty.stats().bytes, std::string("arrives").size());
}

TEST(DelayChannelStats, DelegateToWrappedTransport) {
    auto [near, far] = make_inproc_duplex();
    DelayChannel delayed(std::move(near), std::chrono::milliseconds(0));
    delayed.send("xy");
    EXPECT_EQ(far->recv(), "xy");
    EXPECT_EQ(delayed.stats().messages, 1u);
    EXPECT_EQ(delayed.stats().bytes, 2u);
}

TEST(TapChannel, NestsOverOtherDecorators) {
    // Attack harness over a shaped link: tap(fault(transport)). Stats read
    // through the full stack still come from the bottom transport.
    auto [near, far] = make_inproc_duplex();
    auto log = std::make_shared<TapLog>();
    TapChannel tap(std::make_unique<FaultChannel>(std::move(near), std::vector<FaultAction>{}),
                   log);
    tap.send("through-the-stack");
    EXPECT_EQ(far->recv(), "through-the-stack");
    EXPECT_EQ(tap.stats().messages, 1u);
    EXPECT_EQ(tap.stats().bytes, std::string("through-the-stack").size());
    EXPECT_EQ(log->sent_count(), 1u);
}

}  // namespace
}  // namespace ens::split
