// The zero-copy codec path: encode_into must be byte-identical to the
// encode_tensor string overloads for every wire format (the buffer pool is
// a performance lever, never a format fork), the pool must actually
// recycle buffers, decode must work on payload VIEWS at arbitrary offsets
// (tagged frames decode in place), and decode_into must reuse matching
// storage without changing results.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "split/codec.hpp"

namespace ens::split {
namespace {

TEST(CodecBuffer, EncodeIntoMatchesStringOverloadForAllFormats) {
    Rng rng(11);
    const Tensor tensor = Tensor::randn(Shape{2, 3, 4}, rng);
    WireBuffer buffer;
    for (const WireFormat wire : {WireFormat::f32, WireFormat::q16, WireFormat::q8}) {
        const std::string expected = encode_tensor(tensor, wire);
        encode_into(tensor, wire, buffer);
        EXPECT_EQ(buffer.view(), std::string_view(expected)) << wire_format_name(wire);
        // Round trip through the buffer bytes too.
        const Tensor decoded = decode_tensor(buffer.view());
        EXPECT_EQ(decoded.to_vector(), decode_tensor(expected).to_vector())
            << wire_format_name(wire);
    }
}

TEST(CodecBuffer, EncodeIntoOverwritesPreviousContents) {
    Rng rng(12);
    const Tensor big = Tensor::randn(Shape{8, 8}, rng);
    const Tensor small = Tensor::randn(Shape{2}, rng);
    WireBuffer buffer;
    encode_into(big, WireFormat::f32, buffer);
    const std::size_t capacity_after_big = buffer.capacity();
    encode_into(small, WireFormat::f32, buffer);
    EXPECT_EQ(buffer.view(), std::string_view(encode_tensor(small)));
    // clear() keeps capacity: re-encoding the small tensor must not have
    // shrunk the allocation below the big message's.
    EXPECT_GE(buffer.capacity(), capacity_after_big);
}

TEST(CodecBuffer, PoolRecyclesBuffers) {
    WireBufferPool pool;
    EXPECT_EQ(pool.idle(), 0u);
    {
        auto lease = pool.acquire();
        lease->append_u32(42);
        EXPECT_EQ(pool.idle(), 0u);
    }
    EXPECT_EQ(pool.idle(), 1u);  // returned on lease destruction
    {
        auto lease = pool.acquire();
        EXPECT_TRUE(lease->empty());  // recycled buffers come back cleared
        EXPECT_EQ(pool.idle(), 0u);   // ... and off the free list
        auto second = pool.acquire();
        EXPECT_EQ(pool.idle(), 0u);
    }
    EXPECT_EQ(pool.idle(), 2u);
}

TEST(CodecBuffer, DecodeWorksOnOffsetViews) {
    // Tagged frames carry the codec bytes at an offset inside a larger
    // message; decoding the view must equal decoding a copied string.
    Rng rng(13);
    const Tensor tensor = Tensor::randn(Shape{3, 2}, rng);
    for (const WireFormat wire : {WireFormat::f32, WireFormat::q8}) {
        const std::string encoded = encode_tensor(tensor, wire);
        const std::string framed = std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8) + encoded;
        const std::string_view payload = std::string_view(framed).substr(8);
        EXPECT_EQ(encoded_wire_format(payload), wire);
        EXPECT_EQ(decode_tensor(payload).to_vector(), decode_tensor(encoded).to_vector());
    }
}

TEST(CodecBuffer, DecodeIntoReusesMatchingStorage) {
    Rng rng(14);
    const Tensor first = Tensor::randn(Shape{4, 4}, rng);
    const Tensor second = Tensor::randn(Shape{4, 4}, rng);
    Tensor out;
    decode_into(encode_tensor(first), out);
    EXPECT_EQ(out.to_vector(), first.to_vector());
    const float* storage = out.data();
    decode_into(encode_tensor(second), out);
    EXPECT_EQ(out.to_vector(), second.to_vector());
    // Same shape: the storage was reused, not reallocated.
    EXPECT_EQ(out.data(), storage);
    // Different shape: reallocates and adopts the message's shape.
    const Tensor other = Tensor::randn(Shape{2, 3}, rng);
    decode_into(encode_tensor(other), out);
    EXPECT_EQ(out.shape(), other.shape());
    EXPECT_EQ(out.to_vector(), other.to_vector());
}

}  // namespace
}  // namespace ens::split
