#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "nn/checkpoint.hpp"
#include "nn/linear.hpp"
#include "split/channel.hpp"
#include "split/codec.hpp"
#include "split/session.hpp"
#include "split/split_model.hpp"
#include "tensor/ops.hpp"

namespace ens::split {
namespace {

nn::ResNetConfig tiny_config() {
    nn::ResNetConfig config;
    config.base_width = 4;
    config.image_size = 16;
    config.num_classes = 5;
    return config;
}

TEST(Codec, RoundTrip) {
    Rng rng(1);
    const Tensor t = Tensor::randn(Shape{2, 3, 4, 4}, rng);
    const std::string bytes = encode_tensor(t);
    const Tensor restored = decode_tensor(bytes);
    EXPECT_EQ(restored.shape(), t.shape());
    EXPECT_EQ(restored.to_vector(), t.to_vector());
}

TEST(Codec, EncodedSizeMatchesActual) {
    Rng rng(2);
    const Tensor t = Tensor::randn(Shape{4, 7}, rng);
    EXPECT_EQ(encode_tensor(t).size(), encoded_size(t));
}

TEST(Codec, RejectsCorruptMagic) {
    Rng rng(3);
    std::string bytes = encode_tensor(Tensor::randn(Shape{2}, rng));
    bytes[0] = 'X';
    EXPECT_THROW(decode_tensor(bytes), std::runtime_error);
}

TEST(Channel, FifoOrderAndStats) {
    InProcChannel channel;
    EXPECT_FALSE(channel.has_pending());
    channel.send("one");
    channel.send("four");
    EXPECT_TRUE(channel.has_pending());
    EXPECT_EQ(channel.stats().messages, 2u);
    EXPECT_EQ(channel.stats().bytes, 7u);
    EXPECT_EQ(channel.recv(), "one");
    EXPECT_EQ(channel.recv(), "four");
    EXPECT_FALSE(channel.has_pending());
    channel.reset_stats();
    EXPECT_EQ(channel.stats().messages, 0u);
}

// The unified Channel contract: recv() on an open empty channel waits (and
// times out as ens::Error{channel_timeout} when a timeout is set); close()
// lets queued messages drain, then recv/send fail typed channel_closed.
TEST(Channel, RecvTimeoutAndCloseContract) {
    InProcChannel channel;
    channel.set_recv_timeout(std::chrono::milliseconds(20));
    try {
        (void)channel.recv();
        FAIL() << "recv on empty open channel should time out";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_timeout);
    }

    channel.send("last words");
    channel.send("");
    channel.close();
    channel.close();  // idempotent
    // Queued messages (including zero-length ones) survive close.
    EXPECT_EQ(channel.recv(), "last words");
    EXPECT_EQ(channel.recv(), "");
    try {
        (void)channel.recv();
        FAIL() << "recv on drained closed channel should fail";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed);
    }
    try {
        channel.send("late");
        FAIL() << "send on closed channel should fail";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed);
    }
}

// close() must wake a receiver already blocked in recv().
TEST(Channel, CloseWakesBlockedReceiver) {
    InProcChannel channel;
    std::thread receiver([&channel] {
        try {
            (void)channel.recv();
            ADD_FAILURE() << "recv should have been woken by close";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::channel_closed);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.close();
    receiver.join();
}

// Serve fans body messages out while client threads submit, so the shared
// counters must hold up under concurrent senders.
TEST(Channel, ConcurrentSendsKeepStatsConsistent) {
    InProcChannel channel;
    constexpr int kThreads = 4;
    constexpr int kMessagesPerThread = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&channel] {
            for (int i = 0; i < kMessagesPerThread; ++i) {
                channel.send("abcde");
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(channel.stats().messages, static_cast<std::uint64_t>(kThreads * kMessagesPerThread));
    EXPECT_EQ(channel.stats().bytes, static_cast<std::uint64_t>(kThreads * kMessagesPerThread * 5));
    int received = 0;
    while (channel.has_pending()) {
        (void)channel.recv();
        ++received;
    }
    EXPECT_EQ(received, kThreads * kMessagesPerThread);
}

TEST(SplitModel, SplitPreservesFunction) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(4);
    auto full = nn::build_resnet18(config, rng);
    Rng rng_same(4);
    auto full_copy = nn::build_resnet18(config, rng_same);

    full->set_training(false);
    Rng data_rng(5);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, data_rng, 0.0f, 1.0f);
    const Tensor expected = full->forward(x);

    SplitModel split = split_sequential(std::move(full_copy),
                                        nn::resnet18_head_layer_count(config), 1);
    split.set_training(false);
    const Tensor actual = split.forward(x);
    EXPECT_EQ(actual.shape(), expected.shape());
    for (std::int64_t i = 0; i < actual.numel(); ++i) {
        EXPECT_NEAR(actual.at(i), expected.at(i), 1e-5f);
    }
}

TEST(SplitModel, HeadGeometryMatchesPaper) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(6);
    SplitModel split = build_split_resnet18(config, rng);
    split.set_training(false);
    const Tensor z = split.head->forward(Tensor::zeros(Shape{1, 3, 16, 16}));
    EXPECT_EQ(z.shape(), Shape({1, nn::resnet18_split_channels(config),
                                nn::resnet18_split_hw(config), nn::resnet18_split_hw(config)}));
    const Tensor f = split.body->forward(z);
    EXPECT_EQ(f.shape(), Shape({1, nn::resnet18_feature_width(config)}));
    EXPECT_EQ(split.tail->size(), 1u);
}

TEST(SplitModel, RejectsDegenerateSplit) {
    Rng rng(7);
    auto net = nn::build_resnet18(tiny_config(), rng);
    const std::size_t total = net->size();
    EXPECT_THROW(split_sequential(std::move(net), total, 1), std::invalid_argument);
}

TEST(Session, MatchesLocalPipeline) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(8);
    SplitModel split = build_split_resnet18(config, rng);
    split.set_training(false);

    Rng data_rng(9);
    const Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, data_rng, 0.0f, 1.0f);
    const Tensor local = split.forward(x);

    InProcChannel uplink;
    InProcChannel downlink;
    CollaborativeSession session(*split.head, {split.body.get()}, *split.tail,
                                 single_body_combiner(), uplink, downlink);
    const Tensor remote = session.infer(x);
    EXPECT_EQ(remote.to_vector(), local.to_vector());
}

TEST(Session, TrafficAccountingReflectsGeometry) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(10);
    SplitModel split = build_split_resnet18(config, rng);
    split.set_training(false);

    InProcChannel uplink;
    InProcChannel downlink;
    CollaborativeSession session(*split.head, {split.body.get()}, *split.tail,
                                 single_body_combiner(), uplink, downlink);
    Rng data_rng(11);
    session.infer(Tensor::uniform(Shape{4, 3, 16, 16}, data_rng, 0.0f, 1.0f));

    const std::int64_t c = nn::resnet18_split_channels(config);
    const std::int64_t s = nn::resnet18_split_hw(config);
    const Tensor probe_up(Shape{4, c, s, s});
    EXPECT_EQ(session.uplink_stats().bytes, encoded_size(probe_up));
    const Tensor probe_down(Shape{4, nn::resnet18_feature_width(config)});
    EXPECT_EQ(session.downlink_stats().bytes, encoded_size(probe_down));
    EXPECT_EQ(session.uplink_stats().messages, 1u);
    EXPECT_EQ(session.downlink_stats().messages, 1u);
}

TEST(Session, MultiBodyDownlinkScalesWithN) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(12);
    SplitModel a = build_split_resnet18(config, rng);
    SplitModel b = build_split_resnet18(config, rng);
    SplitModel c = build_split_resnet18(config, rng);
    a.set_training(false);
    b.set_training(false);
    c.set_training(false);

    // Average-combiner over three bodies; tail must accept 3x features, so
    // use concat-combiner shape checks through a fresh Linear tail.
    nn::Sequential tail;
    Rng tail_rng(13);
    tail.emplace<nn::Linear>(3 * nn::resnet18_feature_width(config), config.num_classes,
                             tail_rng);
    tail.set_training(false);

    InProcChannel uplink;
    InProcChannel downlink;
    const Combiner combiner = [](const std::vector<Tensor>& features) {
        std::vector<Tensor> scaled;
        scaled.reserve(features.size());
        for (const Tensor& f : features) {
            scaled.push_back(ens::scale(f, 1.0f / 3.0f));
        }
        return concat_cols(scaled);
    };
    CollaborativeSession session(*a.head, {a.body.get(), b.body.get(), c.body.get()}, tail,
                                 combiner, uplink, downlink);
    Rng data_rng(14);
    const Tensor logits = session.infer(Tensor::uniform(Shape{2, 3, 16, 16}, data_rng, 0, 1));
    EXPECT_EQ(logits.shape(), Shape({2, config.num_classes}));
    EXPECT_EQ(session.downlink_stats().messages, 3u);
}

TEST(Session, RejectsEmptyBodies) {
    const nn::ResNetConfig config = tiny_config();
    Rng rng(15);
    SplitModel split = build_split_resnet18(config, rng);
    InProcChannel up;
    InProcChannel down;
    EXPECT_THROW(CollaborativeSession(*split.head, {}, *split.tail, single_body_combiner(), up,
                                      down),
                 std::invalid_argument);
}

}  // namespace
}  // namespace ens::split
