// Framing and failure-mode tests for the socket-backed Channel: whole-
// message delivery over partial reads/writes, zero-length frames, peer
// disconnect (clean and mid-message), receive timeouts, concurrent senders
// (the serve fan-out pattern), and listener lifecycle.
//
// Most tests run over a socketpair so the raw peer end can inject partial
// frames and abrupt closes; listener/connect tests use real TCP on
// 127.0.0.1 with an ephemeral port.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "split/tcp_channel.hpp"

namespace ens::split {
namespace {

/// Connected stream-socket pair; wrap either end in a TcpChannel or drive
/// it raw to inject malformed frames.
std::pair<int, int> stream_pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    return {fds[0], fds[1]};
}

void write_raw(int fd, const void* data, std::size_t size) {
    const char* bytes = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd, bytes + sent, size - sent, 0);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
    }
}

ErrorCode thrown_code(const std::function<void()>& fn) {
    try {
        fn();
    } catch (const Error& e) {
        return e.code();
    } catch (...) {
        ADD_FAILURE() << "expected ens::Error";
        return ErrorCode::generic;
    }
    ADD_FAILURE() << "expected an exception";
    return ErrorCode::generic;
}

TEST(TcpChannel, RoundTripBothDirectionsWithBinaryPayloads) {
    auto [a, b] = stream_pair();
    TcpChannel left(a);
    TcpChannel right(b);

    const std::string binary("ab\0cd\xff\x01", 7);
    left.send(binary);
    left.send("second");
    EXPECT_EQ(right.recv(), binary);
    EXPECT_EQ(right.recv(), "second");

    right.send("reply");
    EXPECT_EQ(left.recv(), "reply");

    // Payload-only accounting, identical to InProcChannel.
    EXPECT_EQ(left.stats().messages, 2u);
    EXPECT_EQ(left.stats().bytes, 13u);
    EXPECT_EQ(right.stats().messages, 1u);
    EXPECT_EQ(right.stats().bytes, 5u);
}

TEST(TcpChannel, ZeroLengthMessage) {
    auto [a, b] = stream_pair();
    TcpChannel left(a);
    TcpChannel right(b);
    left.send("");
    left.send("after-empty");
    EXPECT_EQ(right.recv(), "");
    EXPECT_EQ(right.recv(), "after-empty");
    EXPECT_EQ(left.stats().messages, 2u);
    EXPECT_EQ(left.stats().bytes, 11u);
}

// A multi-megabyte frame cannot fit one send/recv syscall on a stream
// socket, so this exercises the short-read/short-write loops end to end.
TEST(TcpChannel, LargeMessageSurvivesPartialReadsAndWrites) {
    auto [a, b] = stream_pair();
    TcpChannel left(a);
    TcpChannel right(b);

    std::string big(8 * 1024 * 1024, '\0');
    for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<char>(i * 2654435761u >> 13);
    }
    // Sender in a thread: the socketpair buffer is far smaller than the
    // frame, so send blocks until the receiver drains.
    std::thread sender([&left, &big] { left.send(big); });
    const std::string received = right.recv();
    sender.join();
    ASSERT_EQ(received.size(), big.size());
    EXPECT_EQ(std::memcmp(received.data(), big.data(), big.size()), 0);
}

TEST(TcpChannel, CleanPeerCloseBetweenFramesIsTypedClosed) {
    auto [a, b] = stream_pair();
    TcpChannel right(b);
    {
        TcpChannel left(a);
        left.send("farewell");
    }  // destructor closes the peer
    EXPECT_EQ(right.recv(), "farewell");  // in-flight frame still drains
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);
    // Channel is dead from here on.
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);
    EXPECT_EQ(thrown_code([&] { right.send("x"); }), ErrorCode::channel_closed);
}

TEST(TcpChannel, PeerDisconnectMidMessageIsTypedClosed) {
    auto [a, b] = stream_pair();
    TcpChannel right(b);

    // Header promises 100 payload bytes; only 10 arrive before the close.
    unsigned char header[8] = {100, 0, 0, 0, 0, 0, 0, 0};
    write_raw(a, header, sizeof(header));
    write_raw(a, "0123456789", 10);
    ::close(a);

    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);
}

TEST(TcpChannel, IdleRecvTimeoutIsRetryable) {
    auto [a, b] = stream_pair();
    TcpChannel left(a);
    TcpChannel right(b);
    right.set_recv_timeout(std::chrono::milliseconds(30));

    // Nothing of the next frame read yet: timeout, stream intact.
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_timeout);

    left.send("late but fine");
    EXPECT_EQ(right.recv(), "late but fine");
}

TEST(TcpChannel, MidMessageTimeoutPoisonsTheChannel) {
    auto [a, b] = stream_pair();
    TcpChannel right(b);
    right.set_recv_timeout(std::chrono::milliseconds(30));

    // Header + partial payload, then silence: a retry would resume reading
    // mid-frame, so the channel must close itself.
    unsigned char header[8] = {64, 0, 0, 0, 0, 0, 0, 0};
    write_raw(a, header, sizeof(header));
    write_raw(a, "partial", 7);

    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_timeout);
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);
    ::close(a);
}

// SO_RCVTIMEO alone only bounds each syscall: a peer trickling bytes just
// fast enough to renew it could stretch recv() forever. The whole-message
// deadline must cut that off near the configured cap.
TEST(TcpChannel, TricklingPeerCannotStretchRecvPastTimeout) {
    auto [a, b] = stream_pair();
    TcpChannel right(b);
    right.set_recv_timeout(std::chrono::milliseconds(60));

    std::atomic<bool> stop{false};
    std::thread trickler([&, a = a] {
        unsigned char header[8] = {255, 0, 0, 0, 0, 0, 0, 0};
        write_raw(a, header, sizeof(header));
        const unsigned char byte = 'x';
        while (!stop.load()) {
            if (::send(a, &byte, 1, MSG_NOSIGNAL) <= 0) {
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
    });

    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_timeout);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Bounded by ~2x the cap; anything near the 255-byte trickle duration
    // (~4 s) would mean the deadline never fired.
    EXPECT_LT(elapsed, std::chrono::milliseconds(1000));
    // Progress was mid-frame, so the stream is poisoned.
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);

    stop = true;
    trickler.join();
    ::close(a);
}

TEST(TcpChannel, ImplausibleFrameLengthIsIoError) {
    auto [a, b] = stream_pair();
    TcpChannel right(b);
    // 2^62 bytes: stream desync or a corrupt peer, never a feature map.
    unsigned char header[8] = {0, 0, 0, 0, 0, 0, 0, 0x40};
    write_raw(a, header, sizeof(header));
    EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::io_error);
    ::close(a);
}

TEST(TcpChannel, LocalCloseWakesBlockedReceiver) {
    auto [a, b] = stream_pair();
    TcpChannel left(a);
    TcpChannel right(b);
    std::thread receiver([&right] {
        EXPECT_EQ(thrown_code([&] { (void)right.recv(); }), ErrorCode::channel_closed);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    right.close();
    receiver.join();
    (void)left;
}

// The serve fan-out sends one downlink message per body from pool workers;
// frames from concurrent senders must never interleave on the wire.
TEST(TcpChannel, ConcurrentSendersKeepFramesAtomic) {
    auto [a, b] = stream_pair();
    TcpChannel sender(a);
    TcpChannel receiver(b);

    constexpr int kThreads = 4;
    constexpr int kMessagesPerThread = 64;
    // Distinct sizes per thread so interleaved bytes would corrupt frames.
    const auto make_message = [](int thread_id, int i) {
        return std::string(static_cast<std::size_t>(1 + thread_id * 7 + (i % 5) * 131),
                           static_cast<char>('A' + thread_id));
    };

    // Drain concurrently: the socketpair buffer cannot hold all frames.
    std::vector<int> seen(kThreads, 0);
    std::thread drain([&] {
        for (int m = 0; m < kThreads * kMessagesPerThread; ++m) {
            const std::string message = receiver.recv();
            ASSERT_FALSE(message.empty());
            const int thread_id = message[0] - 'A';
            ASSERT_GE(thread_id, 0);
            ASSERT_LT(thread_id, kThreads);
            // Uniform fill proves the frame arrived whole.
            EXPECT_EQ(message.find_first_not_of(message[0]), std::string::npos);
            ++seen[thread_id];
        }
    });

    std::vector<std::thread> senders;
    for (int t = 0; t < kThreads; ++t) {
        senders.emplace_back([&, t] {
            for (int i = 0; i < kMessagesPerThread; ++i) {
                sender.send(make_message(t, i));
            }
        });
    }
    for (std::thread& thread : senders) {
        thread.join();
    }
    drain.join();
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(seen[t], kMessagesPerThread) << "sender " << t;
    }
    EXPECT_EQ(sender.stats().messages,
              static_cast<std::uint64_t>(kThreads * kMessagesPerThread));
}

TEST(ChannelListener, EphemeralPortAcceptConnectRoundTrip) {
    ChannelListener listener(0);
    ASSERT_GT(listener.port(), 0);

    std::unique_ptr<TcpChannel> server_end;
    std::thread acceptor([&] { server_end = listener.accept(); });
    std::unique_ptr<TcpChannel> client_end = tcp_connect("127.0.0.1", listener.port());
    acceptor.join();
    ASSERT_NE(server_end, nullptr);

    client_end->send("over real tcp");
    EXPECT_EQ(server_end->recv(), "over real tcp");
    server_end->send("and back");
    EXPECT_EQ(client_end->recv(), "and back");
}

TEST(ChannelListener, CloseWakesBlockedAccept) {
    ChannelListener listener(0);
    std::thread acceptor([&] {
        EXPECT_EQ(thrown_code([&] { (void)listener.accept(); }), ErrorCode::channel_closed);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    listener.close();
    acceptor.join();
    // Closed listener fails fast thereafter.
    EXPECT_EQ(thrown_code([&] { (void)listener.accept(); }), ErrorCode::channel_closed);
}

TEST(TcpConnect, RefusedConnectionIsIoError) {
    // Bind then immediately close to get a port that refuses connections.
    std::uint16_t dead_port = 0;
    {
        ChannelListener listener(0);
        dead_port = listener.port();
    }
    EXPECT_EQ(thrown_code([&] { (void)tcp_connect("127.0.0.1", dead_port); }),
              ErrorCode::io_error);
}

TEST(TcpConnect, TimeoutOverloadStillConnectsToLiveListener) {
    ChannelListener listener(0);
    std::unique_ptr<TcpChannel> server_end;
    std::thread acceptor([&] { server_end = listener.accept(); });
    std::unique_ptr<TcpChannel> client_end =
        tcp_connect("127.0.0.1", listener.port(), std::chrono::seconds(5));
    acceptor.join();
    ASSERT_NE(server_end, nullptr);
    client_end->send("bounded dial");
    EXPECT_EQ(server_end->recv(), "bounded dial");
}

TEST(TcpConnect, BlackholedConnectFailsTypedWithinTheDeadline) {
    // A locally manufactured blackhole (routed blackholes like RFC 5737
    // TEST-NET-1 are unreliable under NAT'd CI sandboxes that answer every
    // SYN): a listener with backlog 0 whose accept queue is already full
    // makes the kernel drop further SYNs, so the dialer just retransmits
    // into silence — exactly the case only the connect deadline can end.
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(listener, /*backlog=*/0), 0);
    socklen_t addr_len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len), 0);
    const std::uint16_t port = ntohs(addr.sin_port);

    // Saturate the accept queue: this connection completes its handshake
    // and sits unaccepted, filling the backlog-0 queue.
    std::unique_ptr<TcpChannel> filler = tcp_connect("127.0.0.1", port, std::chrono::seconds(5));

    const auto start = std::chrono::steady_clock::now();
    try {
        (void)tcp_connect("127.0.0.1", port, std::chrono::milliseconds(250));
        FAIL() << "connected through a saturated backlog?";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_timeout) << e.what();
        // The timeout message names the dial target.
        EXPECT_NE(std::string(e.what()).find("127.0.0.1"), std::string::npos) << e.what();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Bounded by the 250 ms budget, not the kernel's SYN retransmission
    // schedule (minutes); generous slack for CI scheduling.
    EXPECT_LT(elapsed, std::chrono::milliseconds(5000));
    ::close(listener);
}

TEST(TcpConnect, RefusedConnectionWithTimeoutStaysIoError) {
    std::uint16_t dead_port = 0;
    {
        ChannelListener listener(0);
        dead_port = listener.port();
    }
    // A refused connection is an answer, not a timeout: the typed code must
    // not degrade to channel_timeout just because a deadline was set.
    EXPECT_EQ(thrown_code([&] {
                  (void)tcp_connect("127.0.0.1", dead_port, std::chrono::seconds(5));
              }),
              ErrorCode::io_error);
}

}  // namespace
}  // namespace ens::split
