#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/selector.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "split/multiparty.hpp"

namespace ens::split {
namespace {

// ---------------------------------------------------------------- ShardPlan

TEST(ShardPlan, RoundRobinBalancesWithinOne) {
    const ShardPlan plan = ShardPlan::round_robin(10, 3);
    ASSERT_EQ(plan.server_count(), 3u);
    EXPECT_EQ(plan.body_count(), 10u);
    for (const auto& shard : plan.server_bodies) {
        EXPECT_GE(shard.size(), 3u);
        EXPECT_LE(shard.size(), 4u);
    }
}

TEST(ShardPlan, BlocksAreContiguous) {
    const ShardPlan plan = ShardPlan::blocks(10, 4);
    for (const auto& shard : plan.server_bodies) {
        for (std::size_t i = 1; i < shard.size(); ++i) {
            EXPECT_EQ(shard[i], shard[i - 1] + 1);
        }
    }
    EXPECT_EQ(plan.body_count(), 10u);
}

TEST(ShardPlan, EveryBodyAssignedExactlyOnce) {
    for (const ShardPlan& plan :
         {ShardPlan::round_robin(7, 2), ShardPlan::blocks(7, 3), ShardPlan::round_robin(4, 4)}) {
        std::vector<int> hits(7, 0);
        for (const auto& shard : plan.server_bodies) {
            for (const std::size_t body : shard) {
                ASSERT_LT(body, hits.size());
                ++hits[body];
            }
        }
        for (std::size_t body = 0; body < plan.body_count(); ++body) {
            EXPECT_EQ(hits[body], 1) << "body " << body;
        }
    }
}

TEST(ShardPlan, RejectsMoreServersThanBodies) {
    EXPECT_THROW(ShardPlan::round_robin(2, 3), std::invalid_argument);
    EXPECT_THROW(ShardPlan::blocks(0, 1), std::invalid_argument);
}

// ------------------------------------------------------ MultipartyDeployment

/// Tiny linear pipeline: head [2->3], N linear bodies [3->2], tail [2P->2].
struct Fixture {
    Rng rng{7};
    nn::Sequential head;
    std::vector<std::unique_ptr<nn::Sequential>> bodies;
    nn::Sequential tail;
    std::vector<nn::Layer*> body_views;

    explicit Fixture(std::size_t n, std::size_t p) {
        head.emplace<nn::Linear>(2, 3, rng);
        for (std::size_t i = 0; i < n; ++i) {
            auto body = std::make_unique<nn::Sequential>();
            body->emplace<nn::Linear>(3, 2, rng);
            body_views.push_back(body.get());
            bodies.push_back(std::move(body));
        }
        tail.emplace<nn::Linear>(static_cast<std::int64_t>(2 * p), 2, rng);
        head.set_training(false);
        tail.set_training(false);
        for (auto& body : bodies) {
            body->set_training(false);
        }
    }
};

core::Selector make_selector(std::size_t n, std::vector<std::size_t> indices) {
    return core::Selector(n, std::move(indices));
}

TEST(Multiparty, MatchesSingleServerInference) {
    Fixture fx(6, 2);
    const core::Selector selector = make_selector(6, {1, 4});
    const Combiner combiner = [&selector](const std::vector<Tensor>& features) {
        return selector.apply(features);
    };

    Rng rng(99);
    const Tensor x = Tensor::randn(Shape{3, 2}, rng);

    MultipartyDeployment one_server(fx.head, fx.body_views, fx.tail, selector.indices(), combiner,
                                    ShardPlan::round_robin(6, 1));
    MultipartyDeployment three_servers(fx.head, fx.body_views, fx.tail, selector.indices(),
                                       combiner, ShardPlan::round_robin(6, 3));
    const Tensor y1 = one_server.infer(x);
    const Tensor y3 = three_servers.infer(x);
    ASSERT_EQ(y1.shape(), y3.shape());
    const auto v1 = y1.to_vector();
    const auto v3 = y3.to_vector();
    for (std::size_t i = 0; i < v1.size(); ++i) {
        EXPECT_FLOAT_EQ(v1[i], v3[i]) << "logit " << i;
    }
}

TEST(Multiparty, PerServerTrafficMatchesShardWidth) {
    Fixture fx(6, 2);
    const core::Selector selector = make_selector(6, {0, 5});
    const Combiner combiner = [&selector](const std::vector<Tensor>& f) {
        return selector.apply(f);
    };
    MultipartyDeployment deployment(fx.head, fx.body_views, fx.tail, selector.indices(), combiner,
                                    ShardPlan::blocks(6, 2));
    Rng rng(3);
    (void)deployment.infer(Tensor::randn(Shape{2, 2}, rng));
    const auto traffic = deployment.traffic();
    ASSERT_EQ(traffic.size(), 2u);
    // Uplink: each server receives the one broadcast feature message.
    EXPECT_EQ(traffic[0].uplink.messages, 1u);
    EXPECT_EQ(traffic[1].uplink.messages, 1u);
    EXPECT_EQ(traffic[0].uplink.bytes, traffic[1].uplink.bytes);
    // Downlink: one message per body held.
    EXPECT_EQ(traffic[0].downlink.messages, 3u);
    EXPECT_EQ(traffic[1].downlink.messages, 3u);

    deployment.reset_traffic();
    for (const auto& t : deployment.traffic()) {
        EXPECT_EQ(t.uplink.messages + t.downlink.messages, 0u);
    }
}

TEST(Multiparty, QuantizedWireShrinksTraffic) {
    Fixture fx_f32(4, 2);
    Fixture fx_q8(4, 2);
    const core::Selector selector = make_selector(4, {0, 2});
    const Combiner combiner = [&selector](const std::vector<Tensor>& f) {
        return selector.apply(f);
    };
    MultipartyDeployment wide(fx_f32.head, fx_f32.body_views, fx_f32.tail, selector.indices(),
                              combiner, ShardPlan::round_robin(4, 2), WireFormat::f32);
    MultipartyDeployment narrow(fx_q8.head, fx_q8.body_views, fx_q8.tail, selector.indices(),
                                combiner, ShardPlan::round_robin(4, 2), WireFormat::q8);
    Rng rng(5);
    const Tensor x = Tensor::randn(Shape{4, 2}, rng);
    (void)wide.infer(x);
    (void)narrow.infer(x);
    EXPECT_LT(narrow.traffic()[0].uplink.bytes, wide.traffic()[0].uplink.bytes);
    EXPECT_LT(narrow.traffic()[0].downlink.bytes, wide.traffic()[0].downlink.bytes);
}

TEST(Multiparty, RejectsBadConstruction) {
    Fixture fx(4, 2);
    const core::Selector selector = make_selector(4, {0, 2});
    const Combiner combiner = [&selector](const std::vector<Tensor>& f) {
        return selector.apply(f);
    };
    // Plan covering the wrong number of bodies.
    EXPECT_THROW(MultipartyDeployment(fx.head, fx.body_views, fx.tail, selector.indices(),
                                      combiner, ShardPlan::round_robin(3, 1)),
                 std::invalid_argument);
    // Selected index out of range.
    EXPECT_THROW(MultipartyDeployment(fx.head, fx.body_views, fx.tail, {9}, combiner,
                                      ShardPlan::round_robin(4, 2)),
                 std::invalid_argument);
    // Duplicate assignment.
    ShardPlan bad;
    bad.server_bodies = {{0, 1}, {1, 2, 3}};
    EXPECT_THROW(MultipartyDeployment(fx.head, fx.body_views, fx.tail, selector.indices(),
                                      combiner, bad),
                 std::invalid_argument);
}

// ------------------------------------------------------- collusion analysis

struct CollusionFixture : Fixture {
    // N=6 bodies over 3 servers in blocks: S0={0,1}, S1={2,3}, S2={4,5};
    // secret selection {1, 4} spans S0 and S2.
    core::Selector selector = make_selector(6, {1, 4});
    Combiner combiner = [this](const std::vector<Tensor>& f) { return selector.apply(f); };
    MultipartyDeployment deployment;

    CollusionFixture()
        : Fixture(6, 2),
          deployment(head, body_views, tail, selector.indices(), combiner,
                     ShardPlan::blocks(6, 3)) {}
};

TEST(MultipartyCollusion, SingleServerSeesOnlyItsShard) {
    CollusionFixture fx;
    EXPECT_EQ(fx.deployment.coalition_bodies({1}), (std::vector<std::size_t>{2, 3}));
}

TEST(MultipartyCollusion, SelectedBodyDetection) {
    CollusionFixture fx;
    EXPECT_TRUE(fx.deployment.coalition_holds_selected_body({0}));   // holds body 1
    EXPECT_FALSE(fx.deployment.coalition_holds_selected_body({1}));  // holds 2,3 only
    EXPECT_TRUE(fx.deployment.coalition_holds_selected_body({2}));   // holds body 4
}

TEST(MultipartyCollusion, FullSelectionNeedsBothCoveringServers) {
    CollusionFixture fx;
    EXPECT_FALSE(fx.deployment.coalition_holds_full_selection({0}));
    EXPECT_FALSE(fx.deployment.coalition_holds_full_selection({2}));
    EXPECT_TRUE(fx.deployment.coalition_holds_full_selection({0, 2}));
    EXPECT_TRUE(fx.deployment.coalition_holds_full_selection({0, 1, 2}));
}

TEST(MultipartyCollusion, SubsetSearchSpaceShrinksPerShard) {
    CollusionFixture fx;
    // One server: 2 bodies -> 3 candidate subsets; the full deployment
    // would face 2^6 - 1 = 63.
    EXPECT_EQ(fx.deployment.coalition_subset_count({0}), 3u);
    EXPECT_EQ(fx.deployment.coalition_subset_count({0, 1}), 15u);
    EXPECT_EQ(fx.deployment.coalition_subset_count({0, 1, 2}), 63u);
}

TEST(MultipartyCollusion, MinCoveringCoalitionIsTwo) {
    CollusionFixture fx;
    EXPECT_EQ(fx.deployment.min_covering_coalition(), 2u);
}

TEST(MultipartyCollusion, SingleServerCoversSelectionWhenColocated) {
    Fixture fx(6, 2);
    const core::Selector selector = make_selector(6, {0, 1});
    const Combiner combiner = [&selector](const std::vector<Tensor>& f) {
        return selector.apply(f);
    };
    // Blocks of 2: both selected bodies land on server 0.
    MultipartyDeployment deployment(fx.head, fx.body_views, fx.tail, selector.indices(), combiner,
                                    ShardPlan::blocks(6, 3));
    EXPECT_EQ(deployment.min_covering_coalition(), 1u);
    EXPECT_TRUE(deployment.coalition_holds_full_selection({0}));
}

}  // namespace
}  // namespace ens::split
