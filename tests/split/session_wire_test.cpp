#include <gtest/gtest.h>

#include "core/selector.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"

namespace ens::split {
namespace {

/// Tiny linear CI pipeline over real channels for wire-format coverage.
struct SessionFixture {
    Rng rng{13};
    nn::Sequential head;
    nn::Sequential body;
    nn::Sequential tail;
    InProcChannel uplink;
    InProcChannel downlink;

    SessionFixture() {
        head.emplace<nn::Linear>(3, 4, rng);
        body.emplace<nn::Linear>(4, 4, rng);
        tail.emplace<nn::Linear>(4, 2, rng);
        head.set_training(false);
        body.set_training(false);
        tail.set_training(false);
    }
};

class SessionWire : public ::testing::TestWithParam<WireFormat> {};

TEST_P(SessionWire, RoundTripProducesLogits) {
    SessionFixture fx;
    CollaborativeSession session(fx.head, {&fx.body}, fx.tail, single_body_combiner(),
                                 fx.uplink, fx.downlink, GetParam());
    Rng rng(7);
    const Tensor logits = session.infer(Tensor::randn(Shape{5, 3}, rng));
    EXPECT_EQ(logits.shape(), (Shape{5, 2}));
    EXPECT_EQ(session.wire_format(), GetParam());
}

TEST_P(SessionWire, TrafficBytesMatchFormatWidth) {
    SessionFixture fx;
    CollaborativeSession session(fx.head, {&fx.body}, fx.tail, single_body_combiner(),
                                 fx.uplink, fx.downlink, GetParam());
    Rng rng(9);
    const Tensor x = Tensor::randn(Shape{4, 3}, rng);
    (void)session.infer(x);
    const Tensor features = fx.head.forward(x);
    EXPECT_EQ(session.uplink_stats().bytes, encoded_size(features, GetParam()));
    EXPECT_EQ(session.uplink_stats().messages, 1u);
    EXPECT_EQ(session.downlink_stats().messages, 1u);
}

INSTANTIATE_TEST_SUITE_P(Formats, SessionWire,
                         ::testing::Values(WireFormat::f32, WireFormat::q16, WireFormat::q8),
                         [](const ::testing::TestParamInfo<WireFormat>& info) {
                             return wire_format_name(info.param);
                         });

TEST(SessionWire, QuantizedLogitsStayCloseToLossless) {
    SessionFixture fx_a;
    CollaborativeSession lossless(fx_a.head, {&fx_a.body}, fx_a.tail, single_body_combiner(),
                                  fx_a.uplink, fx_a.downlink, WireFormat::f32);
    // Same weights (same seed), separate channels.
    SessionFixture fx_b;
    CollaborativeSession quantized(fx_b.head, {&fx_b.body}, fx_b.tail, single_body_combiner(),
                                   fx_b.uplink, fx_b.downlink, WireFormat::q16);
    Rng rng(11);
    const Tensor x = Tensor::randn(Shape{8, 3}, rng);
    const auto a = lossless.infer(x).to_vector();
    const auto b = quantized.infer(x).to_vector();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 5e-3f) << "logit " << i;
    }
}

TEST(SessionWire, DefaultFormatIsLossless) {
    SessionFixture fx;
    CollaborativeSession session(fx.head, {&fx.body}, fx.tail, single_body_combiner(),
                                 fx.uplink, fx.downlink);
    EXPECT_EQ(session.wire_format(), WireFormat::f32);
}

}  // namespace
}  // namespace ens::split
