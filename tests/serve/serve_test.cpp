#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/ensembler.hpp"
#include "data/synth_cifar10.hpp"
#include "defense/protected_model.hpp"
#include "nn/linear.hpp"
#include "nn/resnet.hpp"
#include "nn/sequential.hpp"
#include "serve/service.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/split_model.hpp"

namespace ens::serve {
namespace {

constexpr std::int64_t kIn = 3;
constexpr std::int64_t kHidden = 4;
constexpr std::int64_t kClasses = 2;

/// Tiny linear split pipeline; same seed -> identical weights.
split::SplitModel make_linear_split(std::uint64_t seed) {
    Rng rng(seed);
    split::SplitModel model;
    model.head = std::make_unique<nn::Sequential>();
    model.head->emplace<nn::Linear>(kIn, kHidden, rng);
    model.body = std::make_unique<nn::Sequential>();
    model.body->emplace<nn::Linear>(kHidden, kHidden, rng);
    model.tail = std::make_unique<nn::Sequential>();
    model.tail->emplace<nn::Linear>(kHidden, kClasses, rng);
    return model;
}

class ServeWire : public ::testing::TestWithParam<split::WireFormat> {};

// The batcher must be an exact drop-in for the sequential transport: a
// coalesced multi-request server batch produces the same logits, message
// counts and byte counts as CollaborativeSession round trips, for every
// wire format (quantized downlink scales are computed per request).
TEST_P(ServeWire, CoalescedBatchMatchesSequentialSession) {
    const split::WireFormat wire = GetParam();

    split::SplitModel reference = make_linear_split(17);
    reference.set_training(false);
    split::InProcChannel uplink;
    split::InProcChannel downlink;
    split::CollaborativeSession sequential(*reference.head, {reference.body.get()},
                                           *reference.tail, split::single_body_combiner(),
                                           uplink, downlink, wire);

    InferenceService service = InferenceService::from_split_model(make_linear_split(17));
    auto session = service.create_session(SessionOptions{wire, std::nullopt});

    Rng rng(23);
    const std::vector<Tensor> inputs = {Tensor::randn(Shape{2, kIn}, rng),
                                        Tensor::randn(Shape{1, kIn}, rng),
                                        Tensor::randn(Shape{3, kIn}, rng)};

    service.pause();
    std::vector<std::future<InferenceResult>> futures;
    for (const Tensor& x : inputs) {
        futures.push_back(session->submit(x));
    }
    EXPECT_EQ(service.pending(), inputs.size());
    service.resume();

    for (std::size_t r = 0; r < inputs.size(); ++r) {
        const InferenceResult result = futures[r].get();
        // All three requests rode in one 6-image server batch.
        EXPECT_EQ(result.coalesced_images, 6);
        const Tensor expected = sequential.infer(inputs[r]);
        ASSERT_EQ(result.logits.shape(), expected.shape());
        for (std::int64_t i = 0; i < expected.numel(); ++i) {
            EXPECT_FLOAT_EQ(result.logits.at(i), expected.at(i))
                << "request " << r << " logit " << i;
        }
    }

    // Byte parity with the sequential transport (same messages, same sizes).
    EXPECT_EQ(session->uplink_stats().bytes, sequential.uplink_stats().bytes);
    EXPECT_EQ(session->uplink_stats().messages, sequential.uplink_stats().messages);
    EXPECT_EQ(session->downlink_stats().bytes, sequential.downlink_stats().bytes);
    EXPECT_EQ(session->downlink_stats().messages, sequential.downlink_stats().messages);
}

INSTANTIATE_TEST_SUITE_P(Formats, ServeWire,
                         ::testing::Values(split::WireFormat::f32, split::WireFormat::q16,
                                           split::WireFormat::q8),
                         [](const ::testing::TestParamInfo<split::WireFormat>& info) {
                             return split::wire_format_name(info.param);
                         });

TEST(Serve, StandardCiParityWithDirectForward) {
    split::SplitModel reference = make_linear_split(29);
    reference.set_training(false);
    InferenceService service = InferenceService::from_split_model(make_linear_split(29));
    auto session = service.create_session();

    Rng rng(31);
    const Tensor x = Tensor::randn(Shape{5, kIn}, rng);
    const Tensor expected = reference.forward(x);
    const InferenceResult result = session->infer(x);
    ASSERT_EQ(result.logits.shape(), expected.shape());
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        EXPECT_FLOAT_EQ(result.logits.at(i), expected.at(i));
    }
    EXPECT_GE(result.total_ms, result.queue_ms);
}

TEST(Serve, BaselineEnsembleParityWithProtectedModel) {
    constexpr std::size_t kBodies = 3;
    const auto build = [] {
        Rng rng(41);
        defense::ProtectedModel model;
        model.head = std::make_unique<nn::Sequential>();
        model.head->emplace<nn::Linear>(kIn, kHidden, rng);
        for (std::size_t k = 0; k < kBodies; ++k) {
            auto body = std::make_unique<nn::Sequential>();
            body->emplace<nn::Linear>(kHidden, kHidden, rng);
            model.bodies.push_back(std::move(body));
        }
        model.tail = std::make_unique<nn::Sequential>();
        model.tail->emplace<nn::Linear>(kBodies * kHidden, kClasses, rng);
        return model;
    };

    defense::ProtectedModel reference = build();
    Rng rng(43);
    const Tensor x = Tensor::randn(Shape{4, kIn}, rng);
    const Tensor expected = reference.predict(x);

    InferenceService service = InferenceService::from_baseline(build());
    EXPECT_EQ(service.body_count(), kBodies);
    const InferenceResult result = service.create_session()->infer(x);
    ASSERT_EQ(result.logits.shape(), expected.shape());
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        EXPECT_FLOAT_EQ(result.logits.at(i), expected.at(i));
    }
}

TEST(Serve, ConcurrentSubmitFromManyThreadsAndSessions) {
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kRequestsPerThread = 8;

    ServeConfig config;
    config.max_batch = 4;
    InferenceService service = InferenceService::from_split_model(make_linear_split(53), config);

    std::vector<std::shared_ptr<ClientSession>> sessions;
    for (std::size_t t = 0; t < kThreads; ++t) {
        sessions.push_back(service.create_session());
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(100 + t);
            for (std::size_t r = 0; r < kRequestsPerThread; ++r) {
                const Tensor x = Tensor::randn(Shape{1, kIn}, rng);
                const InferenceResult result = sessions[t]->infer(x);
                if (result.logits.shape() != (Shape{1, kClasses})) {
                    ++failures;
                }
                for (std::int64_t i = 0; i < result.logits.numel(); ++i) {
                    if (!std::isfinite(result.logits.at(i))) {
                        ++failures;
                    }
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(failures.load(), 0);

    // Per-session stats isolation: every session saw exactly its own work.
    for (std::size_t t = 0; t < kThreads; ++t) {
        EXPECT_EQ(sessions[t]->stats().requests(), kRequestsPerThread);
        EXPECT_EQ(sessions[t]->stats().images(), kRequestsPerThread);
        EXPECT_EQ(sessions[t]->uplink_stats().messages, kRequestsPerThread);
        EXPECT_EQ(sessions[t]->downlink_stats().messages,
                  kRequestsPerThread * service.body_count());
    }
}

TEST(Serve, PerSessionStatsAndWireFormatIsolation) {
    InferenceService service = InferenceService::from_split_model(make_linear_split(61));
    auto lossless = service.create_session(SessionOptions{split::WireFormat::f32, std::nullopt});
    auto quantized = service.create_session(SessionOptions{split::WireFormat::q8, std::nullopt});
    EXPECT_EQ(service.session_count(), 2u);

    Rng rng(67);
    const Tensor x = Tensor::randn(Shape{2, kIn}, rng);
    (void)lossless->infer(x);
    (void)lossless->infer(x);
    (void)quantized->infer(x);

    EXPECT_EQ(lossless->stats().requests(), 2u);
    EXPECT_EQ(quantized->stats().requests(), 1u);
    // q8 uplink payloads are ~4x smaller than f32 for the same feature map.
    EXPECT_LT(quantized->uplink_stats().bytes, lossless->uplink_stats().bytes / 2);

    const LatencySummary latency = lossless->stats().latency();
    EXPECT_EQ(latency.count, 2u);
    EXPECT_GT(latency.mean_ms, 0.0);
    EXPECT_LE(latency.p50_ms, latency.max_ms);

    lossless->reset_stats();
    EXPECT_EQ(lossless->stats().requests(), 0u);
    EXPECT_EQ(lossless->uplink_stats().bytes, 0u);
    EXPECT_EQ(quantized->stats().requests(), 1u);  // untouched
}

TEST(Serve, SingleImagePromotedToBatchOfOne) {
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 5;
    Rng rng(71);
    InferenceService service =
        InferenceService::from_split_model(split::build_split_resnet18(arch, rng));
    Rng data_rng(73);
    const Tensor image = Tensor::uniform(Shape{3, 16, 16}, data_rng, 0.0f, 1.0f);
    const InferenceResult result = service.create_session()->infer(image);
    EXPECT_EQ(result.logits.shape(), (Shape{1, 5}));
}

TEST(Serve, SubmitRejectsBadInput) {
    InferenceService service = InferenceService::from_split_model(make_linear_split(79));
    auto session = service.create_session();
    EXPECT_THROW((void)session->submit(Tensor{}), std::invalid_argument);
    Rng rng(83);
    // Wrong feature width faults the head forward on the submitting thread.
    EXPECT_ANY_THROW((void)session->infer(Tensor::randn(Shape{2, kIn + 1}, rng)));
    // The service survives and keeps serving.
    const InferenceResult result = session->infer(Tensor::randn(Shape{2, kIn}, rng));
    EXPECT_EQ(result.logits.shape(), (Shape{2, kClasses}));
}

TEST(Serve, SessionSelectorMustCoverBodies) {
    InferenceService service = InferenceService::from_split_model(make_linear_split(89));
    SessionOptions options;
    options.selector = core::Selector(2, {0});
    EXPECT_THROW((void)service.create_session(options), std::invalid_argument);
}

// Ensembler end-to-end: the service serves the stage-3 client bundle +
// secret selector over all N deployed bodies, reproducing
// Ensembler::predict exactly (N = 2 at smoke scale to keep CI time sane).
TEST(Serve, EnsemblerParityWithPredict) {
    const data::SynthCifar10 train_set(64, 1, 16);
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 10;

    core::EnsemblerConfig config;
    config.num_networks = 2;
    config.num_selected = 1;
    config.stage1_options.epochs = 1;
    config.stage1_options.batch_size = 32;
    config.stage3_options.epochs = 1;
    config.stage3_options.batch_size = 32;
    config.seed = 7;

    core::Ensembler ensembler(arch, config);
    ensembler.fit(train_set);

    const data::SynthCifar10 test_set(8, 2, 16);
    const data::Batch batch = data::materialize(test_set, 0, 8);
    const Tensor expected = ensembler.predict(batch.images);

    InferenceService service = InferenceService::from_ensembler(ensembler);
    EXPECT_EQ(service.body_count(), config.num_networks);
    auto session = service.create_session();
    EXPECT_EQ(session->selector().indices(), ensembler.selector().indices());

    const InferenceResult result = session->infer(batch.images);
    ASSERT_EQ(result.logits.shape(), expected.shape());
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        EXPECT_NEAR(result.logits.at(i), expected.at(i), 1e-5f) << "logit " << i;
    }
    // N messages down per request: the Ensembler downlink-growth signature.
    EXPECT_EQ(session->downlink_stats().messages, config.num_networks);
    EXPECT_EQ(session->uplink_stats().messages, 1u);
}

}  // namespace
}  // namespace ens::serve
