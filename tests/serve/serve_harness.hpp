#pragma once
// Shared multi-process fixture for the serve tests: forks BodyHost daemon
// processes behind real TCP listeners, hands the parent their ports, and
// guarantees cleanup (SIGKILL + reap) even when a gtest ASSERT unwinds the
// test early. Used by the remote-session, shard-router and shard-failure
// suites — every test that needs "a body host in another process" goes
// through ForkedDaemon instead of hand-rolling fork()/pipe()/waitpid().
//
// Fork-safety: the child calls ThreadPool::mark_forked_child() FIRST, so a
// global pool lazily created by an earlier test in the same binary (whose
// worker threads do not survive fork) degrades to inline parallel_for
// execution instead of deadlocking. Children exit via _exit() only: gtest
// teardown and static destructors (including inherited pools) must not run
// twice. Inline execution is bit-identical to pooled execution — the
// tensor kernels chunk over independent output rows/batch elements — which
// is what lets the parity tests compare child-computed bytes against the
// parent's oracle bit for bit.
//
// Also hosts the tiny deterministic split/ensemble model builders the
// multi-process tests share: same seed -> identical weights, so parent and
// child construct bit-identical halves of a deployment without shipping a
// checkpoint.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "serve/remote.hpp"
#include "split/split_model.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve::harness {

/// One forked daemon process owning one ChannelListener. The child main
/// runs entirely in the child (build models there, never before the fork in
/// the parent) and the daemon dies with the object, so an assert-failure
/// that unwinds the test cannot leak a child process or a bound port.
class ForkedDaemon {
public:
    using ChildMain = std::function<void(split::ChannelListener&)>;

    /// Forks. The child opens a listener — ephemeral by default, or bound
    /// to `fixed_port` when nonzero (how a replacement daemon reclaims a
    /// killed replica's address so the client's background redialer can
    /// find it) — reports its port through a pipe, runs
    /// `child_main(listener)` and exits 0 (1 on any exception). The parent
    /// blocks only for the port hand-off; a spawn failure leaves
    /// port() == 0 for the test to assert on.
    explicit ForkedDaemon(const ChildMain& child_main, std::uint16_t fixed_port = 0) {
        int port_pipe[2] = {-1, -1};
        if (::pipe(port_pipe) != 0) {
            return;
        }
        const pid_t child = ::fork();
        if (child == -1) {
            ::close(port_pipe[0]);
            ::close(port_pipe[1]);
            return;
        }
        if (child == 0) {
            ::close(port_pipe[0]);
            ThreadPool::mark_forked_child();
            int code = 0;
            try {
                split::ChannelListener listener(fixed_port);
                const std::uint16_t port = listener.port();
                if (::write(port_pipe[1], &port, sizeof(port)) !=
                    static_cast<ssize_t>(sizeof(port))) {
                    ::_exit(2);
                }
                ::close(port_pipe[1]);
                child_main(listener);
            } catch (...) {
                code = 1;
            }
            ::_exit(code);
        }
        pid_ = child;
        ::close(port_pipe[1]);
        std::uint16_t port = 0;
        if (::read(port_pipe[0], &port, sizeof(port)) == static_cast<ssize_t>(sizeof(port))) {
            port_ = port;
        }
        ::close(port_pipe[0]);
    }

    ForkedDaemon(const ForkedDaemon&) = delete;
    ForkedDaemon& operator=(const ForkedDaemon&) = delete;

    ForkedDaemon(ForkedDaemon&& other) noexcept
        : pid_(std::exchange(other.pid_, -1)), port_(std::exchange(other.port_, 0)) {}

    ForkedDaemon& operator=(ForkedDaemon&& other) noexcept {
        if (this != &other) {
            terminate();
            pid_ = std::exchange(other.pid_, -1);
            port_ = std::exchange(other.port_, 0);
        }
        return *this;
    }

    ~ForkedDaemon() { terminate(); }

    /// The child's listening port (0 when the spawn failed).
    std::uint16_t port() const { return port_; }

    pid_t pid() const { return pid_; }

    /// Blocks until the child exits on its own; returns its exit code, or
    /// -1 when it was signaled / already reaped / never spawned.
    int wait_exit_code() {
        if (pid_ == -1) {
            return -1;
        }
        int status = 0;
        const pid_t reaped = ::waitpid(pid_, &status, 0);
        pid_ = -1;
        if (reaped == -1 || !WIFEXITED(status)) {
            return -1;
        }
        return WEXITSTATUS(status);
    }

    /// SIGKILLs and reaps the child — the "shard dies mid-request" lever of
    /// the failure tests. Idempotent.
    void kill_now() { terminate(); }

    /// SIGSTOPs the child — a wedged-but-alive replica: the TCP connection
    /// stays open yet nothing answers, which is how recv timeouts (not
    /// connection resets) get exercised. Pair with resume().
    void stop_now() {
        if (pid_ != -1) {
            ::kill(pid_, SIGSTOP);
        }
    }

    /// SIGCONTs a stop_now()-frozen child.
    void resume() {
        if (pid_ != -1) {
            ::kill(pid_, SIGCONT);
        }
    }

private:
    void terminate() {
        if (pid_ == -1) {
            return;
        }
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    pid_t pid_ = -1;
    std::uint16_t port_ = 0;
};

/// Spawns a daemon whose child builds a BodyHost via `make_host` (invoked
/// in the child; by pointer — BodyHost owns mutexes and cannot move) and
/// serves `connections` connections sequentially before exiting 0. The
/// building block for K-shard deployments: call it K times with per-shard
/// factories.
inline ForkedDaemon spawn_body_host(std::function<std::unique_ptr<BodyHost>()> make_host,
                                    int connections, std::uint16_t fixed_port = 0) {
    return ForkedDaemon(
        [make_host = std::move(make_host), connections](split::ChannelListener& listener) {
            const std::unique_ptr<BodyHost> host = make_host();
            for (int c = 0; c < connections; ++c) {
                auto channel = listener.accept();
                host->serve(*channel);
            }
        },
        fixed_port);
}

// ---------------------------------------------------------------- models
// Tiny linear geometries, deterministic per seed. Small on purpose: these
// tests prove protocol and routing behavior, not model quality.

constexpr std::int64_t kIn = 3;
constexpr std::int64_t kHidden = 4;
constexpr std::int64_t kClasses = 2;

/// Tiny linear split pipeline; same seed -> identical weights, so parent
/// and child build bit-identical halves of the deployment.
inline split::SplitModel make_linear_split(std::uint64_t seed) {
    Rng rng(seed);
    split::SplitModel model;
    model.head = std::make_unique<nn::Sequential>();
    model.head->emplace<nn::Linear>(kIn, kHidden, rng);
    model.body = std::make_unique<nn::Sequential>();
    model.body->emplace<nn::Linear>(kHidden, kHidden, rng);
    model.tail = std::make_unique<nn::Sequential>();
    model.tail->emplace<nn::Linear>(kHidden, kClasses, rng);
    return model;
}

/// N-body ensemble geometry: shared head, per-body nets, a tail sized for
/// the P-map selector concat. Deterministic per-part seeds, so a shard
/// child building bodies [i, j) gets the same weights the parent's oracle
/// holds at those indices.
struct EnsembleParts {
    std::unique_ptr<nn::Sequential> head;
    std::vector<nn::LayerPtr> bodies;
    std::unique_ptr<nn::Sequential> tail;
};

inline EnsembleParts make_linear_ensemble(std::uint64_t seed, std::size_t num_bodies,
                                          std::size_t num_selected) {
    EnsembleParts parts;
    Rng head_rng(seed);
    parts.head = std::make_unique<nn::Sequential>();
    parts.head->emplace<nn::Linear>(kIn, kHidden, head_rng);
    for (std::size_t k = 0; k < num_bodies; ++k) {
        Rng body_rng(seed + 1 + k);
        auto body = std::make_unique<nn::Sequential>();
        body->emplace<nn::Linear>(kHidden, kHidden, body_rng);
        parts.bodies.push_back(std::move(body));
    }
    Rng tail_rng(seed + 100);
    parts.tail = std::make_unique<nn::Sequential>();
    parts.tail->emplace<nn::Linear>(static_cast<std::int64_t>(num_selected) * kHidden, kClasses,
                                    tail_rng);
    return parts;
}

inline void set_eval(EnsembleParts& parts) {
    parts.head->set_training(false);
    for (nn::LayerPtr& body : parts.bodies) {
        body->set_training(false);
    }
    parts.tail->set_training(false);
}

/// The bodies of `make_linear_ensemble(seed, num_bodies, ...)` restricted
/// to global indices [begin, begin + count) — what one shard child hosts.
inline std::vector<nn::LayerPtr> make_shard_bodies(std::uint64_t seed, std::size_t num_bodies,
                                                   std::size_t begin, std::size_t count) {
    EnsembleParts parts = make_linear_ensemble(seed, num_bodies, /*num_selected=*/1);
    std::vector<nn::LayerPtr> shard;
    shard.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        shard.push_back(std::move(parts.bodies.at(begin + k)));
    }
    return shard;
}

// ----------------------------------------------------- conv + BN ensemble
// A tiny convolutional ensemble with BatchNorm on BOTH sides of the split
// and a fixed split-point noise mask — the state that ONLY full-fidelity
// checkpoints (nn::save_state: parameters + running statistics + noise
// buffer) carry across a process boundary. The bundle restart-parity tests
// use it so a restored daemon that silently dropped any of that state
// would diverge from the oracle bit-for-bit. warm_batchnorm() stands in
// for training: it drives the running statistics away from their init so
// eval-mode outputs actually depend on checkpointed buffer state.

constexpr std::int64_t kConvImage = 4;     // input images are [1, 4, 4]
constexpr std::int64_t kConvHeadCh = 3;    // split-point feature channels
constexpr std::int64_t kConvBodyCh = 4;    // per-body feature width after pool

struct ConvEnsembleParts {
    std::unique_ptr<nn::Sequential> head;   // Conv -> BN -> ReLU
    std::unique_ptr<nn::FixedNoise> noise;  // fixed split-point mask
    std::vector<nn::LayerPtr> bodies;       // Conv -> BN -> ReLU -> GAP, [B, kConvBodyCh]
    std::unique_ptr<nn::Sequential> tail;   // Linear(P * kConvBodyCh -> kClasses)
};

inline nn::LayerPtr make_conv_body(std::uint64_t seed, std::size_t body_index) {
    Rng rng(seed + 1 + body_index);
    auto body = std::make_unique<nn::Sequential>();
    body->emplace<nn::Conv2d>(kConvHeadCh, kConvBodyCh, /*kernel=*/3, /*stride=*/1,
                              /*padding=*/1, rng);
    body->emplace<nn::BatchNorm2d>(kConvBodyCh);
    body->emplace<nn::ReLU>();
    body->emplace<nn::GlobalAvgPool>();
    return body;
}

inline ConvEnsembleParts make_conv_ensemble(std::uint64_t seed, std::size_t num_bodies,
                                            std::size_t num_selected) {
    ConvEnsembleParts parts;
    Rng head_rng(seed);
    parts.head = std::make_unique<nn::Sequential>();
    parts.head->emplace<nn::Conv2d>(1, kConvHeadCh, /*kernel=*/3, /*stride=*/1, /*padding=*/1,
                                    head_rng);
    parts.head->emplace<nn::BatchNorm2d>(kConvHeadCh);
    parts.head->emplace<nn::ReLU>();
    Rng noise_rng(seed + 50);
    parts.noise = std::make_unique<nn::FixedNoise>(Shape{kConvHeadCh, kConvImage, kConvImage},
                                                   0.1f, noise_rng);
    for (std::size_t k = 0; k < num_bodies; ++k) {
        parts.bodies.push_back(make_conv_body(seed, k));
    }
    Rng tail_rng(seed + 100);
    parts.tail = std::make_unique<nn::Sequential>();
    parts.tail->emplace<nn::Linear>(static_cast<std::int64_t>(num_selected) * kConvBodyCh,
                                    kClasses, tail_rng);
    return parts;
}

/// Drives the BatchNorm running statistics of every part away from their
/// initialization (training-mode forwards, the "training" of these tiny
/// deployments). Must run BEFORE set_eval/save.
inline void warm_batchnorm(ConvEnsembleParts& parts, std::uint64_t data_seed,
                           int batches = 3) {
    Rng rng(data_seed);
    for (int i = 0; i < batches; ++i) {
        const Tensor images = Tensor::randn(Shape{5, 1, kConvImage, kConvImage}, rng);
        const Tensor features = parts.noise->forward(parts.head->forward(images));
        for (nn::LayerPtr& body : parts.bodies) {
            body->forward(features);
        }
    }
}

inline void set_eval(ConvEnsembleParts& parts) {
    parts.head->set_training(false);
    parts.noise->set_training(false);
    for (nn::LayerPtr& body : parts.bodies) {
        body->set_training(false);
    }
    parts.tail->set_training(false);
}

/// Non-owning forward-only chain — lets an oracle treat head + separate
/// noise as the single "client head" a CollaborativeSession expects.
class ChainLayer final : public nn::Layer {
public:
    explicit ChainLayer(std::vector<nn::Layer*> parts) : parts_(std::move(parts)) {}

    Tensor forward(const Tensor& input) override {
        Tensor value = input;
        for (nn::Layer* part : parts_) {
            value = part->forward(value);
        }
        return value;
    }

    Tensor backward(const Tensor&) override {
        throw std::logic_error("ChainLayer is forward-only (oracle helper)");
    }

    std::string name() const override { return "Chain"; }

private:
    std::vector<nn::Layer*> parts_;
};

}  // namespace ens::serve::harness
