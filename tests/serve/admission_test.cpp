// Bounded admission control: a full request queue must reject (typed
// ens::Error{overloaded}) or block (backpressure on the submitter) instead
// of growing without limit, and the per-session backpressure counters must
// account for every shed or delayed request.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "serve/service.hpp"
#include "split/split_model.hpp"

namespace ens::serve {
namespace {

constexpr std::int64_t kIn = 3;
constexpr std::int64_t kHidden = 4;
constexpr std::int64_t kClasses = 2;

split::SplitModel make_linear_split(std::uint64_t seed) {
    Rng rng(seed);
    split::SplitModel model;
    model.head = std::make_unique<nn::Sequential>();
    model.head->emplace<nn::Linear>(kIn, kHidden, rng);
    model.body = std::make_unique<nn::Sequential>();
    model.body->emplace<nn::Linear>(kHidden, kHidden, rng);
    model.tail = std::make_unique<nn::Sequential>();
    model.tail->emplace<nn::Linear>(kHidden, kClasses, rng);
    return model;
}

TEST(Admission, RejectPolicyShedsLoadAtMaxDepthAndRecovers) {
    ServeConfig config;
    config.max_queue_depth = 2;
    config.admission = AdmissionPolicy::reject;
    InferenceService service = InferenceService::from_split_model(make_linear_split(11), config);
    auto session = service.create_session();

    Rng rng(13);
    const Tensor x = Tensor::randn(Shape{1, kIn}, rng);

    service.pause();  // hold the drain so the queue fills deterministically
    std::vector<std::future<InferenceResult>> admitted;
    admitted.push_back(session->submit(x));
    admitted.push_back(session->submit(x));
    EXPECT_EQ(service.pending(), 2u);

    // Queue full: the third submission is shed with a typed error and the
    // queue does NOT grow.
    try {
        (void)session->submit(x);
        FAIL() << "submit into a full queue should be rejected";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::overloaded);
    }
    EXPECT_EQ(service.pending(), 2u);
    EXPECT_EQ(session->stats().rejected(), 1u);
    EXPECT_EQ(session->stats().blocked(), 0u);

    service.resume();
    for (auto& future : admitted) {
        EXPECT_EQ(future.get().logits.shape(), (Shape{1, kClasses}));
    }
    // Rejected requests never complete: only the admitted two are counted.
    EXPECT_EQ(session->stats().requests(), 2u);

    // Once drained, admission opens again.
    EXPECT_EQ(session->infer(x).logits.shape(), (Shape{1, kClasses}));
    EXPECT_EQ(session->stats().rejected(), 1u);
}

TEST(Admission, BlockPolicyParksSubmitterUntilSpaceFrees) {
    ServeConfig config;
    config.max_queue_depth = 1;
    config.admission = AdmissionPolicy::block;
    InferenceService service = InferenceService::from_split_model(make_linear_split(19), config);
    auto session = service.create_session();

    Rng rng(29);
    const Tensor x = Tensor::randn(Shape{1, kIn}, rng);

    service.pause();
    std::future<InferenceResult> first = session->submit(x);
    EXPECT_EQ(service.pending(), 1u);

    std::atomic<bool> second_admitted{false};
    std::promise<InferenceResult> second_result;
    std::thread blocked_submitter([&] {
        // Blocks inside submit() until the service drains a slot.
        std::future<InferenceResult> second = session->submit(x);
        second_admitted = true;
        second_result.set_value(second.get());
    });

    // The submitter must still be parked: the queue stays at its bound.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(second_admitted.load());
    EXPECT_EQ(service.pending(), 1u);

    service.resume();
    blocked_submitter.join();
    EXPECT_TRUE(second_admitted.load());
    EXPECT_EQ(first.get().logits.shape(), (Shape{1, kClasses}));
    EXPECT_EQ(second_result.get_future().get().logits.shape(), (Shape{1, kClasses}));

    EXPECT_EQ(session->stats().blocked(), 1u);
    EXPECT_GT(session->stats().total_blocked_ms(), 0.0);
    EXPECT_EQ(session->stats().rejected(), 0u);
    // Both requests completed despite the backpressure.
    EXPECT_EQ(session->stats().requests(), 2u);
}

TEST(Admission, ShutdownWakesParkedSubmitter) {
    ServeConfig config;
    config.max_queue_depth = 1;
    config.admission = AdmissionPolicy::block;

    Rng rng(37);
    const Tensor x = Tensor::randn(Shape{1, kIn}, rng);

    std::future<InferenceResult> admitted;
    std::atomic<bool> threw{false};
    std::thread parked;
    {
        InferenceService service =
            InferenceService::from_split_model(make_linear_split(31), config);
        auto session = service.create_session();
        service.pause();
        admitted = session->submit(x);
        parked = std::thread([&, session] {
            try {
                (void)session->submit(x);
            } catch (const Error& e) {
                // Typed shutdown signal, not an "invariant violated".
                EXPECT_EQ(e.code(), ErrorCode::channel_closed);
                threw = true;
            }
        });
        // The session must not outlive the service, so wait until the
        // submitter is provably parked on admission before tearing the
        // service down at scope exit.
        while (service.admission_waiters() == 0) {
            std::this_thread::yield();
        }
    }  // destruction drains the admitted request and wakes the parked one
    parked.join();
    EXPECT_TRUE(threw.load());
    EXPECT_EQ(admitted.get().logits.shape(), (Shape{1, kClasses}));
}

TEST(Admission, UnboundedDefaultNeverRejectsOrBlocks) {
    InferenceService service = InferenceService::from_split_model(make_linear_split(41));
    auto session = service.create_session();
    Rng rng(43);
    const Tensor x = Tensor::randn(Shape{1, kIn}, rng);

    service.pause();
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(session->submit(x));
    }
    EXPECT_EQ(service.pending(), 16u);  // queue grows with offered load
    service.resume();
    for (auto& future : futures) {
        EXPECT_EQ(future.get().logits.shape(), (Shape{1, kClasses}));
    }
    EXPECT_EQ(session->stats().rejected(), 0u);
    EXPECT_EQ(session->stats().blocked(), 0u);
}

}  // namespace
}  // namespace ens::serve
