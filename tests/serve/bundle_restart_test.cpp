// Restart-parity regression suite for deployment bundles (serve/bundle.hpp).
//
// The discipline under test is save-then-serve: a trainer process writes a
// versioned on-disk bundle, and a FRESH process — forked daemons that boot
// purely from that directory, with no trainer objects, no shared seeds, no
// live layer pointers — must serve outputs BIT-IDENTICAL to the trainer's
// own in-proc sequential oracle. The models deliberately carry the state
// that only full-fidelity checkpoints preserve: BatchNorm running
// statistics on both sides of the split and a fixed split-point noise mask
// (harness::make_conv_ensemble + warm_batchnorm). Configurations covered:
// single host and 3-shard §III-D, each pipelined (in-flight window > 1),
// each for lossless f32 and quantized q8 wire.
//
// The secret stays client-side on disk too: BodyHost::from_bundle boots
// with CLIENT.ens deleted outright (a body-host machine never holds the
// selector), which this suite pins.
//
// Hostile-input half: truncated, corrupted and version-bumped manifest /
// client / checkpoint files must fail as typed
// ens::Error{checkpoint_error} NAMING the offending file — never crash,
// hang, over-allocate or silently mis-load.
//
// Bundle directories are written under the working directory's
// bundle_artifacts/ and left in place — CI uploads them on failure for
// post-mortem.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/bundle.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 6100;
constexpr std::chrono::milliseconds kRequestTimeout{120000};
constexpr std::size_t kInflight = 4;

/// Fresh per-test bundle directory under bundle_artifacts/ (kept after the
/// run so CI can upload it when the test fails).
std::string bundle_dir_for(const std::string& name) {
    const fs::path dir = fs::path("bundle_artifacts") / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/// Trains (BN-warms) a conv ensemble and writes it as a bundle. The live
/// parts stay with the caller — they are the oracle.
harness::ConvEnsembleParts make_trained_bundle(const std::string& dir, std::size_t num_bodies,
                                               const core::Selector& selector) {
    harness::ConvEnsembleParts parts =
        harness::make_conv_ensemble(kSeed, num_bodies, selector.p());
    harness::warm_batchnorm(parts, kSeed + 7);
    harness::set_eval(parts);

    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = parts.head.get();
    artifacts.noise = parts.noise.get();
    artifacts.tail = parts.tail.get();
    artifacts.selector = &selector;
    save_bundle(dir, artifacts);
    return parts;
}

std::vector<Tensor> make_inputs(std::uint64_t data_seed) {
    Rng rng(data_seed);
    return {Tensor::randn(Shape{2, 1, harness::kConvImage, harness::kConvImage}, rng),
            Tensor::randn(Shape{1, 1, harness::kConvImage, harness::kConvImage}, rng),
            Tensor::randn(Shape{3, 1, harness::kConvImage, harness::kConvImage}, rng)};
}

/// In-proc sequential oracle over the LIVE trained parts (head + noise
/// chained into the single client head a CollaborativeSession expects).
class Oracle {
public:
    Oracle(harness::ConvEnsembleParts& parts, const core::Selector& selector,
           split::WireFormat wire)
        : chain_({parts.head.get(), parts.noise.get()}) {
        for (nn::LayerPtr& body : parts.bodies) {
            bodies_.push_back(body.get());
        }
        session_ = std::make_unique<split::CollaborativeSession>(
            chain_, bodies_, *parts.tail,
            [&selector](const std::vector<Tensor>& features) {
                return selector.apply(features);
            },
            uplink_, downlink_, wire);
    }

    Tensor infer(const Tensor& images) { return session_->infer(images); }

private:
    harness::ChainLayer chain_;
    std::vector<nn::Layer*> bodies_;
    split::InProcChannel uplink_;
    split::InProcChannel downlink_;
    std::unique_ptr<split::CollaborativeSession> session_;
};

// --------------------------------------------------------------- parity

TEST(BundleRestart, ForkedSingleHostBootedFromBundleIsBitIdenticalToOracle) {
    const std::string dir = bundle_dir_for("single_host");
    const core::Selector selector(3, {0, 2});
    harness::ConvEnsembleParts parts = make_trained_bundle(dir, /*num_bodies=*/3, selector);

    // The client half comes off disk too — then the secret file is deleted
    // BEFORE the daemon forks, to prove a body host never needs it. The
    // daemon child knows ONLY the directory path: no layers, no seeds, no
    // selector cross the fork.
    ClientArtifacts client = load_bundle_client(dir, 3);
    ASSERT_NE(client.noise, nullptr);
    ASSERT_TRUE(fs::remove(fs::path(dir) / kClientFileName));
    harness::ForkedDaemon daemon = harness::spawn_body_host(
        [dir] { return BodyHost::from_bundle(dir); }, /*connections=*/2);
    ASSERT_GT(daemon.port(), 0);

    const std::vector<Tensor> inputs = make_inputs(31);
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        Oracle oracle(parts, selector, wire);

        RemoteSession session(split::tcp_connect("127.0.0.1", daemon.port()), *client.head,
                              client.noise.get(), *client.tail, client.selector, wire,
                              std::chrono::seconds(30), kInflight);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.body_count(), 3u);
        ASSERT_GT(session.window(), 1u) << "pipelined configuration required";

        // Pipelined: all requests in flight before the first wait.
        std::vector<std::future<InferenceResult>> futures;
        for (const Tensor& input : inputs) {
            futures.push_back(session.submit(input));
        }
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = futures[r].get();
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        session.close();
    }
    EXPECT_EQ(daemon.wait_exit_code(), 0) << "bundle daemon did not exit cleanly";
}

TEST(BundleRestart, ForkedThreeShardPipelinedFromBundleIsBitIdenticalToOracle) {
    constexpr std::size_t kBodies = 6;
    constexpr std::size_t kShards = 3;
    constexpr std::size_t kPerShard = kBodies / kShards;

    const std::string dir = bundle_dir_for("three_shard");
    // Selector spans all three shards (the §III-D non-collusion argument).
    const core::Selector selector(kBodies, {0, 3, 5});
    harness::ConvEnsembleParts parts = make_trained_bundle(dir, kBodies, selector);

    // Client artifacts come off disk BEFORE the secret file is removed
    // from what the shard hosts see.
    ClientArtifacts client = load_bundle_client(dir, kBodies);
    ASSERT_NE(client.noise, nullptr);
    ASSERT_TRUE(fs::remove(fs::path(dir) / kClientFileName));

    // Each shard child boots ONLY its own slice from the directory.
    std::vector<harness::ForkedDaemon> daemons;
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::size_t begin = s * kPerShard;
        daemons.push_back(harness::spawn_body_host(
            [dir, begin] { return BodyHost::from_bundle(dir, begin, kPerShard); },
            /*connections=*/2));
    }
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }

    const std::vector<Tensor> inputs = make_inputs(32);
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        Oracle oracle(parts, selector, wire);

        std::vector<std::unique_ptr<split::Channel>> channels;
        for (const std::size_t s : {2u, 0u, 1u}) {  // scrambled on purpose
            channels.push_back(split::tcp_connect("127.0.0.1", daemons[s].port()));
        }
        ShardRouter router(std::move(channels), *client.head, client.noise.get(), *client.tail,
                           client.selector, wire, std::chrono::seconds(30), kInflight);
        router.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(router.body_count(), kBodies);
        ASSERT_GT(router.window(), 1u) << "pipelined configuration required";

        std::vector<std::future<InferenceResult>> futures;
        for (const Tensor& input : inputs) {
            futures.push_back(router.submit(input));
        }
        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = futures[r].get();
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        router.close();
    }
    for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(daemons[s].wait_exit_code(), 0) << "shard daemon " << s;
    }
}

TEST(BundleRestart, InferenceServiceFromBundleMatchesOracleAndResaves) {
    const std::string dir = bundle_dir_for("service");
    const core::Selector selector(3, {1, 2});
    harness::ConvEnsembleParts parts = make_trained_bundle(dir, /*num_bodies=*/3, selector);

    const std::vector<Tensor> inputs = make_inputs(33);
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        Oracle oracle(parts, selector, wire);
        InferenceService service = InferenceService::from_bundle(dir);
        ASSERT_EQ(service.body_count(), 3u);
        auto session = service.create_session(SessionOptions{wire, {}});
        for (const Tensor& input : inputs) {
            const Tensor expected = oracle.infer(input);
            const InferenceResult result = session->infer(input);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire);
        }
    }

    // Save-from-service round trip: a bundle written by a bundle-booted
    // service reproduces the same deployment.
    const std::string resaved = bundle_dir_for("service_resaved");
    {
        InferenceService service = InferenceService::from_bundle(dir);
        service.save_bundle(resaved);
    }
    InferenceService restored = InferenceService::from_bundle(resaved);
    Oracle oracle(parts, selector, split::WireFormat::f32);
    auto session = restored.create_session();
    for (const Tensor& input : inputs) {
        EXPECT_EQ(session->infer(input).logits.to_vector(),
                  oracle.infer(input).to_vector());
    }
}

TEST(BundleRestart, RecordedWireMaskRestrictsTheRestoredHost) {
    const std::string dir = bundle_dir_for("wire_mask");
    const core::Selector selector(2, {0});
    harness::ConvEnsembleParts parts = harness::make_conv_ensemble(kSeed, 2, selector.p());
    harness::set_eval(parts);

    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = parts.head.get();
    artifacts.noise = parts.noise.get();
    artifacts.tail = parts.tail.get();
    artifacts.selector = &selector;
    // The bundle author restricts the deployment to lossless wire only;
    // a restored host must advertise exactly that, not this build's full
    // support set.
    artifacts.wire_mask = split::wire_format_bit(split::WireFormat::f32);
    artifacts.default_wire_format = split::WireFormat::f32;
    save_bundle(dir, artifacts);

    const auto host = BodyHost::from_bundle(dir);
    EXPECT_EQ(host->host_info().wire_mask, split::wire_format_bit(split::WireFormat::f32));
    EXPECT_FALSE(split::wire_format_supported(host->host_info().wire_mask,
                                              split::WireFormat::q8));

    // A from_bundle -> save_bundle round trip must carry the restriction,
    // never silently widen it back to this build's full support set.
    const std::string resaved = bundle_dir_for("wire_mask_resaved");
    InferenceService::from_bundle(dir).save_bundle(resaved);
    const BundleManifest manifest = load_bundle_manifest(resaved);
    EXPECT_EQ(manifest.wire_mask, split::wire_format_bit(split::WireFormat::f32));
}

// --------------------------------------------------------------- hostile

class BundleHostileTest : public ::testing::Test {
protected:
    /// A fresh valid bundle to corrupt, plus its oracle parts (unused by
    /// most cases, but keeps the bundle genuinely loadable before the
    /// corruption under test).
    std::string make_bundle(const std::string& name) {
        const std::string dir = bundle_dir_for("hostile_" + name);
        const core::Selector selector(2, {0});
        parts_ = std::make_unique<harness::ConvEnsembleParts>(
            make_trained_bundle(dir, /*num_bodies=*/2, selector));
        return dir;
    }

    static void truncate_file(const fs::path& file, std::uintmax_t keep) {
        ASSERT_GT(fs::file_size(file), keep);
        fs::resize_file(file, keep);
    }

    static void flip_byte(const fs::path& file, std::uintmax_t offset) {
        std::fstream stream(file, std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(stream.good());
        stream.seekg(static_cast<std::streamoff>(offset));
        char byte = 0;
        stream.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A);
        stream.seekp(static_cast<std::streamoff>(offset));
        stream.write(&byte, 1);
    }

    /// Expects a typed checkpoint_error whose message names `file_hint`.
    template <typename Call>
    static void expect_typed_failure(Call&& call, const std::string& file_hint,
                                     const char* what) {
        try {
            call();
            FAIL() << what << ": expected ens::Error{checkpoint_error}, got no exception";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::checkpoint_error) << what << ": " << e.what();
            EXPECT_NE(std::string(e.what()).find(file_hint), std::string::npos)
                << what << ": error does not name the offending file: " << e.what();
        } catch (const std::exception& e) {
            FAIL() << what << ": expected ens::Error{checkpoint_error}, got "
                   << typeid(e).name() << ": " << e.what();
        }
    }

    std::unique_ptr<harness::ConvEnsembleParts> parts_;
};

TEST_F(BundleHostileTest, TruncatedManifestFailsTypedNamingTheFile) {
    const std::string dir = make_bundle("truncated_manifest");
    truncate_file(fs::path(dir) / kManifestFileName, 21);
    expect_typed_failure([&] { load_bundle_manifest(dir); }, kManifestFileName,
                         "truncated manifest");
    expect_typed_failure([&] { BodyHost::from_bundle(dir); }, kManifestFileName,
                         "truncated manifest via BodyHost");
}

TEST_F(BundleHostileTest, CorruptedManifestMagicFailsTyped) {
    const std::string dir = make_bundle("bad_magic");
    flip_byte(fs::path(dir) / kManifestFileName, 1);
    expect_typed_failure([&] { load_bundle_manifest(dir); }, kManifestFileName, "bad magic");
}

TEST_F(BundleHostileTest, VersionBumpedManifestAndClientFailByVersionNumber) {
    const std::string dir = make_bundle("version_bump");
    // Byte 4 is the low byte of the little-endian version field in both
    // files; flipping it simulates a bundle from a future layout.
    flip_byte(fs::path(dir) / kManifestFileName, 4);
    flip_byte(fs::path(dir) / kClientFileName, 4);
    try {
        load_bundle_manifest(dir);
        FAIL() << "version-bumped manifest loaded";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("supports only " + std::to_string(kBundleVersion)),
                  std::string::npos)
            << "version refusal must name the supported version: " << e.what();
    }
    expect_typed_failure([&] { load_bundle_client(dir); }, kClientFileName,
                         "version-bumped client file");
}

TEST_F(BundleHostileTest, CorruptedBodyCheckpointFailsTypedNamingTheFile) {
    const std::string dir = make_bundle("corrupt_body");
    // Flip a byte inside the second body's parameter records (past the
    // magics): the restore must reject it, never load garbage weights.
    flip_byte(fs::path(dir) / "body_001.ckpt", 20);
    const BundleManifest manifest = load_bundle_manifest(dir);
    expect_typed_failure([&] { load_bundle_bodies(dir, manifest); }, "body_001.ckpt",
                         "corrupt body checkpoint");
    // The corrupted file is OUTSIDE the first shard's slice: a shard host
    // for bodies [0, 1) must still boot (it never opens body_001.ckpt).
    EXPECT_NO_THROW({
        const auto host = BodyHost::from_bundle(dir, 0, 1);
        EXPECT_EQ(host->body_count(), 1u);
    });
}

TEST_F(BundleHostileTest, TruncatedBodyCheckpointFailsTypedNamingTheFile) {
    const std::string dir = make_bundle("truncated_body");
    const fs::path file = fs::path(dir) / "body_000.ckpt";
    truncate_file(file, fs::file_size(file) / 2);
    expect_typed_failure([&] { BodyHost::from_bundle(dir); }, "body_000.ckpt",
                         "truncated body checkpoint");
}

TEST_F(BundleHostileTest, TruncatedClientFileFailsTypedNamingTheFile) {
    const std::string dir = make_bundle("truncated_client");
    const fs::path file = fs::path(dir) / kClientFileName;
    truncate_file(file, fs::file_size(file) - 40);
    expect_typed_failure([&] { load_bundle_client(dir); }, kClientFileName,
                         "truncated client file");
}

TEST_F(BundleHostileTest, MissingFilesFailTypedNamingTheFile) {
    const std::string dir = make_bundle("missing_files");
    fs::remove(fs::path(dir) / "body_000.ckpt");
    expect_typed_failure([&] { BodyHost::from_bundle(dir); }, "body_000.ckpt",
                         "missing body checkpoint");
    fs::remove(fs::path(dir) / kManifestFileName);
    expect_typed_failure([&] { load_bundle_manifest(dir); }, kManifestFileName,
                         "missing manifest");
}

TEST_F(BundleHostileTest, HostileBodyCountAndFileNamesAreRejectedBeforeAllocation) {
    const std::string dir = bundle_dir_for("hostile_crafted");
    // Hand-crafted manifest: plausible magic/version, absurd body count.
    {
        std::ofstream out(fs::path(dir) / kManifestFileName, std::ios::binary);
        const std::uint32_t magic = 0x4D534E45, version = kBundleVersion, total = 0x00FFFFFF;
        out.write(reinterpret_cast<const char*>(&magic), 4);
        out.write(reinterpret_cast<const char*>(&version), 4);
        out.write(reinterpret_cast<const char*>(&total), 4);
    }
    expect_typed_failure([&] { load_bundle_manifest(dir); }, kManifestFileName,
                         "absurd body count");

    // Path traversal in a checkpoint file name must be refused outright.
    {
        std::ofstream out(fs::path(dir) / kManifestFileName, std::ios::binary);
        const std::uint32_t magic = 0x4D534E45, version = kBundleVersion, total = 1, mask = 1;
        const std::uint8_t wire = 0;
        const std::uint32_t inflight = 8;
        out.write(reinterpret_cast<const char*>(&magic), 4);
        out.write(reinterpret_cast<const char*>(&version), 4);
        out.write(reinterpret_cast<const char*>(&total), 4);
        out.write(reinterpret_cast<const char*>(&mask), 4);
        out.write(reinterpret_cast<const char*>(&wire), 1);
        out.write(reinterpret_cast<const char*>(&inflight), 4);
        const std::string evil = "../evil.ckpt";
        const std::uint32_t len = static_cast<std::uint32_t>(evil.size());
        out.write(reinterpret_cast<const char*>(&len), 4);
        out.write(evil.data(), evil.size());
    }
    expect_typed_failure([&] { load_bundle_manifest(dir); }, kManifestFileName,
                         "path-traversal file name");
}

}  // namespace
}  // namespace ens::serve
