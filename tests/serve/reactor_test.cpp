// Reactor-host tests: the event-driven serving core must decouple
// connections-held from threads-spawned (the whole point of
// serve/reactor.hpp) without giving up one bit of serving fidelity.
//
//   - Soak: one in-process ReactorHost holds 1024+ idle connections while
//     pipelined f32 AND q8 sessions run interleaved traffic through it —
//     and the PROCESS THREAD COUNT does not move as connections are
//     added (asserted via /proc/self/status, not inferred). Gauges
//     (connections_held / active_requests / requests_served) are asserted
//     against known traffic. The reactor runs in-process precisely so
//     these internals are directly observable.
//   - Backend parity: the poll() fallback serves the same bytes as epoll.
//   - Version pinning: an in-process DeploymentManager swap leaves an
//     already-connected session bit-matching the OLD generation while new
//     connections handshake (and bit-match) the new one; the old
//     generation retires (live_versions shrinks) once its last session
//     closes.
//   - Graceful shutdown: a forked reactor daemon receiving SIGTERM with a
//     window of requests in flight answers every one of them (no torn
//     replies), then exits 0.
//
// Bit-parity oracle: the same in-proc sequential CollaborativeSession the
// other serve suites compare against.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/deployment.hpp"
#include "serve/protocol.hpp"
#include "serve/reactor.hpp"
#include "serve/remote.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/codec.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::size_t kBodies = 3;
constexpr std::uint64_t kSeed = 4100;
constexpr std::chrono::milliseconds kRequestTimeout{120000};

/// Threads of this process right now (0 when /proc is unavailable — the
/// caller skips the assertion then).
std::size_t process_thread_count() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            return static_cast<std::size_t>(std::stoul(line.substr(8)));
        }
    }
    return 0;
}

/// Raises RLIMIT_NOFILE to at least `need` fds; returns the resulting
/// soft limit.
rlim_t ensure_fd_limit(rlim_t need) {
    rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) {
        return 0;
    }
    if (rl.rlim_cur < need) {
        rlimit want = rl;
        want.rlim_cur = rl.rlim_max == RLIM_INFINITY ? need : std::min(need, rl.rlim_max);
        (void)::setrlimit(RLIMIT_NOFILE, &want);
        (void)::getrlimit(RLIMIT_NOFILE, &rl);
    }
    return rl.rlim_cur;
}

/// In-memory whole-deployment host over the shared deterministic ensemble
/// geometry (same seed -> bit-identical bodies everywhere).
std::shared_ptr<BodyHost> make_ensemble_host(std::uint64_t seed) {
    harness::EnsembleParts parts = harness::make_linear_ensemble(seed, kBodies,
                                                                 /*num_selected=*/2);
    return std::make_shared<BodyHost>(std::move(parts.bodies));
}

/// The sequential in-proc oracle (selector {0, 2} of 3). The client half
/// (head/tail) and the body weights may come from DIFFERENT seeds: a hot
/// swap replaces only the host's bodies, so a post-swap session is client
/// seed + NEW body seed.
struct Oracle {
    harness::EnsembleParts client_parts;
    harness::EnsembleParts body_parts;
    core::Selector selector{kBodies, {0, 2}};
    split::InProcChannel uplink;
    split::InProcChannel downlink;
    std::unique_ptr<split::CollaborativeSession> session;

    Oracle(std::uint64_t client_seed, std::uint64_t body_seed, split::WireFormat wire)
        : client_parts(harness::make_linear_ensemble(client_seed, kBodies, /*num_selected=*/2)),
          body_parts(harness::make_linear_ensemble(body_seed, kBodies, /*num_selected=*/2)) {
        harness::set_eval(client_parts);
        harness::set_eval(body_parts);
        std::vector<nn::Layer*> bodies;
        for (nn::LayerPtr& body : body_parts.bodies) {
            bodies.push_back(body.get());
        }
        session = std::make_unique<split::CollaborativeSession>(
            *client_parts.head, bodies, *client_parts.tail,
            [this](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, wire);
    }
};

/// Client half for a RemoteSession against make_ensemble_host(seed).
struct ClientHalf {
    harness::EnsembleParts parts;
    core::Selector selector{kBodies, {0, 2}};

    explicit ClientHalf(std::uint64_t seed)
        : parts(harness::make_linear_ensemble(seed, kBodies, /*num_selected=*/2)) {
        harness::set_eval(parts);
    }

    // RemoteSession is deliberately pinned in place (mutex + stats
    // members), so hand sessions out behind unique_ptr.
    std::unique_ptr<RemoteSession> connect(std::uint16_t port, split::WireFormat wire,
                                           std::size_t max_inflight = kDefaultMaxInflight) {
        auto session = std::make_unique<RemoteSession>(
            split::tcp_connect("127.0.0.1", port), *parts.head, nullptr, *parts.tail,
            selector, wire, std::chrono::seconds(30), max_inflight);
        session->set_recv_timeout(kRequestTimeout);
        return session;
    }
};

/// Runs `rounds` pipelined requests through `session` and bit-compares
/// every reply against a fresh oracle: the session's client half is from
/// `client_seed`, the generation it is pinned to hosts `body_seed` bodies.
void expect_parity(RemoteSession& session, std::uint64_t client_seed, std::uint64_t body_seed,
                   split::WireFormat wire, std::size_t rounds, const char* what) {
    Oracle oracle(client_seed, body_seed, wire);
    Rng data_rng(body_seed ^ 0x5EED);
    std::vector<Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < rounds; ++r) {
        inputs.push_back(Tensor::randn(Shape{1 + static_cast<std::int64_t>(r % 3), harness::kIn},
                                       data_rng));
        futures.push_back(session.submit(inputs.back()));
    }
    for (std::size_t r = 0; r < rounds; ++r) {
        const InferenceResult result = futures[r].get();
        const Tensor expected = oracle.session->infer(inputs[r]);
        ASSERT_EQ(result.logits.shape(), expected.shape()) << what << " request " << r;
        EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
            << what << " (" << split::wire_format_name(wire) << ") request " << r;
    }
}

/// An in-process reactor with its event loop on a background thread.
/// shutdown-and-join on destruction, so an ASSERT unwind cannot leak the
/// loop.
class ReactorFixture {
public:
    explicit ReactorFixture(std::shared_ptr<DeploymentManager> manager, ReactorConfig config)
        : manager_(std::move(manager)),
          reactor_(manager_, config),
          listener_(0),
          thread_([this] { reactor_.run(listener_); }) {}

    ~ReactorFixture() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            reactor_.shutdown();
            thread_.join();
        }
    }

    std::uint16_t port() const { return listener_.port(); }
    ReactorHost& reactor() { return reactor_; }
    DeploymentManager& manager() { return *manager_; }

private:
    std::shared_ptr<DeploymentManager> manager_;
    ReactorHost reactor_;
    split::ChannelListener listener_;
    std::thread thread_;
};

/// Polls `predicate` until true or `timeout` (reactor teardown and gauge
/// updates are asynchronous to the test thread).
bool eventually(const std::function<bool()>& predicate,
                std::chrono::milliseconds timeout = std::chrono::seconds(20)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
}

TEST(ReactorSoak, Holds1024ConnectionsOnFixedThreadsWithPipelinedParity) {
    constexpr std::size_t kIdleConnections = 1024;
    if (ensure_fd_limit(kIdleConnections + 256) < kIdleConnections + 128) {
        GTEST_SKIP() << "cannot raise RLIMIT_NOFILE high enough for the soak";
    }

    auto manager = std::make_shared<DeploymentManager>(make_ensemble_host(kSeed));
    ReactorConfig config;
    config.worker_threads = 2;
    config.drain_grace = std::chrono::milliseconds(50);
    ReactorFixture fixture(std::move(manager), config);

    // Pipelined sessions FIRST (their construction spawns client-side I/O
    // workers); the thread-count snapshot below then isolates the cost of
    // adding idle connections.
    ClientHalf client(kSeed);
    auto f32_session = client.connect(fixture.port(), split::WireFormat::f32,
                                      /*max_inflight=*/4);
    auto q8_session = client.connect(fixture.port(), split::WireFormat::q8,
                                     /*max_inflight=*/4);
    EXPECT_EQ(f32_session->deployment_version(), 1u);

    // One warm-up request per session so every lazily-created thread
    // (worker pools, client receive paths) exists before the snapshot —
    // the assertion below must measure connections, not warm-up.
    Rng warmup_rng(1);
    (void)f32_session->infer(Tensor::randn(Shape{1, harness::kIn}, warmup_rng));
    (void)q8_session->infer(Tensor::randn(Shape{1, harness::kIn}, warmup_rng));

    const std::size_t threads_before = process_thread_count();

    // 1024 idle connections, each fully handshaken (so every one of them
    // is registered with the reactor, not parked in the backlog).
    std::vector<std::unique_ptr<split::TcpChannel>> idle;
    idle.reserve(kIdleConnections);
    for (std::size_t c = 0; c < kIdleConnections; ++c) {
        auto channel = split::tcp_connect("127.0.0.1", fixture.port());
        channel->set_recv_timeout(std::chrono::seconds(30));
        const HostInfo info = decode_handshake(channel->recv());
        ASSERT_EQ(info.total_bodies, kBodies) << "connection " << c;
        ASSERT_EQ(info.deployment_version, 1u) << "connection " << c;
        idle.push_back(std::move(channel));
    }

    const std::size_t threads_after = process_thread_count();
    if (threads_before != 0) {
        // THE decoupling claim: 1024 extra connections, zero extra threads
        // (client side added none — raw channels have no workers — and the
        // host side must not either).
        EXPECT_EQ(threads_after, threads_before)
            << "thread count scaled with connections — reactor is spawning per connection";
    }

    // The last client may see its handshake a beat before the reactor
    // thread bumps the gauge (send happens first in accept_ready), so the
    // count is eventually-consistent like every other gauge here.
    EXPECT_TRUE(eventually([&] {
        return fixture.reactor().gauges().connections_held >= kIdleConnections + 2;
    })) << "held=" << fixture.reactor().gauges().connections_held;
    GaugeSnapshot gauges = fixture.reactor().gauges();
    EXPECT_EQ(gauges.connections_total, gauges.connections_held);
    EXPECT_EQ(gauges.worker_threads, 2u);

    // Interleaved pipelined traffic among the idle herd, both wire
    // formats, bit-matched against the sequential oracle.
    expect_parity(*f32_session, kSeed, kSeed, split::WireFormat::f32, 12, "soak f32");
    expect_parity(*q8_session, kSeed, kSeed, split::WireFormat::q8, 12, "soak q8");

    gauges = fixture.reactor().gauges();
    EXPECT_EQ(gauges.requests_served, 26u);  // 2 warm-ups + 2 x 12 parity rounds
    EXPECT_EQ(gauges.active_requests, 0u);

    // Closing the herd drains connections_held back down (teardown is
    // event-driven too — EOF per connection, no thread ever blocked).
    idle.clear();
    EXPECT_TRUE(eventually([&] { return fixture.reactor().gauges().connections_held <= 2; }))
        << "reactor did not reap closed connections; held="
        << fixture.reactor().gauges().connections_held;

    f32_session->close();
    q8_session->close();
    fixture.stop();
    EXPECT_EQ(fixture.reactor().gauges().active_requests, 0u);
    EXPECT_EQ(fixture.reactor().gauges().connections_held, 0u);
}

TEST(ReactorSoak, PollBackendServesIdenticalBytes) {
    // Same reactor, portable poll() backend: 64 idle connections plus
    // parity traffic. Proves the fallback is a real backend, not a stub.
    auto manager = std::make_shared<DeploymentManager>(make_ensemble_host(kSeed));
    ReactorConfig config;
    config.worker_threads = 2;
    config.force_poll = true;
    config.drain_grace = std::chrono::milliseconds(50);
    ReactorFixture fixture(std::move(manager), config);

    std::vector<std::unique_ptr<split::TcpChannel>> idle;
    for (std::size_t c = 0; c < 64; ++c) {
        auto channel = split::tcp_connect("127.0.0.1", fixture.port());
        channel->set_recv_timeout(std::chrono::seconds(30));
        (void)decode_handshake(channel->recv());
        idle.push_back(std::move(channel));
    }

    ClientHalf client(kSeed);
    auto session = client.connect(fixture.port(), split::WireFormat::f32,
                                  /*max_inflight=*/4);
    expect_parity(*session, kSeed, kSeed, split::WireFormat::f32, 8, "poll backend");
    EXPECT_GE(fixture.reactor().gauges().connections_held, 65u);
    session->close();
}

TEST(ReactorSwap, SessionsPinTheirGenerationAndOldOneRetires) {
    constexpr std::uint64_t kSeedV2 = kSeed + 9000;  // different bodies, same geometry
    auto manager = std::make_shared<DeploymentManager>(make_ensemble_host(kSeed));
    ReactorConfig config;
    config.worker_threads = 2;
    config.drain_grace = std::chrono::milliseconds(50);
    ReactorFixture fixture(manager, config);

    ClientHalf client(kSeed);
    auto old_session = client.connect(fixture.port(), split::WireFormat::f32,
                                      /*max_inflight=*/4);
    ASSERT_EQ(old_session->deployment_version(), 1u);
    expect_parity(*old_session, kSeed, kSeed, split::WireFormat::f32, 4, "pre-swap");

    // Live swap: different weights, same slice. Old session keeps flowing
    // against generation 1 THROUGH the swap.
    EXPECT_EQ(manager->swap(make_ensemble_host(kSeedV2)), 2u);
    EXPECT_EQ(manager->swaps_completed(), 1u);
    EXPECT_EQ(fixture.reactor().gauges().swaps_completed, 1u);
    expect_parity(*old_session, kSeed, kSeed, split::WireFormat::f32, 4, "post-swap pinned");

    // New connections handshake (and bit-match) generation 2.
    auto new_session = client.connect(fixture.port(), split::WireFormat::f32,
                                      /*max_inflight=*/4);
    ASSERT_EQ(new_session->deployment_version(), 2u);
    expect_parity(*new_session, kSeed, kSeedV2, split::WireFormat::f32, 4, "new generation");

    // Both generations are live while the old session exists...
    EXPECT_EQ(manager->live_versions(), (std::vector<std::uint32_t>{1, 2}));

    // ...and generation 1 retires — its bodies actually freed — once its
    // last session closes. Nothing but the session pin was keeping it.
    old_session->close();
    EXPECT_TRUE(eventually(
        [&] { return manager->live_versions() == std::vector<std::uint32_t>{2}; }))
        << "old generation did not retire after its last session closed";

    expect_parity(*new_session, kSeed, kSeedV2, split::WireFormat::f32, 2, "after retirement");
    new_session->close();
}

TEST(ReactorSwap, SwapRefusesAShapeChange) {
    auto manager = std::make_shared<DeploymentManager>(make_ensemble_host(kSeed));
    // A 2-body host cannot replace a 3-body deployment: clients sized
    // their selectors against N = 3.
    harness::EnsembleParts parts = harness::make_linear_ensemble(kSeed, 2, 1);
    auto wrong_shape = std::make_shared<BodyHost>(std::move(parts.bodies));
    try {
        manager->swap(std::move(wrong_shape));
        FAIL() << "shape-changing swap was accepted";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
    }
    EXPECT_EQ(manager->version(), 1u);
    EXPECT_EQ(manager->swaps_completed(), 0u);
}

TEST(ReactorShutdown, SigtermDrainsInFlightWindowsAndExitsZero) {
    // Forked daemon: reactor + SignalSet, the exact serve_daemon layout.
    // The parent SIGTERMs it with a full request window outstanding; every
    // future must still resolve (bit-matched), and the child must exit 0
    // having drained — not died mid-frame.
    harness::ForkedDaemon daemon([](split::ChannelListener& listener) {
        SignalSet signals{SIGTERM};  // before ANY thread spawns
        auto manager = std::make_shared<DeploymentManager>(make_ensemble_host(kSeed));
        ReactorConfig config;
        config.worker_threads = 2;
        ReactorHost reactor(manager, config);
        std::thread loop([&] { reactor.run(listener); });
        (void)signals.wait();
        reactor.shutdown();
        loop.join();
        if (reactor.gauges().active_requests != 0) {
            ::_exit(3);  // drain left work behind
        }
    });
    ASSERT_GT(daemon.port(), 0);

    ClientHalf client(kSeed);
    auto session = client.connect(daemon.port(), split::WireFormat::f32,
                                  /*max_inflight=*/4);
    ASSERT_EQ(session->deployment_version(), 1u);

    Oracle oracle(kSeed, kSeed, split::WireFormat::f32);
    Rng data_rng(77);
    std::vector<Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < 4; ++r) {
        inputs.push_back(Tensor::randn(Shape{2, harness::kIn}, data_rng));
        futures.push_back(session->submit(inputs.back()));
    }
    // SIGTERM with the whole window in flight.
    ASSERT_EQ(::kill(daemon.pid(), SIGTERM), 0);

    for (std::size_t r = 0; r < futures.size(); ++r) {
        std::optional<InferenceResult> result;
        try {
            result.emplace(futures[r].get());
        } catch (const std::exception& e) {
            FAIL() << "request " << r << " torn by the shutdown: " << e.what();
        }
        const Tensor expected = oracle.session->infer(inputs[r]);
        EXPECT_EQ(result->logits.to_vector(), expected.to_vector()) << "request " << r;
    }
    session->close();
    EXPECT_EQ(daemon.wait_exit_code(), 0) << "daemon did not exit cleanly after the drain";
}

}  // namespace
}  // namespace ens::serve
