// Fork-based proof of the §III-D multiparty deployment: N = 6 bodies
// sharded 2/2/2 across three BodyHost processes, a ShardRouter in the
// parent fanning each request out over three real TCP connections, and the
// merged logits BIT-IDENTICAL to the sequential in-proc
// CollaborativeSession oracle — for lossless f32 and quantized q8 wire —
// with the secret P-of-6 selector never leaving the parent. No single
// child process ever holds more than 2 of the 6 bodies.
//
// The shard channels are handed to the router in scrambled order on
// purpose: the merge must be driven by the body ranges each shard declares
// in its handshake, not by construction order.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::size_t kBodies = 6;
constexpr std::size_t kShards = 3;
constexpr std::size_t kPerShard = kBodies / kShards;
constexpr std::size_t kSelected = 3;
constexpr std::uint64_t kSeed = 4100;
constexpr std::chrono::milliseconds kRequestTimeout{120000};

TEST(ShardRouter, ThreeShardDeploymentIsBitIdenticalToInProcOracle) {
    // Fork the three shard hosts FIRST (no tensor work in the parent yet).
    // Each child builds only its own slice of the 6 bodies and serves one
    // connection per wire format under test.
    std::vector<harness::ForkedDaemon> daemons;
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::size_t begin = s * kPerShard;
        daemons.push_back(harness::spawn_body_host(
            [begin] {
                auto host = std::make_unique<BodyHost>(
                    harness::make_shard_bodies(kSeed, kBodies, begin, kPerShard));
                host->set_shard(begin, kBodies);
                return host;
            },
            /*connections=*/2));
    }
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }

    // Selector spans all three shards, so no single shard ever holds the
    // full selection (the §III-D non-collusion argument).
    const core::Selector selector(kBodies, {0, 2, 5});

    Rng data_rng(31);
    const std::vector<Tensor> inputs = {Tensor::randn(Shape{2, harness::kIn}, data_rng),
                                        Tensor::randn(Shape{1, harness::kIn}, data_rng),
                                        Tensor::randn(Shape{3, harness::kIn}, data_rng)};

    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        // In-proc sequential oracle over the SAME deployment.
        harness::EnsembleParts oracle_parts =
            harness::make_linear_ensemble(kSeed, kBodies, kSelected);
        harness::set_eval(oracle_parts);
        std::vector<nn::Layer*> oracle_bodies;
        for (nn::LayerPtr& body : oracle_parts.bodies) {
            oracle_bodies.push_back(body.get());
        }
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(
            *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, wire);

        // Router client: private head/tail/selector, one channel per shard,
        // deliberately connected in the order 1, 0, 2.
        harness::EnsembleParts client_parts =
            harness::make_linear_ensemble(kSeed, kBodies, kSelected);
        harness::set_eval(client_parts);
        std::vector<std::unique_ptr<split::Channel>> channels;
        for (const std::size_t s : {1u, 0u, 2u}) {
            channels.push_back(split::tcp_connect("127.0.0.1", daemons[s].port()));
        }
        ShardRouter router(std::move(channels), *client_parts.head, nullptr,
                           *client_parts.tail, selector, wire);
        router.set_recv_timeout(kRequestTimeout);

        // The shard map mirrors the scrambled connection order; the body
        // index -> shard lookup resolves through it.
        ASSERT_EQ(router.shard_count(), kShards);
        ASSERT_EQ(router.body_count(), kBodies);
        EXPECT_EQ(router.shard_map()[0].body_begin, kPerShard);
        EXPECT_EQ(router.shard_map()[1].body_begin, 0u);
        EXPECT_EQ(router.shard_map()[2].body_begin, 2 * kPerShard);
        EXPECT_EQ(router.shard_of_body(0), 1u);
        EXPECT_EQ(router.shard_of_body(3), 0u);
        EXPECT_EQ(router.shard_of_body(5), 2u);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = router.infer(inputs[r]);
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            // to_vector equality is bitwise for float payloads.
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }

        // Per-shard accounting: every shard saw every request, and each
        // uplink carried the oracle's per-server byte volume (the same
        // encoded features go to each shard).
        EXPECT_EQ(router.stats().requests(), inputs.size());
        for (std::size_t s = 0; s < kShards; ++s) {
            EXPECT_EQ(router.shard_stats(s).requests(), inputs.size()) << "shard " << s;
            EXPECT_EQ(router.shard_traffic(s).messages, oracle.uplink_stats().messages)
                << "shard " << s;
            EXPECT_EQ(router.shard_traffic(s).bytes, oracle.uplink_stats().bytes)
                << "shard " << s;
        }
        router.close();  // each daemon moves on to its next connection
    }

    for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(daemons[s].wait_exit_code(), 0) << "shard daemon " << s << " did not exit cleanly";
    }
}

}  // namespace
}  // namespace ens::serve
