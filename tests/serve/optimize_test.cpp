// Optimized-boot parity: a deployment booted with the graph compiler on
// (ServeConfig::optimize / BodyHost::from_bundle(..., optimize = true))
// must serve the SAME answers as an unoptimized boot of the SAME bundle,
// pinned per wire format:
//
//   f32  tolerance-class — BN folding re-associates float products, so
//        logits may move in the last bits but stay within kF32Tolerance;
//        the test also asserts they DO move (bit-difference), proving the
//        compiled path is actually exercised rather than silently skipped.
//   q8   the downlink quantizer may flip a bucket where the folded body
//        output lands on a boundary; one bucket step through the tail
//        stays within kQ8Tolerance.
//
// Only server BODIES are ever compiled: the client half (head, split-point
// noise, tail, selector) is byte-identical in both boots, so the uplink —
// the wire an adversary observes — carries exactly the same defense.
//
// Also pinned: a graph with nothing to fold (Linear-only bodies) comes
// back BIT-exact under optimize, and an optimized service refuses
// save_bundle typed (compiled bodies have no spec representation).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "nn/compile.hpp"
#include "nn/conv2d.hpp"
#include "nn/sequential.hpp"
#include "serve/bundle.hpp"
#include "serve/service.hpp"
#include "serve_harness.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 8100;
constexpr std::chrono::milliseconds kRequestTimeout{120000};
constexpr float kF32Tolerance = 1e-4f;
constexpr float kQ8Tolerance = 5e-2f;

std::string bundle_dir_for(const std::string& name) {
    const fs::path dir = fs::path("bundle_artifacts") / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/// BN-warmed conv ensemble written as a bundle — bodies are
/// Conv -> BN -> ReLU -> GAP, so the compiler has a real fold to do.
void write_conv_bundle(const std::string& dir, std::size_t num_bodies,
                       const core::Selector& selector) {
    harness::ConvEnsembleParts parts =
        harness::make_conv_ensemble(kSeed, num_bodies, selector.p());
    harness::warm_batchnorm(parts, kSeed + 7);
    harness::set_eval(parts);

    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = parts.head.get();
    artifacts.noise = parts.noise.get();
    artifacts.tail = parts.tail.get();
    artifacts.selector = &selector;
    save_bundle(dir, artifacts);
}

std::vector<Tensor> make_inputs(std::uint64_t data_seed) {
    Rng rng(data_seed);
    return {Tensor::randn(Shape{2, 1, harness::kConvImage, harness::kConvImage}, rng),
            Tensor::randn(Shape{1, 1, harness::kConvImage, harness::kConvImage}, rng),
            Tensor::randn(Shape{3, 1, harness::kConvImage, harness::kConvImage}, rng)};
}

float wire_tolerance(split::WireFormat wire) {
    return wire == split::WireFormat::f32 ? kF32Tolerance : kQ8Tolerance;
}

void expect_near(const Tensor& a, const Tensor& b, float tolerance, const char* what) {
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(a.at(i), b.at(i), tolerance) << what << " at flat index " << i;
    }
}

TEST(OptimizedBoot, ServiceFromBundleMatchesUnoptimizedPerWireFormat) {
    const std::string dir = bundle_dir_for("optimize_service");
    const core::Selector selector(3, {0, 2});
    write_conv_bundle(dir, /*num_bodies=*/3, selector);

    ServeConfig optimized_config;
    optimized_config.optimize = true;
    const std::vector<Tensor> inputs = make_inputs(41);

    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        InferenceService plain = InferenceService::from_bundle(dir);
        InferenceService optimized = InferenceService::from_bundle(dir, optimized_config);
        auto plain_session = plain.create_session(SessionOptions{wire, {}});
        auto optimized_session = optimized.create_session(SessionOptions{wire, {}});

        bool any_bit_difference = false;
        for (const Tensor& input : inputs) {
            const Tensor expected = plain_session->infer(input).logits;
            const Tensor actual = optimized_session->infer(input).logits;
            expect_near(actual, expected, wire_tolerance(wire),
                        split::wire_format_name(wire));
            any_bit_difference |= actual.to_vector() != expected.to_vector();
        }
        if (wire == split::WireFormat::f32) {
            // BN folding re-associates floats: bit-identical logits on a
            // warmed-BN deployment would mean the compiler silently did
            // nothing and this parity test proves nothing.
            EXPECT_TRUE(any_bit_difference)
                << "optimized f32 logits are bit-identical — was the graph compiled at all?";
        }
    }
}

TEST(OptimizedBoot, OptimizedServiceRefusesSaveBundleTyped) {
    const std::string dir = bundle_dir_for("optimize_no_resave");
    const core::Selector selector(2, {0});
    write_conv_bundle(dir, /*num_bodies=*/2, selector);

    ServeConfig config;
    config.optimize = true;
    InferenceService service = InferenceService::from_bundle(dir, config);
    try {
        service.save_bundle(bundle_dir_for("optimize_no_resave_out"));
        FAIL() << "expected ens::Error{compile_error}";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::compile_error) << e.what();
    }

    // The unoptimized boot of the same bundle still exports fine.
    InferenceService plain = InferenceService::from_bundle(dir);
    EXPECT_NO_THROW(plain.save_bundle(bundle_dir_for("optimize_plain_resave")));
}

TEST(OptimizedBoot, ForkedOptimizedDaemonMatchesUnoptimizedDaemon) {
    const std::string dir = bundle_dir_for("optimize_forked");
    const core::Selector selector(3, {1, 2});
    write_conv_bundle(dir, /*num_bodies=*/3, selector);

    // Client half off disk, then the secret file goes away before either
    // daemon forks — the optimize flag changes nothing about what a body
    // host may read.
    ClientArtifacts client = load_bundle_client(dir, 3);
    ASSERT_NE(client.noise, nullptr);
    ASSERT_TRUE(fs::remove(fs::path(dir) / kClientFileName));

    constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
    harness::ForkedDaemon plain_daemon = harness::spawn_body_host(
        [dir] { return BodyHost::from_bundle(dir); }, /*connections=*/2);
    harness::ForkedDaemon optimized_daemon = harness::spawn_body_host(
        [dir] { return BodyHost::from_bundle(dir, 0, kNpos, /*optimize=*/true); },
        /*connections=*/2);
    ASSERT_GT(plain_daemon.port(), 0);
    ASSERT_GT(optimized_daemon.port(), 0);

    const std::vector<Tensor> inputs = make_inputs(42);
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        RemoteSession plain_session(split::tcp_connect("127.0.0.1", plain_daemon.port()),
                                    *client.head, client.noise.get(), *client.tail,
                                    client.selector, wire, std::chrono::seconds(30),
                                    /*max_inflight=*/4);
        RemoteSession optimized_session(
            split::tcp_connect("127.0.0.1", optimized_daemon.port()), *client.head,
            client.noise.get(), *client.tail, client.selector, wire,
            std::chrono::seconds(30), /*max_inflight=*/4);
        plain_session.set_recv_timeout(kRequestTimeout);
        optimized_session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(optimized_session.body_count(), 3u);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const Tensor expected = plain_session.infer(inputs[r]).logits;
            const Tensor actual = optimized_session.infer(inputs[r]).logits;
            expect_near(actual, expected, wire_tolerance(wire),
                        split::wire_format_name(wire));
        }
        plain_session.close();
        optimized_session.close();
    }
    EXPECT_EQ(plain_daemon.wait_exit_code(), 0);
    EXPECT_EQ(optimized_daemon.wait_exit_code(), 0);
}

TEST(OptimizedBoot, UnfoldableBundleDegradesToBitExactIdentity) {
    // Linear-only bodies: no BN to fold, no activation to fuse, no mask to
    // bake. optimize must be a no-op with BIT-identical outputs — the
    // hostile-spec degradation contract.
    harness::EnsembleParts parts = harness::make_linear_ensemble(kSeed, 2, /*num_selected=*/1);
    harness::set_eval(parts);
    const core::Selector selector(2, {1});

    const std::string dir = bundle_dir_for("optimize_identity");
    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = parts.head.get();
    artifacts.tail = parts.tail.get();
    artifacts.selector = &selector;
    save_bundle(dir, artifacts);

    ServeConfig config;
    config.optimize = true;
    InferenceService plain = InferenceService::from_bundle(dir);
    InferenceService optimized = InferenceService::from_bundle(dir, config);
    auto plain_session = plain.create_session();
    auto optimized_session = optimized.create_session();

    Rng rng(kSeed + 9);
    for (int r = 0; r < 4; ++r) {
        const Tensor input = Tensor::randn(Shape{2, harness::kIn}, rng);
        EXPECT_EQ(optimized_session->infer(input).logits.to_vector(),
                  plain_session->infer(input).logits.to_vector())
            << "identity compile must be bit-exact, request " << r;
    }
}

TEST(OptimizedBoot, BodyHostStructurallyRewritesConvBnReluBodies) {
    const std::string dir = bundle_dir_for("optimize_structure");
    const core::Selector selector(2, {0});
    write_conv_bundle(dir, /*num_bodies=*/2, selector);

    const auto plain = BodyHost::from_bundle(dir);
    const auto optimized =
        BodyHost::from_bundle(dir, 0, static_cast<std::size_t>(-1), /*optimize=*/true);

    // Unoptimized: Conv -> BN -> ReLU -> GAP. Optimized: the Conv folded
    // its BN (gaining a bias) and fused the ReLU, leaving Conv -> GAP.
    const auto& before = dynamic_cast<const nn::Sequential&>(plain->body(0));
    EXPECT_EQ(before.size(), 4u);
    const auto& after = dynamic_cast<const nn::Sequential&>(optimized->body(0));
    ASSERT_EQ(after.size(), 2u);
    const auto* conv = dynamic_cast<const nn::Conv2d*>(&after.layer(0));
    ASSERT_NE(conv, nullptr);
    EXPECT_TRUE(conv->has_bias());
    EXPECT_EQ(conv->epilogue(), nn::Epilogue::relu);
    EXPECT_TRUE(conv->weights_packed()) << "repack pass must rebuild the GEMM cache eagerly";
}

}  // namespace
}  // namespace ens::serve
