// Protocol-v3 pipelining proofs:
//   * a windowed ShardRouter (multiple requests in flight across three
//     forked shard daemons, real TCP) is BIT-IDENTICAL to the sequential
//     in-proc CollaborativeSession oracle for f32 and q8 wire — pipelining
//     reorders work, never bytes;
//   * the same tagged-frame path runs transport-agnostic over
//     split::make_inproc_duplex (no sockets, no forks) with the same
//     bit-parity, via a real BodyHost::serve on a thread;
//   * completion is genuinely OUT OF ORDER: a host that holds request A and
//     answers B first resolves B's future while A is still pending, and
//     each future carries its own request's logits (ids never cross);
//   * hostile frames fail typed: replies tagged with unknown ids, duplicate
//     (id, body) replies, and duplicate in-flight request ids at the host
//     are all ens::Error{protocol_error} — never hangs or silent merges.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/pipeline.hpp"
#include "serve/remote.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::chrono::milliseconds kRequestTimeout{120000};

std::vector<Tensor> make_inputs(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Tensor> inputs;
    inputs.reserve(count);
    for (std::size_t r = 0; r < count; ++r) {
        inputs.push_back(Tensor::randn(Shape{1 + static_cast<std::int64_t>(r % 3), harness::kIn},
                                       rng));
    }
    return inputs;
}

// ---------------------------------------------------------------- parity

TEST(Pipeline, WindowedShardRouterIsBitIdenticalToSequentialOracle) {
    constexpr std::size_t kBodies = 6;
    constexpr std::size_t kShards = 3;
    constexpr std::size_t kPerShard = kBodies / kShards;
    constexpr std::uint64_t kSeed = 6100;
    constexpr std::size_t kRequests = 6;

    // Fork the shard hosts FIRST (no tensor work in the parent yet); each
    // serves one connection per wire format under test.
    std::vector<harness::ForkedDaemon> daemons;
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::size_t begin = s * kPerShard;
        daemons.push_back(harness::spawn_body_host(
            [begin] {
                auto host = std::make_unique<BodyHost>(
                    harness::make_shard_bodies(kSeed, kBodies, begin, kPerShard));
                host->set_shard(begin, kBodies);
                return host;
            },
            /*connections=*/2));
    }
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }

    const core::Selector selector(kBodies, {0, 2, 5});
    const std::vector<Tensor> inputs = make_inputs(kRequests, 61);

    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        // Sequential in-proc oracle over the SAME deployment.
        harness::EnsembleParts oracle_parts = harness::make_linear_ensemble(kSeed, kBodies, 3);
        harness::set_eval(oracle_parts);
        std::vector<nn::Layer*> oracle_bodies;
        for (nn::LayerPtr& body : oracle_parts.bodies) {
            oracle_bodies.push_back(body.get());
        }
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(
            *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, wire);
        std::vector<Tensor> expected;
        expected.reserve(inputs.size());
        for (const Tensor& input : inputs) {
            expected.push_back(oracle.infer(input));
        }

        harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, 3);
        harness::set_eval(client_parts);
        std::vector<std::unique_ptr<split::Channel>> channels;
        for (std::size_t s = 0; s < kShards; ++s) {
            channels.push_back(split::tcp_connect("127.0.0.1", daemons[s].port()));
        }
        ShardRouter router(std::move(channels), *client_parts.head, nullptr, *client_parts.tail,
                           selector, wire, std::chrono::seconds(30), /*max_inflight=*/4);
        router.set_recv_timeout(kRequestTimeout);
        EXPECT_EQ(router.window(), 4u);  // min(client 4, host default 8)

        // Submit the WHOLE batch before collecting anything: all window
        // slots stay occupied, so requests genuinely overlap on the wire.
        std::vector<std::future<InferenceResult>> futures;
        for (const Tensor& input : inputs) {
            futures.push_back(router.submit(input));
        }
        for (std::size_t r = 0; r < futures.size(); ++r) {
            const InferenceResult result = futures[r].get();
            EXPECT_EQ(result.request_id, r + 1) << "submission order lost";
            ASSERT_EQ(result.logits.shape(), expected[r].shape());
            // to_vector equality is bitwise for float payloads.
            EXPECT_EQ(result.logits.to_vector(), expected[r].to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        EXPECT_EQ(router.stats().requests(), inputs.size());
        for (std::size_t s = 0; s < kShards; ++s) {
            EXPECT_EQ(router.shard_stats(s).requests(), inputs.size()) << "shard " << s;
            // Tags are protocol framing: per-shard billed bytes must still
            // equal the oracle's uplink exactly.
            EXPECT_EQ(router.shard_traffic(s).bytes, oracle.uplink_stats().bytes)
                << "shard " << s;
        }
        router.close();
    }
    for (std::size_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(daemons[s].wait_exit_code(), 0) << "shard daemon " << s;
    }
}

TEST(Pipeline, InProcDuplexRunsTheSamePipelinedProtocol) {
    // Transport-agnostic: the identical BodyHost::serve + RemoteSession
    // tagged-frame path over an in-proc duplex — no sockets, no forks —
    // must be bit-identical to the sequential oracle too.
    constexpr std::size_t kBodies = 3;
    constexpr std::uint64_t kSeed = 6200;
    const core::Selector selector(kBodies, {0, 2});
    const std::vector<Tensor> inputs = make_inputs(5, 62);

    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        harness::EnsembleParts oracle_parts = harness::make_linear_ensemble(kSeed, kBodies, 2);
        harness::set_eval(oracle_parts);
        std::vector<nn::Layer*> oracle_bodies;
        for (nn::LayerPtr& body : oracle_parts.bodies) {
            oracle_bodies.push_back(body.get());
        }
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(
            *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, wire);

        harness::EnsembleParts host_parts = harness::make_linear_ensemble(kSeed, kBodies, 2);
        BodyHost host(std::move(host_parts.bodies));
        auto [client_end, host_end] = split::make_inproc_duplex();
        std::thread serving([&host, end = std::move(host_end)]() mutable {
            try {
                host.serve(*end);
            } catch (...) {
                // Teardown races are the client's story.
            }
        });

        harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, 2);
        harness::set_eval(client_parts);
        RemoteSession session(std::move(client_end), *client_parts.head, nullptr,
                              *client_parts.tail, selector, wire, std::chrono::seconds(30),
                              /*max_inflight=*/4);
        session.set_recv_timeout(kRequestTimeout);

        std::vector<std::future<InferenceResult>> futures;
        for (const Tensor& input : inputs) {
            futures.push_back(session.submit(input));
        }
        for (std::size_t r = 0; r < futures.size(); ++r) {
            const Tensor expected = oracle.infer(inputs[r]);
            const InferenceResult result = futures[r].get();
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        session.close();
        serving.join();
    }
}

// ---------------------------------------------------------- out of order

/// v3 host half speaking through a raw channel: handshake, then a script.
struct ScriptedV3Host {
    static std::string handshake(std::size_t bodies, std::uint32_t max_inflight = 8) {
        HostInfo info;
        info.total_bodies = bodies;
        info.body_begin = 0;
        info.body_count = bodies;
        info.wire_mask = split::all_wire_formats_mask();
        info.max_inflight = max_inflight;
        return encode_handshake(info);
    }
};

TEST(Pipeline, CompletionIsOutOfOrderAndIdsNeverCross) {
    // A host that HOLDS request A and answers request B first: B's future
    // must resolve while A's is still pending, and each future must carry
    // its own request's feature map — the tags, not arrival order, decide.
    split::SplitModel client_model = harness::make_linear_split(77);
    client_model.set_training(false);
    split::SplitModel body_model = harness::make_linear_split(77);
    body_model.set_training(false);

    auto [client_end, host_end] = split::make_inproc_duplex();
    std::promise<void> b_seen;
    std::thread host([end = std::move(host_end), body = std::move(body_model.body),
                      &b_seen]() mutable {
        try {
            end->send(ScriptedV3Host::handshake(1));
            // Request A arrives first and is parked.
            std::string frame_a = end->recv();
            std::string frame_b = end->recv();
            const auto reply = [&](const std::string& frame) {
                std::string_view payload;
                const std::uint64_t id = parse_request_frame(frame, payload);
                const split::WireFormat wire = split::encoded_wire_format(payload);
                const Tensor features = split::decode_tensor(payload);
                unsigned char tag[kReplyTagBytes];
                encode_reply_tag(id, 0, tag);
                end->send_parts(
                    std::string_view(reinterpret_cast<const char*>(tag), sizeof(tag)),
                    split::encode_tensor(body->forward(features), wire));
            };
            reply(frame_b);  // B completes FIRST
            b_seen.get_future().wait();
            reply(frame_a);
            (void)end->recv();  // hold until the client hangs up
        } catch (...) {
        }
    });

    RemoteSession session(std::move(client_end), *client_model.head, nullptr,
                          *client_model.tail, core::Selector(1, {0}), split::WireFormat::f32,
                          std::chrono::seconds(30), /*max_inflight=*/4);
    session.set_recv_timeout(kRequestTimeout);

    Rng rng(7);
    const Tensor input_a = Tensor::randn(Shape{1, harness::kIn}, rng);
    const Tensor input_b = Tensor::randn(Shape{1, harness::kIn}, rng);
    std::future<InferenceResult> future_a = session.submit(input_a);
    std::future<InferenceResult> future_b = session.submit(input_b);

    // B resolves while A is still parked at the host.
    const InferenceResult result_b = future_b.get();
    EXPECT_EQ(future_a.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout)
        << "A completed although the host is still holding it";
    b_seen.set_value();
    const InferenceResult result_a = future_a.get();

    // Ids never cross: each result equals ITS OWN input driven through the
    // same layers sequentially.
    split::SplitModel oracle = harness::make_linear_split(77);
    oracle.set_training(false);
    const auto expect_logits = [&oracle](const Tensor& input) {
        return oracle.tail->forward(oracle.body->forward(oracle.head->forward(input)));
    };
    EXPECT_EQ(result_a.logits.to_vector(), expect_logits(input_a).to_vector());
    EXPECT_EQ(result_b.logits.to_vector(), expect_logits(input_b).to_vector());
    EXPECT_EQ(result_a.request_id, 1u);
    EXPECT_EQ(result_b.request_id, 2u);

    session.close();
    host.join();
}

// -------------------------------------------------------- hostile frames

TEST(Pipeline, UnknownReplyIdFaultsTyped) {
    split::SplitModel client_model = harness::make_linear_split(31);
    client_model.set_training(false);

    auto [client_end, host_end] = split::make_inproc_duplex();
    std::thread host([end = std::move(host_end)]() mutable {
        try {
            end->send(ScriptedV3Host::handshake(1));
            std::string frame = end->recv();
            std::string_view payload;
            const std::uint64_t id = parse_request_frame(frame, payload);
            unsigned char tag[kReplyTagBytes];
            encode_reply_tag(id + 999, 0, tag);  // no such request
            end->send_parts(std::string_view(reinterpret_cast<const char*>(tag), sizeof(tag)),
                            payload);
            (void)end->recv();
        } catch (...) {
        }
    });

    RemoteSession session(std::move(client_end), *client_model.head, nullptr,
                          *client_model.tail, core::Selector(1, {0}), split::WireFormat::f32,
                          std::chrono::seconds(30));
    session.set_recv_timeout(kRequestTimeout);
    Rng rng(5);
    std::future<InferenceResult> future = session.submit(Tensor::randn(Shape{1, harness::kIn}, rng));
    try {
        (void)future.get();
        FAIL() << "unknown reply id did not fault the request";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        EXPECT_NE(std::string(e.what()).find("unknown request id"), std::string::npos)
            << e.what();
    }
    session.close();
    host.join();
}

TEST(Pipeline, DuplicateReplyFaultsTyped) {
    // Two bodies, so the duplicate (id, body 0) frame lands while the
    // request is still pending — a strict repeat, not a stale id.
    constexpr std::size_t kBodies = 2;
    harness::EnsembleParts client_parts = harness::make_linear_ensemble(32, kBodies, 1);
    harness::set_eval(client_parts);

    auto [client_end, host_end] = split::make_inproc_duplex();
    std::thread host([end = std::move(host_end)]() mutable {
        try {
            end->send(ScriptedV3Host::handshake(kBodies));
            std::string frame = end->recv();
            std::string_view payload;
            const std::uint64_t id = parse_request_frame(frame, payload);
            unsigned char tag[kReplyTagBytes];
            encode_reply_tag(id, 0, tag);
            const std::string_view tag_view(reinterpret_cast<const char*>(tag), sizeof(tag));
            end->send_parts(tag_view, payload);
            end->send_parts(tag_view, payload);  // duplicate (id, body 0)
            (void)end->recv();
        } catch (...) {
        }
    });

    RemoteSession session(std::move(client_end), *client_parts.head, nullptr,
                          *client_parts.tail, core::Selector(kBodies, {0}),
                          split::WireFormat::f32, std::chrono::seconds(30));
    session.set_recv_timeout(kRequestTimeout);
    Rng rng(6);
    std::future<InferenceResult> future = session.submit(Tensor::randn(Shape{1, harness::kIn}, rng));
    try {
        (void)future.get();
        FAIL() << "duplicate reply did not fault the request";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        EXPECT_NE(std::string(e.what()).find("duplicate reply"), std::string::npos) << e.what();
    }
    session.close();
    host.join();
}

/// Body layer that parks the first forward until released — lets a test
/// hold one request in flight at the host deterministically.
struct GateLayer final : nn::Layer {
    nn::Layer* inner = nullptr;
    std::promise<void> entered;
    std::shared_future<void> release;
    std::atomic<bool> first{true};

    Tensor forward(const Tensor& input) override {
        if (first.exchange(false)) {
            entered.set_value();
            release.wait();
        }
        return inner->forward(input);
    }
    Tensor backward(const Tensor&) override { return Tensor{}; }
    std::string name() const override { return "Gate"; }
};

TEST(Pipeline, DuplicateInflightRequestIdIsRefusedByHost) {
    // The host side of the hostile-frame story: two concurrent requests
    // carrying the SAME id must end the connection with a typed
    // protocol_error — the reply tags would be ambiguous otherwise.
    split::SplitModel body_model = harness::make_linear_split(33);
    body_model.set_training(false);

    GateLayer gate;
    gate.inner = body_model.body.get();
    std::promise<void> release;
    gate.release = release.get_future().share();

    BodyHost host(std::vector<nn::Layer*>{&gate});
    auto [client_end, host_end] = split::make_inproc_duplex();
    std::promise<std::exception_ptr> serve_outcome;
    std::thread serving([&host, end = std::move(host_end), &serve_outcome]() mutable {
        try {
            host.serve(*end);
            serve_outcome.set_value(nullptr);
        } catch (...) {
            serve_outcome.set_value(std::current_exception());
        }
    });

    // Raw v3 client: handshake, then the same id twice.
    client_end->set_recv_timeout(std::chrono::seconds(30));
    (void)decode_handshake(client_end->recv());
    Rng rng(9);
    const std::string payload =
        split::encode_tensor(Tensor::randn(Shape{1, harness::kHidden}, rng));
    unsigned char tag[kRequestTagBytes];
    encode_request_tag(7, tag);
    const std::string_view tag_view(reinterpret_cast<const char*>(tag), sizeof(tag));
    client_end->send_parts(tag_view, payload);
    gate.entered.get_future().wait();  // request 7 is now mid-forward
    client_end->send_parts(tag_view, payload);  // duplicate in-flight id

    // The host refuses by closing the connection — observable here as
    // channel_closed on the client's next recv. Only THEN release the
    // gated worker so serve() can drain its pool and surface the error
    // (the duplicate was necessarily detected while the worker held the
    // id in flight).
    try {
        (void)client_end->recv();
        FAIL() << "host kept the connection open after a duplicate in-flight id";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed) << e.what();
    }
    release.set_value();  // un-park the gated worker
    std::exception_ptr outcome = serve_outcome.get_future().get();
    serving.join();
    ASSERT_NE(outcome, nullptr) << "host accepted a duplicate in-flight request id";
    try {
        std::rethrow_exception(outcome);
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        EXPECT_NE(std::string(e.what()).find("duplicate in-flight request id"),
                  std::string::npos)
            << e.what();
    }
}

}  // namespace
}  // namespace ens::serve
