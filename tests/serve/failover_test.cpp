// Replica failover semantics of the ShardRouter (ISSUE 9 tentpole): shard
// serving survives replica death with ZERO lost or duplicated requests.
//
//   * Chaos acceptance: SIGSTOP one of R = 2 replicas so requests are
//     genuinely pending on it, fill a depth-4 in-flight window, SIGKILL the
//     frozen replica — every future must resolve bit-exact against the
//     in-proc CollaborativeSession oracle (the failover replays retained
//     payloads onto the surviving sibling; exactly-once toward the client),
//     and the killed replica must be re-admitted by the background redialer
//     within the retry schedule once a replacement binds its old port.
//   * Scripted determinism: the same failover path driven by a
//     split::FaultChannel close_hard at an exact per-direction message
//     index over in-proc duplex channels — no sockets, no signals, the
//     identical failure point on every run — including the last-replica
//     case (future faults typed naming the replica, submission refused
//     typed until reconnect).
//   * Reconnect race: a flapper thread SIGKILLs and manually
//     reconnect_shard()s a replica in a loop while the main thread hammers
//     submit() — every future must still resolve bit-exact, never hang.
//   * Degraded boot: constructing the router while one replica endpoint is
//     DOWN must succeed (the replica enters born-failed and the background
//     redialer admits it once a daemon binds its port); only a shard with
//     no reachable replica at all refuses to boot, typed and labeled.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/retry.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/fault_channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::size_t kBodies = 4;
constexpr std::size_t kShards = 2;
constexpr std::size_t kPerShard = kBodies / kShards;
constexpr std::size_t kReplicas = 2;
constexpr std::size_t kSelected = 2;
constexpr std::uint64_t kSeed = 6100;
constexpr std::chrono::milliseconds kRequestTimeout{20000};

harness::ForkedDaemon spawn_replica(std::size_t begin, std::size_t count,
                                    std::uint16_t fixed_port = 0) {
    return harness::spawn_body_host(
        [begin, count] {
            auto host = std::make_unique<BodyHost>(
                harness::make_shard_bodies(kSeed, kBodies, begin, count));
            host->set_shard(begin, kBodies);
            return host;
        },
        /*connections=*/1, fixed_port);
}

/// Small backoffs so the background redialer's cadence, not the test's
/// patience, bounds re-admission.
RetryPolicy fast_retry() {
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.base_backoff = std::chrono::milliseconds(20);
    retry.max_backoff = std::chrono::milliseconds(100);
    retry.connect_timeout = std::chrono::milliseconds(2000);
    return retry;
}

bool wait_until(const std::function<bool()>& condition, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
        if (condition()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return condition();
}

/// Oracle outputs for `count` deterministic inputs — computed in-proc
/// BEFORE any chaos so each future's logits have a precomputed ground
/// truth regardless of completion order.
struct OracleRun {
    std::vector<Tensor> inputs;
    std::vector<std::vector<float>> expected;
};

OracleRun precompute_oracle(std::uint64_t model_seed, std::size_t bodies,
                            std::size_t selected, const core::Selector& selector,
                            std::size_t count, std::uint64_t data_seed) {
    harness::EnsembleParts parts = harness::make_linear_ensemble(model_seed, bodies, selected);
    harness::set_eval(parts);
    std::vector<nn::Layer*> oracle_bodies;
    for (nn::LayerPtr& body : parts.bodies) {
        oracle_bodies.push_back(body.get());
    }
    split::InProcChannel uplink;
    split::InProcChannel downlink;
    split::CollaborativeSession oracle(
        *parts.head, oracle_bodies, *parts.tail,
        [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
        uplink, downlink, split::WireFormat::f32);

    OracleRun run;
    Rng data_rng(data_seed);
    for (std::size_t i = 0; i < count; ++i) {
        run.inputs.push_back(Tensor::randn(Shape{2, harness::kIn}, data_rng));
        run.expected.push_back(oracle.infer(run.inputs.back()).to_vector());
    }
    return run;
}

// SIGKILL one of R = 2 replicas with a depth-4 window in flight on it: the
// acceptance chaos test. Zero lost requests (every future bit-exact), zero
// duplicates (each future resolves exactly once, and a duplicated wire
// delivery would trip the demux's typed duplicate-reply check), and the
// dead replica is re-admitted by the background redialer once a
// replacement daemon binds its old port — proven by killing the OTHER
// replica and serving through the re-admitted one alone.
TEST(Failover, KilledReplicaMidWindowFailsOverBitExactAndIsReadmitted) {
    // daemons[s * kReplicas + r] = replica r of shard s. Forked before any
    // parent-side tensor work (fixture idiom).
    std::vector<harness::ForkedDaemon> daemons;
    for (std::size_t s = 0; s < kShards; ++s) {
        for (std::size_t r = 0; r < kReplicas; ++r) {
            daemons.push_back(spawn_replica(s * kPerShard, kPerShard));
        }
    }
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }

    const core::Selector selector(kBodies, {0, 3});
    const OracleRun oracle = precompute_oracle(kSeed, kBodies, kSelected, selector,
                                               /*count=*/9, /*data_seed=*/61);

    harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, kSelected);
    harness::set_eval(client_parts);

    std::vector<std::vector<ReplicaEndpoint>> endpoints(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
        for (std::size_t r = 0; r < kReplicas; ++r) {
            endpoints[s].push_back(
                ReplicaEndpoint{"127.0.0.1", daemons[s * kReplicas + r].port()});
        }
    }
    ShardRouter router(endpoints, *client_parts.head, nullptr, *client_parts.tail, selector,
                       split::WireFormat::f32, fast_retry(), /*max_inflight=*/4);
    router.set_recv_timeout(kRequestTimeout);
    // The stuck-replica window below needs >= 2 so requests on the healthy
    // sibling keep retiring while the frozen one holds its share.
    ASSERT_GE(router.window(), 2u);
    ASSERT_EQ(router.replica_status(0).configured, kReplicas);
    ASSERT_EQ(router.replica_status(0).healthy, kReplicas);

    // Healthy baseline.
    EXPECT_EQ(router.infer(oracle.inputs[0]).logits.to_vector(), oracle.expected[0]);

    // Freeze replica 1 of shard 0 (SIGSTOP: connection open, nothing
    // answers) so the round-robin requests routed to it are genuinely
    // pending at kill time, then fill a depth-4 window and SIGKILL it.
    const std::uint16_t flapped_port = daemons[1].port();
    daemons[1].stop_now();
    std::vector<std::future<InferenceResult>> window;
    for (std::size_t i = 1; i <= 4; ++i) {
        window.push_back(router.submit(oracle.inputs[i]));
    }
    daemons[1].kill_now();

    // Zero lost requests: every future — including the ones that were in
    // flight on the killed replica — resolves bit-exact via the sibling.
    for (std::size_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(window[i - 1].get().logits.to_vector(), oracle.expected[i])
            << "request " << i << " diverged from the oracle";
    }
    EXPECT_GE(router.failovers_total(), 1u);
    EXPECT_EQ(router.stats().failovers(), router.failovers_total());
    EXPECT_GE(router.shard_stats(0).failovers(), 1u);
    // A surviving sibling means the shard is NOT desynchronized.
    EXPECT_FALSE(router.shard_needs_reconnect(0));
    EXPECT_EQ(router.replica_status(0).configured, kReplicas);
    EXPECT_EQ(router.replica_status(0).healthy, kReplicas - 1);

    // A replacement daemon reclaims the killed replica's port; the
    // background redialer must re-admit it on the retry schedule with no
    // client involvement.
    harness::ForkedDaemon replacement = spawn_replica(0, kPerShard, flapped_port);
    ASSERT_EQ(replacement.port(), flapped_port);
    ASSERT_TRUE(wait_until([&] { return router.replica_status(0).healthy == kReplicas; },
                           std::chrono::seconds(15)))
        << "background redial did not re-admit the replaced replica";
    EXPECT_GE(router.stats().retries(), 1u);
    EXPECT_GE(router.shard_stats(0).retries(), 1u);

    // The re-admitted replica genuinely serves: kill shard 0's OTHER
    // replica and route another window through — bit-parity must hold with
    // the replacement as the shard's only healthy member.
    daemons[0].kill_now();
    std::vector<std::future<InferenceResult>> after;
    for (std::size_t i = 5; i < 9; ++i) {
        after.push_back(router.submit(oracle.inputs[i]));
    }
    for (std::size_t i = 5; i < 9; ++i) {
        EXPECT_EQ(after[i - 5].get().logits.to_vector(), oracle.expected[i])
            << "request " << i << " diverged after the second kill";
    }
    EXPECT_FALSE(router.shard_needs_reconnect(0));

    router.close();
    // Shard 1's replicas and the replacement were never killed: their serve
    // loops must end cleanly when the router disconnects.
    EXPECT_EQ(daemons[2].wait_exit_code(), 0);
    EXPECT_EQ(daemons[3].wait_exit_code(), 0);
    EXPECT_EQ(replacement.wait_exit_code(), 0);
}

// The same failover path with a scripted, index-exact failure — no
// sockets, no signals, bit-identical schedule on every run. Replica 0 dies
// mid-stream on its SECOND request (client send index 1): the in-flight
// request replays on replica 1 and completes bit-exact. Replica 1 then
// dies with no sibling left: that future faults typed naming the replica,
// and further submission is refused typed until a reconnect.
TEST(Failover, ScriptedReplicaDeathReplaysInFlightAndLastReplicaFaultsTyped) {
    constexpr std::size_t kLocalBodies = 2;
    constexpr std::uint64_t kLocalSeed = 6200;
    const core::Selector selector(kLocalBodies, {1});
    const OracleRun oracle = precompute_oracle(kLocalSeed, kLocalBodies, /*selected=*/1,
                                               selector, /*count=*/6, /*data_seed=*/62);

    // Two in-proc replica hosts of the same full slice, each serving its
    // duplex end on a thread.
    auto [client_a, host_a_end] = split::make_inproc_duplex();
    auto [client_b, host_b_end] = split::make_inproc_duplex();
    const auto serve_replica = [](std::unique_ptr<split::Channel> end) {
        return std::thread([end = std::move(end)]() mutable {
            try {
                harness::EnsembleParts parts =
                    harness::make_linear_ensemble(kLocalSeed, kLocalBodies, 1);
                BodyHost host(std::move(parts.bodies));
                host.serve(*end);
            } catch (...) {
                // Stream death is the client-side story under test.
            }
        });
    };
    std::thread host_a_thread = serve_replica(std::move(host_a_end));
    std::thread host_b_thread = serve_replica(std::move(host_b_end));

    // The handshake is one host->client message; client sends are request
    // frames only, so send index == the k-th request routed through that
    // replica. Round-robin routes requests 0, 2 to replica 0 and 1, 3 to
    // replica 1 (a replay advances the cursor like any assignment).
    split::FaultAction die_a;
    die_a.kind = split::FaultAction::Kind::close_hard;
    die_a.direction = split::FaultAction::Direction::send;
    die_a.at = 1;  // request 2, with the request in flight
    split::FaultAction die_b;
    die_b.kind = split::FaultAction::Kind::close_hard;
    die_b.direction = split::FaultAction::Direction::send;
    die_b.at = 3;  // request 4 — by then replica 0 is already gone
    std::vector<std::vector<std::unique_ptr<split::Channel>>> groups;
    groups.emplace_back();
    groups.back().push_back(std::make_unique<split::FaultChannel>(
        std::move(client_a), std::vector<split::FaultAction>{die_a}));
    groups.back().push_back(std::make_unique<split::FaultChannel>(
        std::move(client_b), std::vector<split::FaultAction>{die_b}));

    harness::EnsembleParts client_parts =
        harness::make_linear_ensemble(kLocalSeed, kLocalBodies, 1);
    harness::set_eval(client_parts);
    ShardRouter router(std::move(groups), *client_parts.head, nullptr, *client_parts.tail,
                       selector, split::WireFormat::f32, fast_retry(), /*max_inflight=*/4);
    router.set_recv_timeout(kRequestTimeout);

    // Requests 0-3 all complete bit-exact: request 2's mid-stream death is
    // absorbed by a replay onto replica 1 (exactly one failover).
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(router.infer(oracle.inputs[i]).logits.to_vector(), oracle.expected[i])
            << "request " << i;
    }
    EXPECT_EQ(router.failovers_total(), 1u);
    EXPECT_EQ(router.stats().failovers(), 1u);
    EXPECT_EQ(router.shard_stats(0).failovers(), 1u);
    EXPECT_FALSE(router.shard_needs_reconnect(0));
    EXPECT_EQ(router.replica_status(0).healthy, 1u);

    // Request 4 kills the LAST replica: the future faults typed, naming the
    // replica, and the failed replay attempt is not counted as a failover.
    try {
        (void)router.infer(oracle.inputs[4]);
        FAIL() << "infer over the last dying replica did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed) << e.what();
        EXPECT_NE(std::string(e.what()).find("replica 1"), std::string::npos) << e.what();
    }
    EXPECT_EQ(router.failovers_total(), 1u);
    EXPECT_TRUE(router.shard_needs_reconnect(0));
    EXPECT_EQ(router.replica_status(0).healthy, 0u);

    // Submission is refused typed (with the reconnect hint) while no
    // replica survives — never silently wrong, never a hang.
    try {
        (void)router.infer(oracle.inputs[5]);
        FAIL() << "infer with every replica dead did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed) << e.what();
        EXPECT_NE(std::string(e.what()).find("reconnect"), std::string::npos) << e.what();
    }

    router.close();
    host_a_thread.join();
    host_b_thread.join();
}

// reconnect_shard() racing concurrent submit(): a flapper thread SIGKILLs
// the second replica and manually swaps in a replacement, three times in a
// row, while the main thread keeps a window of submissions in flight the
// whole time. With the first replica never failing, EVERY future must
// resolve bit-exact (failover absorbs each kill) and none may hang; the
// flapper's reconnects must all be accepted.
TEST(Failover, ManualReconnectRacesSubmitsWhileAReplicaFlaps) {
    harness::ForkedDaemon stable = spawn_replica(0, kBodies);
    harness::ForkedDaemon flappy = spawn_replica(0, kBodies);
    ASSERT_GT(stable.port(), 0);
    ASSERT_GT(flappy.port(), 0);

    const core::Selector selector(kBodies, {0, 3});
    const OracleRun oracle = precompute_oracle(kSeed, kBodies, kSelected, selector,
                                               /*count=*/5, /*data_seed=*/63);

    harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, kSelected);
    harness::set_eval(client_parts);
    std::vector<std::vector<std::unique_ptr<split::Channel>>> groups;
    groups.emplace_back();
    groups.back().push_back(split::tcp_connect("127.0.0.1", stable.port()));
    groups.back().push_back(split::tcp_connect("127.0.0.1", flappy.port()));
    RetryPolicy retry = fast_retry();
    retry.base_backoff = std::chrono::milliseconds(10);
    retry.max_backoff = std::chrono::milliseconds(50);
    ShardRouter router(std::move(groups), *client_parts.head, nullptr, *client_parts.tail,
                       selector, split::WireFormat::f32, retry, /*max_inflight=*/4);
    router.set_recv_timeout(kRequestTimeout);

    std::atomic<bool> flapping_done{false};
    std::string flap_error;
    std::thread flapper([&] {
        try {
            for (int cycle = 0; cycle < 3; ++cycle) {
                flappy.kill_now();
                // The demux notices the dead stream on its own (EOF), even
                // with no request in flight on it.
                if (!wait_until([&] { return router.replica_status(0).healthy == 1; },
                                std::chrono::seconds(10))) {
                    throw std::runtime_error("router never noticed the killed replica");
                }
                flappy = spawn_replica(0, kBodies);
                if (flappy.port() == 0) {
                    throw std::runtime_error("replacement daemon failed to spawn");
                }
                router.reconnect_shard(0, split::tcp_connect("127.0.0.1", flappy.port()));
                // Let some traffic ride the fresh replica before flapping
                // it again.
                std::this_thread::sleep_for(std::chrono::milliseconds(30));
            }
        } catch (const std::exception& e) {
            flap_error = e.what();
        }
        flapping_done.store(true);
    });

    // Hammer submissions for the whole flap schedule; futures are drained
    // oldest-first so the in-flight window stays full without unbounded
    // accumulation. submit() runs on this thread only (its contract).
    std::vector<std::future<InferenceResult>> futures;
    std::vector<std::size_t> which;
    std::size_t submitted = 0;
    constexpr std::size_t kSafetyValve = 4096;
    while ((!flapping_done.load() || submitted < 24) && submitted < kSafetyValve) {
        const std::size_t i = submitted % oracle.inputs.size();
        futures.push_back(router.submit(oracle.inputs[i]));
        which.push_back(i);
        ++submitted;
        if (futures.size() >= 8) {
            EXPECT_EQ(futures.front().get().logits.to_vector(), oracle.expected[which.front()])
                << "request " << (submitted - futures.size()) << " diverged mid-flap";
            futures.erase(futures.begin());
            which.erase(which.begin());
        }
    }
    flapper.join();
    EXPECT_TRUE(flap_error.empty()) << flap_error;
    for (std::size_t f = 0; f < futures.size(); ++f) {
        EXPECT_EQ(futures[f].get().logits.to_vector(), oracle.expected[which[f]])
            << "drained request " << f << " diverged";
    }

    // The last reconnect left both replicas healthy and the session
    // bit-exact.
    EXPECT_EQ(router.replica_status(0).healthy, 2u);
    EXPECT_EQ(router.infer(oracle.inputs[0]).logits.to_vector(), oracle.expected[0]);

    router.close();
    EXPECT_EQ(stable.wait_exit_code(), 0);
    EXPECT_EQ(flappy.wait_exit_code(), 0);
}

// A deployment with a crashed replica must still accept NEW clients, or
// replication buys nothing at boot time. Shard 1's FIRST endpoint is dead
// at construction (its port was reserved by a daemon killed before the
// dial), so the shard's slice must be learned from the surviving sibling;
// the router must come up degraded, serve bit-exact, and the background
// redialer must admit the born-failed replica once a daemon binds its
// port — proven by killing the sibling and serving through the newcomer
// alone. A shard with NO reachable replica still refuses to boot, typed
// and labeled with the last dial failure's address.
TEST(Failover, BootsDegradedWithDeadReplicaAndAdmitsItInBackground) {
    // Reserve a port for the dead endpoint: spawn a daemon, SIGKILL it.
    // Connects to the port are refused until the replacement rebinds it.
    harness::ForkedDaemon port_holder = spawn_replica(kPerShard, kPerShard);
    std::vector<harness::ForkedDaemon> daemons;
    daemons.push_back(spawn_replica(0, kPerShard));          // shard 0 replica 0
    daemons.push_back(spawn_replica(0, kPerShard));          // shard 0 replica 1
    daemons.push_back(spawn_replica(kPerShard, kPerShard));  // shard 1 replica 1
    ASSERT_GT(port_holder.port(), 0);
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }
    const std::uint16_t dead_port = port_holder.port();
    port_holder.kill_now();

    const core::Selector selector(kBodies, {0, 3});
    const OracleRun oracle = precompute_oracle(kSeed, kBodies, kSelected, selector,
                                               /*count=*/9, /*data_seed=*/64);
    harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, kSelected);
    harness::set_eval(client_parts);

    std::vector<std::vector<ReplicaEndpoint>> endpoints(kShards);
    endpoints[0].push_back(ReplicaEndpoint{"127.0.0.1", daemons[0].port()});
    endpoints[0].push_back(ReplicaEndpoint{"127.0.0.1", daemons[1].port()});
    endpoints[1].push_back(ReplicaEndpoint{"127.0.0.1", dead_port});
    endpoints[1].push_back(ReplicaEndpoint{"127.0.0.1", daemons[2].port()});
    ShardRouter router(endpoints, *client_parts.head, nullptr, *client_parts.tail, selector,
                       split::WireFormat::f32, fast_retry(), /*max_inflight=*/4);
    router.set_recv_timeout(kRequestTimeout);

    // Construction succeeded degraded: the dead endpoint is a configured
    // but unhealthy replica, NOT a desynchronized shard, and the slice map
    // is complete despite shard 1's replica 0 never handshaking.
    EXPECT_EQ(router.replica_status(0).healthy, kReplicas);
    EXPECT_EQ(router.replica_status(1).configured, kReplicas);
    EXPECT_EQ(router.replica_status(1).healthy, kReplicas - 1);
    EXPECT_FALSE(router.shard_needs_reconnect(1));
    ASSERT_EQ(router.shard_map().size(), kShards);
    EXPECT_EQ(router.shard_map()[1].body_begin, kPerShard);
    EXPECT_EQ(router.shard_map()[1].body_count, kPerShard);

    // Degraded but bit-exact through the survivors.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(router.infer(oracle.inputs[i]).logits.to_vector(), oracle.expected[i])
            << "degraded request " << i;
    }

    // A daemon binds the dead port: the background redialer must admit the
    // born-failed replica on the retry schedule, no client involvement.
    harness::ForkedDaemon replacement = spawn_replica(kPerShard, kPerShard, dead_port);
    ASSERT_EQ(replacement.port(), dead_port);
    ASSERT_TRUE(wait_until([&] { return router.replica_status(1).healthy == kReplicas; },
                           std::chrono::seconds(15)))
        << "background redial did not admit the born-failed replica";

    // The admitted replica genuinely serves: kill shard 1's original
    // replica and route a window through the newcomer alone.
    daemons[2].kill_now();
    std::vector<std::future<InferenceResult>> window;
    for (std::size_t i = 4; i < 9; ++i) {
        window.push_back(router.submit(oracle.inputs[i]));
    }
    for (std::size_t i = 4; i < 9; ++i) {
        EXPECT_EQ(window[i - 4].get().logits.to_vector(), oracle.expected[i])
            << "request " << i << " diverged after the sibling kill";
    }
    EXPECT_FALSE(router.shard_needs_reconnect(1));

    // Degraded boot has a floor: a shard whose EVERY replica is
    // unreachable throws the last dial error, labeled with the address.
    // daemons[2]'s port is dead again now that it was killed.
    std::vector<std::vector<ReplicaEndpoint>> all_dead(1);
    all_dead[0].push_back(ReplicaEndpoint{"127.0.0.1", daemons[2].port()});
    RetryPolicy one_shot = fast_retry();
    one_shot.max_attempts = 1;
    try {
        ShardRouter refused(all_dead, *client_parts.head, nullptr, *client_parts.tail, selector,
                            split::WireFormat::f32, one_shot, /*max_inflight=*/4);
        FAIL() << "router with an all-dead shard constructed";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::io_error) << e.what();
        EXPECT_NE(std::string(e.what()).find(std::to_string(daemons[2].port())),
                  std::string::npos)
            << e.what();
    }

    router.close();
    EXPECT_EQ(daemons[0].wait_exit_code(), 0);
    EXPECT_EQ(daemons[1].wait_exit_code(), 0);
    EXPECT_EQ(replacement.wait_exit_code(), 0);
}

}  // namespace
}  // namespace ens::serve
