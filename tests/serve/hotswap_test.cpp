// Zero-downtime live bundle hot-swap, end to end across a process
// boundary: a forked reactor daemon boots generation 1 from an on-disk
// bundle, receives SIGHUP MID-WINDOW (requests in flight), loads
// generation 2 beside it, and
//
//   - the already-connected session loses NOTHING: every request — before,
//     during and after the swap — resolves and bit-matches the generation
//     1 oracle (version pinning; the swap never touches a live session);
//   - connections opened after the swap handshake deployment_version 2 and
//     bit-match the generation 2 oracle;
//   - generation 1's bodies actually retire once its last session closes
//     (the child asserts live_versions() == {2} before exiting 0).
//
// The two bundles share the client half (head/tail/selector from the same
// seed) and differ ONLY in body weights — exactly a retrain-and-roll —
// so one client legitimately talks to both generations and any
// cross-generation bleed shows up as a bit mismatch.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve/bundle.hpp"
#include "serve/deployment.hpp"
#include "serve/protocol.hpp"
#include "serve/reactor.hpp"
#include "serve/remote.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kBodies = 3;
constexpr std::uint64_t kSeedV1 = 7100;
constexpr std::uint64_t kSeedV2 = 7200;
constexpr std::chrono::milliseconds kRequestTimeout{120000};

std::string bundle_dir_for(const std::string& name) {
    const fs::path dir = fs::path("bundle_artifacts") / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/// Writes a bundle whose BODIES come from `body_parts` but whose client
/// half (head/tail/selector) comes from `client_parts` — the
/// retrain-and-roll shape: generation 2 replaces body weights only, so
/// the deployed clients keep working.
void save_generation(const std::string& dir, harness::EnsembleParts& client_parts,
                     harness::EnsembleParts& body_parts, const core::Selector& selector) {
    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : body_parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = client_parts.head.get();
    artifacts.tail = client_parts.tail.get();
    artifacts.selector = &selector;
    save_bundle(dir, artifacts);
}

/// Sequential in-proc oracle: client half from `client_parts`, bodies from
/// `body_parts` (pass the same parts twice for generation 1).
class Oracle {
public:
    Oracle(harness::EnsembleParts& client_parts, harness::EnsembleParts& body_parts,
           const core::Selector& selector, split::WireFormat wire) {
        for (nn::LayerPtr& body : body_parts.bodies) {
            bodies_.push_back(body.get());
        }
        session_ = std::make_unique<split::CollaborativeSession>(
            *client_parts.head, bodies_, *client_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink_, downlink_, wire);
    }

    Tensor infer(const Tensor& images) { return session_->infer(images); }

private:
    std::vector<nn::Layer*> bodies_;
    split::InProcChannel uplink_;
    split::InProcChannel downlink_;
    std::unique_ptr<split::CollaborativeSession> session_;
};

/// Handshakes a throwaway probe connection and reports the deployment
/// version the host is currently advertising to NEW connections.
std::uint32_t probe_version(std::uint16_t port) {
    auto channel = split::tcp_connect("127.0.0.1", port);
    channel->set_recv_timeout(std::chrono::seconds(30));
    return decode_handshake(channel->recv()).deployment_version;
}

TEST(HotSwap, SighupMidWindowLosesNothingAndRetiresOldGeneration) {
    // Generation 1 and the retrained generation 2: same client half, same
    // geometry, different body weights.
    harness::EnsembleParts parts_v1 = harness::make_linear_ensemble(kSeedV1, kBodies,
                                                                    /*num_selected=*/2);
    harness::EnsembleParts parts_v2 = harness::make_linear_ensemble(kSeedV2, kBodies,
                                                                    /*num_selected=*/2);
    harness::set_eval(parts_v1);
    harness::set_eval(parts_v2);
    const core::Selector selector(kBodies, {0, 2});

    const std::string dir_v1 = bundle_dir_for("hotswap_v1");
    const std::string dir_v2 = bundle_dir_for("hotswap_v2");
    save_generation(dir_v1, parts_v1, parts_v1, selector);
    save_generation(dir_v2, parts_v1, parts_v2, selector);

    // The daemon: the exact serve_daemon --reactor --swap-bundle layout.
    // Exit codes: 0 clean, 3 = old generation failed to retire, 4 = the
    // swap itself failed.
    harness::ForkedDaemon daemon([dir_v1, dir_v2](split::ChannelListener& listener) {
        SignalSet signals{SIGHUP, SIGTERM};  // before ANY thread spawns
        std::shared_ptr<DeploymentManager> manager = DeploymentManager::from_bundle(dir_v1);
        ReactorConfig config;
        config.worker_threads = 2;
        config.drain_grace = std::chrono::milliseconds(100);
        ReactorHost reactor(manager, config);
        std::thread loop([&] { reactor.run(listener); });
        for (;;) {
            const int sig = signals.wait();
            if (sig == SIGHUP) {
                try {
                    manager->swap_from_bundle(dir_v2);
                } catch (const std::exception&) {
                    reactor.shutdown();
                    loop.join();
                    ::_exit(4);
                }
            } else {
                break;  // SIGTERM: drain and leave
            }
        }
        reactor.shutdown();
        loop.join();
        if (manager->live_versions() != std::vector<std::uint32_t>{2}) {
            ::_exit(3);
        }
    });
    ASSERT_GT(daemon.port(), 0);

    // Session pinned to generation 1. Its completed handshake also proves
    // the child's SignalSet is constructed — safe to signal from here on.
    RemoteSession old_session(split::tcp_connect("127.0.0.1", daemon.port()), *parts_v1.head,
                              nullptr, *parts_v1.tail, selector, split::WireFormat::f32,
                              std::chrono::seconds(30), /*max_inflight=*/4);
    old_session.set_recv_timeout(kRequestTimeout);
    ASSERT_EQ(old_session.deployment_version(), 1u);

    Oracle oracle_v1(parts_v1, parts_v1, selector, split::WireFormat::f32);
    Rng data_rng(kSeedV1 ^ 0xD00D);
    std::vector<Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;

    // Fill the window, then swap MID-WINDOW.
    for (std::size_t r = 0; r < 4; ++r) {
        inputs.push_back(Tensor::randn(Shape{2, harness::kIn}, data_rng));
        futures.push_back(old_session.submit(inputs.back()));
    }
    ASSERT_EQ(::kill(daemon.pid(), SIGHUP), 0);

    // The pinned session keeps flowing THROUGH and AFTER the swap.
    for (std::size_t r = 0; r < 8; ++r) {
        inputs.push_back(Tensor::randn(Shape{1 + static_cast<std::int64_t>(r % 3), harness::kIn},
                                       data_rng));
        futures.push_back(old_session.submit(inputs.back()));
    }

    // Zero failed requests, every reply bit-matched against generation 1 —
    // the swap is invisible to the pinned session.
    for (std::size_t r = 0; r < futures.size(); ++r) {
        InferenceResult result = futures[r].get();
        const Tensor expected = oracle_v1.infer(inputs[r]);
        EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
            << "pinned-session request " << r << " diverged across the swap";
    }

    // New connections see generation 2 (the swap loads a bundle from disk
    // in the child's signal thread — poll until it lands).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    std::uint32_t advertised = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        advertised = probe_version(daemon.port());
        if (advertised == 2) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_EQ(advertised, 2u) << "host never advertised the swapped generation";

    // ...and bit-match the generation 2 oracle (same client half, new
    // bodies), while the old session is still open.
    RemoteSession new_session(split::tcp_connect("127.0.0.1", daemon.port()), *parts_v1.head,
                              nullptr, *parts_v1.tail, selector, split::WireFormat::f32,
                              std::chrono::seconds(30), /*max_inflight=*/4);
    new_session.set_recv_timeout(kRequestTimeout);
    ASSERT_EQ(new_session.deployment_version(), 2u);

    Oracle oracle_v2(parts_v1, parts_v2, selector, split::WireFormat::f32);
    for (std::size_t r = 0; r < 6; ++r) {
        const Tensor input = Tensor::randn(Shape{2, harness::kIn}, data_rng);
        const InferenceResult result = new_session.infer(input);
        const Tensor expected = oracle_v2.infer(input);
        EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
            << "new-generation request " << r;
        // A v1 reply passed off as v2 would match the OTHER oracle; make
        // the bleed explicit rather than relying on luck.
        EXPECT_NE(expected.to_vector(), oracle_v1.infer(input).to_vector())
            << "generations are indistinguishable — test cannot detect bleed";
    }

    // Closing both sessions lets generation 1 retire; the child asserts
    // live_versions() == {2} on its way out (exit 3 otherwise).
    old_session.close();
    new_session.close();
    ASSERT_EQ(::kill(daemon.pid(), SIGTERM), 0);
    EXPECT_EQ(daemon.wait_exit_code(), 0)
        << "daemon exited dirty (3 = generation 1 never retired, 4 = swap failed)";
}

// ------------------------------------------------- optimized generations

/// Conv-bundle analogue of save_generation: bodies from `body_parts`,
/// client half (head/noise/tail/selector) from `client_parts`.
void save_conv_generation(const std::string& dir, harness::ConvEnsembleParts& client_parts,
                          harness::ConvEnsembleParts& body_parts,
                          const core::Selector& selector) {
    BundleArtifacts artifacts;
    for (nn::LayerPtr& body : body_parts.bodies) {
        artifacts.bodies.push_back(body.get());
    }
    artifacts.head = client_parts.head.get();
    artifacts.noise = client_parts.noise.get();
    artifacts.tail = client_parts.tail.get();
    artifacts.selector = &selector;
    save_bundle(dir, artifacts);
}

/// Sequential in-proc oracle over conv parts (head + noise chained into
/// the single client head a CollaborativeSession expects).
class ConvOracle {
public:
    ConvOracle(harness::ConvEnsembleParts& client_parts, harness::ConvEnsembleParts& body_parts,
               const core::Selector& selector)
        : chain_({client_parts.head.get(), client_parts.noise.get()}) {
        for (nn::LayerPtr& body : body_parts.bodies) {
            bodies_.push_back(body.get());
        }
        session_ = std::make_unique<split::CollaborativeSession>(
            chain_, bodies_, *client_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink_, downlink_, split::WireFormat::f32);
    }

    Tensor infer(const Tensor& images) { return session_->infer(images); }

private:
    harness::ChainLayer chain_;
    std::vector<nn::Layer*> bodies_;
    split::InProcChannel uplink_;
    split::InProcChannel downlink_;
    std::unique_ptr<split::CollaborativeSession> session_;
};

TEST(HotSwap, StickyOptimizeCompilesEverySwappedGeneration) {
    // A manager booted with optimize = true must graph-compile generation
    // 1 AND every generation a later swap_from_bundle loads — a hot swap
    // that silently dropped the flag would regress the serving latency
    // class without any visible failure. Conv bodies (Conv -> BN -> ReLU
    // -> GAP) give the compiler a real fold; parity vs the uncompiled
    // oracle is tolerance-class (BN folding re-associates floats).
    constexpr float kFoldTolerance = 1e-4f;
    harness::ConvEnsembleParts v1 = harness::make_conv_ensemble(kSeedV1, kBodies, 2);
    harness::ConvEnsembleParts v2 = harness::make_conv_ensemble(kSeedV2, kBodies, 2);
    harness::warm_batchnorm(v1, kSeedV1 + 7);
    harness::warm_batchnorm(v2, kSeedV2 + 7);
    harness::set_eval(v1);
    harness::set_eval(v2);
    const core::Selector selector(kBodies, {0, 2});

    const std::string dir_v1 = bundle_dir_for("hotswap_opt_v1");
    const std::string dir_v2 = bundle_dir_for("hotswap_opt_v2");
    save_conv_generation(dir_v1, v1, v1, selector);
    save_conv_generation(dir_v2, v1, v2, selector);

    std::shared_ptr<DeploymentManager> manager = DeploymentManager::from_bundle(
        dir_v1, 0, static_cast<std::size_t>(-1), /*optimize=*/true);
    // Structural proof of compilation: Conv folded its BN (gaining a
    // bias) and fused the ReLU, leaving Conv -> GAP.
    const auto expect_compiled = [](const DeploymentManager::Pinned& pinned) {
        const auto& body = dynamic_cast<const nn::Sequential&>(pinned.host->body(0));
        ASSERT_EQ(body.size(), 2u);
        const auto& conv = dynamic_cast<const nn::Conv2d&>(body.layer(0));
        EXPECT_EQ(conv.epilogue(), nn::Epilogue::relu);
        EXPECT_TRUE(conv.has_bias());
    };
    expect_compiled(manager->pin());

    ReactorConfig config;
    config.worker_threads = 2;
    config.drain_grace = std::chrono::milliseconds(50);
    ReactorHost reactor(manager, config);
    split::ChannelListener listener(0);
    std::thread loop([&] { reactor.run(listener); });

    Rng data_rng(kSeedV1 ^ 0xBEEF);
    const auto expect_parity = [&](harness::ConvEnsembleParts& body_parts, const char* what) {
        RemoteSession session(split::tcp_connect("127.0.0.1", listener.port()), *v1.head,
                              v1.noise.get(), *v1.tail, selector, split::WireFormat::f32,
                              std::chrono::seconds(30), /*max_inflight=*/2);
        session.set_recv_timeout(kRequestTimeout);
        ConvOracle oracle(v1, body_parts, selector);
        for (int r = 0; r < 3; ++r) {
            const Tensor input =
                Tensor::randn(Shape{2, 1, harness::kConvImage, harness::kConvImage}, data_rng);
            const Tensor expected = oracle.infer(input);
            const Tensor actual = session.infer(input).logits;
            ASSERT_EQ(actual.shape(), expected.shape());
            for (std::int64_t i = 0; i < actual.numel(); ++i) {
                EXPECT_NEAR(actual.at(i), expected.at(i), kFoldTolerance)
                    << what << " request " << r << " flat index " << i;
            }
        }
        session.close();
    };

    expect_parity(v1, "generation 1 (compiled at boot)");

    EXPECT_EQ(manager->swap_from_bundle(dir_v2), 2u);
    // The flag stuck: the swapped-in generation is compiled too, and its
    // answers track the generation 2 oracle.
    expect_compiled(manager->pin());
    expect_parity(v2, "generation 2 (compiled by sticky swap)");

    reactor.shutdown();
    loop.join();
}

TEST(HotSwap, SwapFromBundleRefusesACorruptBundleAndKeepsServing) {
    // A failed SIGHUP reload must leave the daemon on the OLD generation,
    // still serving — operator error cannot take the host down. In-process
    // variant (the failure path needs no fork to be real).
    harness::EnsembleParts parts = harness::make_linear_ensemble(kSeedV1, kBodies,
                                                                 /*num_selected=*/2);
    harness::set_eval(parts);
    const core::Selector selector(kBodies, {0, 2});
    const std::string dir = bundle_dir_for("hotswap_good");
    save_generation(dir, parts, parts, selector);

    const std::string broken = bundle_dir_for("hotswap_broken");  // no MANIFEST.ens

    std::shared_ptr<DeploymentManager> manager = DeploymentManager::from_bundle(dir);
    EXPECT_EQ(manager->version(), 1u);
    EXPECT_THROW(manager->swap_from_bundle(broken), Error);
    EXPECT_EQ(manager->version(), 1u) << "failed swap bumped the version";
    EXPECT_EQ(manager->swaps_completed(), 0u);
    EXPECT_EQ(manager->live_versions(), std::vector<std::uint32_t>{1});

    // The surviving generation still serves bit-exact.
    ReactorConfig config;
    config.worker_threads = 1;
    config.drain_grace = std::chrono::milliseconds(50);
    ReactorHost reactor(manager, config);
    split::ChannelListener listener(0);
    std::thread loop([&] { reactor.run(listener); });
    {
        RemoteSession session(split::tcp_connect("127.0.0.1", listener.port()), *parts.head,
                              nullptr, *parts.tail, selector, split::WireFormat::f32,
                              std::chrono::seconds(30), /*max_inflight=*/2);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.deployment_version(), 1u);
        Oracle oracle(parts, parts, selector, split::WireFormat::f32);
        Rng rng(99);
        const Tensor input = Tensor::randn(Shape{2, harness::kIn}, rng);
        EXPECT_EQ(session.infer(input).logits.to_vector(), oracle.infer(input).to_vector());
        session.close();
    }
    reactor.shutdown();
    loop.join();
}

}  // namespace
}  // namespace ens::serve
