// Negative-path protocol tests: every way a peer can speak the serve
// protocol wrongly — bad handshake magic, wrong version, a shard host where
// a whole-deployment host is required, an unsupported wire format, shards
// whose body ranges overlap / leave gaps / disagree on N, and truncated or
// corrupt feature frames — must produce a typed ens::Error{protocol_error}
// immediately: no hangs, no crashes, no unbounded allocations from
// attacker-controlled shape fields. All in-process (server threads over
// loopback TCP): these are protocol tests, not process-management tests.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "core/selector.hpp"
#include "serve/protocol.hpp"
#include "serve/remote.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/codec.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::chrono::milliseconds kShortTimeout{5000};

/// Arbitrary v4 handshake bytes (including invalid ones the public encoder
/// refuses to produce).
std::string raw_handshake(std::uint32_t magic, std::uint32_t version, std::uint32_t total,
                          std::uint32_t begin, std::uint32_t count, std::uint32_t mask,
                          std::uint32_t max_inflight = 8,
                          std::uint32_t deployment_version = 0) {
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    writer.write_u32(magic);
    writer.write_u32(version);
    writer.write_u32(total);
    writer.write_u32(begin);
    writer.write_u32(count);
    writer.write_u32(mask);
    writer.write_u32(max_inflight);
    writer.write_u32(deployment_version);
    return out.str();
}

/// What a protocol-v2 (PR 3) host put on the wire: six fields, no
/// max_inflight. Used to prove the v2 <-> v4 version mismatch fails BY
/// NAME, not as a bare length error.
std::string raw_v2_handshake(std::uint32_t total, std::uint32_t begin, std::uint32_t count,
                             std::uint32_t mask) {
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    writer.write_u32(kHandshakeMagic);
    writer.write_u32(2);  // protocol v2
    writer.write_u32(total);
    writer.write_u32(begin);
    writer.write_u32(count);
    writer.write_u32(mask);
    return out.str();
}

/// One accept + scripted interaction on a background thread. The script
/// runs until it returns or the client disconnects; every transport error
/// is swallowed (the client side is what the test asserts on).
class ScriptedHost {
public:
    explicit ScriptedHost(std::function<void(split::Channel&)> script)
        : thread_([this, script = std::move(script)] {
              try {
                  auto channel = listener_.accept();
                  script(*channel);
                  // Hold the connection until the peer hangs up so the
                  // client, not a racing close, decides when bytes stop.
                  channel->set_recv_timeout(std::chrono::seconds(30));
                  (void)channel->recv();
              } catch (...) {
              }
          }) {}

    ~ScriptedHost() {
        listener_.close();
        thread_.join();
    }

    std::uint16_t port() const { return listener_.port(); }

private:
    split::ChannelListener listener_{0};
    std::thread thread_;
};

/// Client bundle for session construction attempts.
struct ClientParts {
    split::SplitModel model;
    core::Selector selector{1, {0}};
};

ClientParts make_client() {
    ClientParts parts{harness::make_linear_split(11), core::Selector(1, {0})};
    parts.model.set_training(false);
    return parts;
}

void expect_protocol_error(const std::function<void()>& attempt, const char* what) {
    try {
        attempt();
        FAIL() << what << ": no exception";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << what << ": " << e.what();
    }
}

TEST(ServeProtocol, BadHandshakeMagicIsTypedForSessionAndRouter) {
    const std::string bad = raw_handshake(0xDEADBEEF, kProtocolVersion, 1, 0, 1,
                                          split::all_wire_formats_mask());
    ClientParts client = make_client();
    {
        ScriptedHost host([&bad](split::Channel& channel) { channel.send(bad); });
        expect_protocol_error(
            [&] {
                RemoteSession session(split::tcp_connect("127.0.0.1", host.port()),
                                      *client.model.head, nullptr, *client.model.tail,
                                      client.selector, split::WireFormat::f32, kShortTimeout);
            },
            "RemoteSession vs bad magic");
    }
    {
        ScriptedHost host([&bad](split::Channel& channel) { channel.send(bad); });
        std::vector<std::unique_ptr<split::Channel>> channels;
        channels.push_back(split::tcp_connect("127.0.0.1", host.port()));
        expect_protocol_error(
            [&] {
                ShardRouter router(std::move(channels), *client.model.head, nullptr,
                                   *client.model.tail, client.selector, split::WireFormat::f32,
                                   kShortTimeout);
            },
            "ShardRouter vs bad magic");
    }
}

TEST(ServeProtocol, VersionMismatchIsTyped) {
    const std::string stale =
        raw_handshake(kHandshakeMagic, kProtocolVersion + 7, 1, 0, 1,
                      split::all_wire_formats_mask());
    ClientParts client = make_client();
    ScriptedHost host([&stale](split::Channel& channel) { channel.send(stale); });
    expect_protocol_error(
        [&] {
            RemoteSession session(split::tcp_connect("127.0.0.1", host.port()),
                                  *client.model.head, nullptr, *client.model.tail,
                                  client.selector, split::WireFormat::f32, kShortTimeout);
        },
        "RemoteSession vs stale protocol version");
}

TEST(ServeProtocol, V2HostIsRefusedByNameNotLength) {
    // A v4 client pointed at a PR-3 (v2, lockstep) host: its 24-byte
    // handshake must decode to a typed protocol_error that NAMES the
    // version pair — there is no silent lockstep fallback, because v2
    // untagged frames and v4 tagged frames would desynchronize bytewise.
    const std::string v2 = raw_v2_handshake(1, 0, 1, split::all_wire_formats_mask());
    try {
        (void)decode_handshake(v2);
        FAIL() << "v2 handshake decoded under a v4 client";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        const std::string what = e.what();
        EXPECT_NE(what.find("host v2"), std::string::npos) << what;
        EXPECT_NE(what.find("client v4"), std::string::npos) << what;
    }

    // End-to-end: both session kinds refuse the v2 host.
    ClientParts client = make_client();
    {
        ScriptedHost host([&v2](split::Channel& channel) { channel.send(v2); });
        expect_protocol_error(
            [&] {
                RemoteSession session(split::tcp_connect("127.0.0.1", host.port()),
                                      *client.model.head, nullptr, *client.model.tail,
                                      client.selector, split::WireFormat::f32, kShortTimeout);
            },
            "RemoteSession vs v2 host");
    }
    {
        ScriptedHost host([&v2](split::Channel& channel) { channel.send(v2); });
        std::vector<std::unique_ptr<split::Channel>> channels;
        channels.push_back(split::tcp_connect("127.0.0.1", host.port()));
        expect_protocol_error(
            [&] {
                ShardRouter router(std::move(channels), *client.model.head, nullptr,
                                   *client.model.tail, client.selector, split::WireFormat::f32,
                                   kShortTimeout);
            },
            "ShardRouter vs v2 host");
    }
}

TEST(ServeProtocol, V2ClientFramesAreRefusedByV4Host) {
    // The reverse direction: a v2 lockstep client that somehow got past
    // the handshake would send UNTAGGED frames. A v4 host must refuse
    // anything too short to carry a request tag as a typed protocol_error
    // naming the lockstep suspicion — never interpret the first 8 payload
    // bytes as an id and silently desynchronize.
    std::string_view payload;
    try {
        (void)parse_request_frame(std::string_view("abc"), payload);
        FAIL() << "short untagged frame parsed as a v4 request";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        EXPECT_NE(std::string(e.what()).find("v2"), std::string::npos) << e.what();
    }
    try {
        (void)parse_reply_frame(std::string_view("short"), payload);
        FAIL() << "short untagged frame parsed as a v4 reply";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
    }

    // Handshake hardening for the new window field: zero and absurd
    // in-flight windows are corrupt peers, not configurations.
    expect_protocol_error(
        [&] {
            (void)decode_handshake(raw_handshake(kHandshakeMagic, kProtocolVersion, 1, 0, 1,
                                                 split::all_wire_formats_mask(),
                                                 /*max_inflight=*/0));
        },
        "decode_handshake vs zero window");
    expect_protocol_error(
        [&] {
            (void)decode_handshake(raw_handshake(kHandshakeMagic, kProtocolVersion, 1, 0, 1,
                                                 split::all_wire_formats_mask(),
                                                 /*max_inflight=*/1u << 30));
        },
        "decode_handshake vs absurd window");
}

TEST(ServeProtocol, DeploymentVersionRoundTripsAndV3IsRefusedByName) {
    // v4's new field: the deployment generation a connection pins. It
    // must survive the encode/decode round trip (the hot-swap fork test
    // detects swap completion through it) and default to 0 (unversioned).
    HostInfo info;
    info.total_bodies = 3;
    info.body_begin = 0;
    info.body_count = 3;
    info.wire_mask = split::all_wire_formats_mask();
    info.deployment_version = 42;
    const HostInfo decoded = decode_handshake(encode_handshake(info));
    EXPECT_EQ(decoded.deployment_version, 42u);
    info.deployment_version = 0;
    EXPECT_EQ(decode_handshake(encode_handshake(info)).deployment_version, 0u);

    // A PR-4 (v3, unpinned-pipelined) host is refused BY NAME even when
    // its message happens to be padded to the v4 length — the version
    // field is checked before the body.
    try {
        (void)decode_handshake(raw_handshake(kHandshakeMagic, 3, 1, 0, 1,
                                             split::all_wire_formats_mask()));
        FAIL() << "v3 handshake decoded under a v4 client";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        const std::string what = e.what();
        EXPECT_NE(what.find("host v3"), std::string::npos) << what;
        EXPECT_NE(what.find("client v4"), std::string::npos) << what;
    }
}

TEST(ServeProtocol, RemoteSessionRefusesShardHostAndUnsupportedWire) {
    ClientParts client = make_client();
    {
        // A shard host (bodies [0, 1) of 2) must be driven by a ShardRouter.
        HostInfo shard;
        shard.total_bodies = 2;
        shard.body_begin = 0;
        shard.body_count = 1;
        shard.wire_mask = split::all_wire_formats_mask();
        ScriptedHost host(
            [msg = encode_handshake(shard)](split::Channel& channel) { channel.send(msg); });
        expect_protocol_error(
            [&] {
                RemoteSession session(split::tcp_connect("127.0.0.1", host.port()),
                                      *client.model.head, nullptr, *client.model.tail,
                                      core::Selector(2, {0}), split::WireFormat::f32,
                                      kShortTimeout);
            },
            "RemoteSession vs shard host");
    }
    {
        // Host only speaks f32; a q8 client must fail the negotiation.
        HostInfo f32_only;
        f32_only.total_bodies = 1;
        f32_only.body_begin = 0;
        f32_only.body_count = 1;
        f32_only.wire_mask = split::wire_format_bit(split::WireFormat::f32);
        ScriptedHost host(
            [msg = encode_handshake(f32_only)](split::Channel& channel) { channel.send(msg); });
        expect_protocol_error(
            [&] {
                RemoteSession session(split::tcp_connect("127.0.0.1", host.port()),
                                      *client.model.head, nullptr, *client.model.tail,
                                      client.selector, split::WireFormat::q8, kShortTimeout);
            },
            "RemoteSession vs f32-only host");
    }
}

TEST(ServeProtocol, ShardMapOverlapGapAndTotalMismatchAreTyped) {
    harness::EnsembleParts parts = harness::make_linear_ensemble(77, 4, 2);
    harness::set_eval(parts);
    const core::Selector selector(4, {0, 3});
    const auto build_router = [&](const HostInfo& a, const HostInfo& b) {
        ScriptedHost host_a(
            [msg = encode_handshake(a)](split::Channel& channel) { channel.send(msg); });
        ScriptedHost host_b(
            [msg = encode_handshake(b)](split::Channel& channel) { channel.send(msg); });
        std::vector<std::unique_ptr<split::Channel>> channels;
        channels.push_back(split::tcp_connect("127.0.0.1", host_a.port()));
        channels.push_back(split::tcp_connect("127.0.0.1", host_b.port()));
        ShardRouter router(std::move(channels), *parts.head, nullptr, *parts.tail, selector,
                           split::WireFormat::f32, kShortTimeout);
    };
    const auto info = [](std::uint32_t total, std::uint32_t begin, std::uint32_t count) {
        HostInfo host;
        host.total_bodies = total;
        host.body_begin = begin;
        host.body_count = count;
        host.wire_mask = split::all_wire_formats_mask();
        return host;
    };
    // Overlap: [0, 3) and [2, 4) both claim body 2.
    expect_protocol_error([&] { build_router(info(4, 0, 3), info(4, 2, 2)); },
                          "ShardRouter vs overlapping slices");
    // Gap: nobody serves body 2.
    expect_protocol_error([&] { build_router(info(4, 0, 2), info(4, 3, 1)); },
                          "ShardRouter vs body-range gap");
    // Disagreement on the deployment size.
    expect_protocol_error([&] { build_router(info(4, 0, 2), info(6, 2, 4)); },
                          "ShardRouter vs total-bodies mismatch");
}

TEST(ServeProtocol, TruncatedAndCorruptFeatureFramesAreTyped) {
    // Direct codec hardening: truncation and hostile shape fields must be
    // typed refusals, never crashes or giant allocations.
    Rng rng(5);
    const Tensor tensor = Tensor::randn(Shape{2, 4}, rng);
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        const std::string good = split::encode_tensor(tensor, wire);
        const std::string truncated = good.substr(0, good.size() - 3);
        expect_protocol_error([&] { (void)split::decode_tensor(truncated); },
                              "decode_tensor vs truncated payload");
        const std::string padded = good + "xx";
        expect_protocol_error([&] { (void)split::decode_tensor(padded); },
                              "decode_tensor vs trailing garbage");
    }
    {
        // Hostile rank field: claims 2^40 dims; must refuse before allocating.
        std::ostringstream out(std::ios::binary);
        BinaryWriter writer(out);
        writer.write_u32(0x464D4150);  // "FMAP"
        writer.write_u64(std::uint64_t{1} << 40);
        expect_protocol_error([&] { (void)split::decode_tensor(out.str()); },
                              "decode_tensor vs hostile rank");
    }
    {
        // uint64-wrap attempt: shape [2^62] would wrap numel * 4 B back to
        // the tiny message size; the numel-vs-message bound must refuse it
        // before the size arithmetic (and any allocation) runs.
        std::ostringstream out(std::ios::binary);
        BinaryWriter writer(out);
        writer.write_u32(0x464D4150);
        writer.write_u64(1);
        writer.write_i64(std::int64_t{1} << 62);
        expect_protocol_error([&] { (void)split::decode_tensor(out.str()); },
                              "decode_tensor vs uint64-wrap shape");
    }
    {
        // Hostile dimension product: shape demands ~64 TB; size check must
        // reject the mismatch before the tensor is allocated.
        std::ostringstream out(std::ios::binary);
        BinaryWriter writer(out);
        writer.write_u32(0x464D4150);
        writer.write_u64(2);
        writer.write_i64(std::int64_t{1} << 22);
        writer.write_i64(std::int64_t{1} << 22);
        expect_protocol_error([&] { (void)split::decode_tensor(out.str()); },
                              "decode_tensor vs hostile dims");
    }

    // End-to-end: a host that answers a request with a truncated frame
    // fails the client's infer() typed, within the recv timeout.
    ClientParts client = make_client();
    HostInfo whole;
    whole.total_bodies = 1;
    whole.body_begin = 0;
    whole.body_count = 1;
    whole.wire_mask = split::all_wire_formats_mask();
    ScriptedHost host([msg = encode_handshake(whole)](split::Channel& channel) {
        channel.send(msg);
        const std::string request = channel.recv();
        channel.send(request.substr(0, request.size() / 2));  // truncated reply
    });
    RemoteSession session(split::tcp_connect("127.0.0.1", host.port()), *client.model.head,
                          nullptr, *client.model.tail, client.selector, split::WireFormat::f32,
                          kShortTimeout);
    session.set_recv_timeout(kShortTimeout);
    Rng data_rng(9);
    expect_protocol_error(
        [&] { (void)session.infer(Tensor::randn(Shape{1, harness::kIn}, data_rng)); },
        "infer vs truncated feature frame");
}

}  // namespace
}  // namespace ens::serve
