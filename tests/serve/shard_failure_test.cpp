// Shard-failure semantics of the ShardRouter: SIGKILL one of three shard
// hosts mid-session and the next request must surface a typed ens::Error
// (channel_closed or io_error, tagged with the shard) within the configured
// timeout — never a hang — while the surviving shards complete their round
// trips and keep their streams aligned. The session must then be fully
// usable again after reconnect_shard() to a replacement host: a replacement
// advertising the WRONG body range is rejected typed, the right one
// restores bit-parity with the in-proc oracle.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/selector.hpp"
#include "serve/shard_router.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::size_t kBodies = 6;
constexpr std::size_t kShards = 3;
constexpr std::size_t kPerShard = kBodies / kShards;
constexpr std::size_t kSelected = 2;
constexpr std::uint64_t kSeed = 5200;
constexpr std::chrono::milliseconds kRequestTimeout{20000};

harness::ForkedDaemon spawn_shard(std::size_t begin, std::size_t count) {
    return harness::spawn_body_host(
        [begin, count] {
            auto host = std::make_unique<BodyHost>(
                harness::make_shard_bodies(kSeed, kBodies, begin, count));
            host->set_shard(begin, kBodies);
            return host;
        },
        /*connections=*/1);
}

TEST(ShardFailure, KilledShardSurfacesTypedErrorAndSessionSurvivesReconnect) {
    // Fork the initial three shard hosts before any parent-side tensor work.
    std::vector<harness::ForkedDaemon> daemons;
    for (std::size_t s = 0; s < kShards; ++s) {
        daemons.push_back(spawn_shard(s * kPerShard, kPerShard));
    }
    for (const harness::ForkedDaemon& daemon : daemons) {
        ASSERT_GT(daemon.port(), 0);
    }

    const core::Selector selector(kBodies, {1, 4});

    // In-proc oracle for before/after parity.
    harness::EnsembleParts oracle_parts = harness::make_linear_ensemble(kSeed, kBodies, kSelected);
    harness::set_eval(oracle_parts);
    std::vector<nn::Layer*> oracle_bodies;
    for (nn::LayerPtr& body : oracle_parts.bodies) {
        oracle_bodies.push_back(body.get());
    }
    split::InProcChannel uplink;
    split::InProcChannel downlink;
    split::CollaborativeSession oracle(
        *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
        [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
        uplink, downlink, split::WireFormat::f32);

    harness::EnsembleParts client_parts = harness::make_linear_ensemble(kSeed, kBodies, kSelected);
    harness::set_eval(client_parts);
    std::vector<std::unique_ptr<split::Channel>> channels;
    for (std::size_t s = 0; s < kShards; ++s) {
        channels.push_back(split::tcp_connect("127.0.0.1", daemons[s].port()));
    }
    ShardRouter router(std::move(channels), *client_parts.head, nullptr, *client_parts.tail,
                       selector, split::WireFormat::f32);
    router.set_recv_timeout(kRequestTimeout);

    Rng data_rng(47);
    const Tensor input = Tensor::randn(Shape{2, harness::kIn}, data_rng);

    // Healthy baseline.
    EXPECT_EQ(router.infer(input).logits.to_vector(), oracle.infer(input).to_vector());

    // Kill the middle shard (hosting bodies [2, 4)) and request again: the
    // failure must be a typed transport error naming that shard, delivered
    // well inside the recv timeout — not a hang, not a crash.
    daemons[1].kill_now();
    const Stopwatch fail_watch;
    try {
        (void)router.infer(input);
        FAIL() << "infer over a killed shard did not throw";
    } catch (const Error& e) {
        EXPECT_TRUE(e.code() == ErrorCode::channel_closed || e.code() == ErrorCode::io_error ||
                    e.code() == ErrorCode::channel_timeout)
            << "unexpected code: " << error_code_name(e.code()) << " (" << e.what() << ")";
        EXPECT_NE(std::string(e.what()).find("shard 1"), std::string::npos) << e.what();
    }
    // channel_closed/io_error arrive at EOF speed; channel_timeout is the
    // backstop. Either way the wait is bounded by the configured timeout
    // (2x slack covers the timeout's enforcement granularity).
    EXPECT_LT(fail_watch.elapsed_ms(), 3.0 * kRequestTimeout.count());

    // The failed shard is marked desynchronized (its request/response
    // alignment is unknowable) and further inference is refused typed until
    // it is reconnected — a retry must never silently merge stale maps.
    EXPECT_TRUE(router.shard_needs_reconnect(1));
    EXPECT_FALSE(router.shard_needs_reconnect(0));
    EXPECT_FALSE(router.shard_needs_reconnect(2));
    try {
        (void)router.infer(input);
        FAIL() << "infer with a desynchronized shard did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::channel_closed) << e.what();
        EXPECT_NE(std::string(e.what()).find("reconnect"), std::string::npos) << e.what();
    }

    // A replacement host advertising the WRONG slice is refused typed and
    // does not replace the channel.
    {
        harness::ForkedDaemon wrong = spawn_shard(0, kPerShard);  // bodies [0, 2), not [2, 4)
        ASSERT_GT(wrong.port(), 0);
        try {
            router.reconnect_shard(1, split::tcp_connect("127.0.0.1", wrong.port()));
            FAIL() << "reconnect to a wrong-range host did not throw";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::protocol_error) << e.what();
        }
    }

    // The right replacement restores the session: same slice, bit-parity
    // with the oracle again, and the surviving shards' streams were never
    // desynchronized.
    harness::ForkedDaemon replacement = spawn_shard(1 * kPerShard, kPerShard);
    ASSERT_GT(replacement.port(), 0);
    router.reconnect_shard(1, split::tcp_connect("127.0.0.1", replacement.port()));
    EXPECT_FALSE(router.shard_needs_reconnect(1));
    EXPECT_EQ(router.infer(input).logits.to_vector(), oracle.infer(input).to_vector());
    EXPECT_EQ(router.infer(input).logits.to_vector(), oracle.infer(input).to_vector());

    router.close();
    EXPECT_EQ(daemons[0].wait_exit_code(), 0);
    EXPECT_EQ(daemons[2].wait_exit_code(), 0);
    EXPECT_EQ(replacement.wait_exit_code(), 0);
}

}  // namespace
}  // namespace ens::serve
