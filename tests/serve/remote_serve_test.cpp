// Fork-based end-to-end proof that remote serving over TcpChannel is
// BIT-IDENTICAL to the in-proc sequential oracle: a child process hosts
// the server bodies behind a real listener, the parent drives a
// RemoteSession across the process boundary, and every logit must match
// the CollaborativeSession round trip exactly — for lossless and
// quantized wire formats, for standard CI (N = 1) and for an N = 3
// ensemble whose secret selector never leaves the parent.
//
// Fork-safety: this file contains exactly ONE test, and it forks BEFORE
// any tensor work happens in either process. The global ThreadPool is
// created lazily on first use; forking first means parent and child each
// construct their own fresh pool, instead of the child inheriting worker
// threads that do not survive fork().

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "serve/remote.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/split_model.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::int64_t kIn = 3;
constexpr std::int64_t kHidden = 4;
constexpr std::int64_t kClasses = 2;
constexpr std::size_t kEnsembleBodies = 3;

/// Tiny linear split pipeline; same seed -> identical weights, so parent
/// and child build bit-identical halves of the deployment.
split::SplitModel make_linear_split(std::uint64_t seed) {
    Rng rng(seed);
    split::SplitModel model;
    model.head = std::make_unique<nn::Sequential>();
    model.head->emplace<nn::Linear>(kIn, kHidden, rng);
    model.body = std::make_unique<nn::Sequential>();
    model.body->emplace<nn::Linear>(kHidden, kHidden, rng);
    model.tail = std::make_unique<nn::Sequential>();
    model.tail->emplace<nn::Linear>(kHidden, kClasses, rng);
    return model;
}

/// N = 3 ensemble geometry: shared head, per-body nets, a tail sized for
/// the P = 2 selector concat. Deterministic per-part seeds.
struct EnsembleParts {
    std::unique_ptr<nn::Sequential> head;
    std::vector<nn::LayerPtr> bodies;
    std::unique_ptr<nn::Sequential> tail;
};

EnsembleParts make_ensemble(std::uint64_t seed) {
    EnsembleParts parts;
    Rng head_rng(seed);
    parts.head = std::make_unique<nn::Sequential>();
    parts.head->emplace<nn::Linear>(kIn, kHidden, head_rng);
    for (std::size_t k = 0; k < kEnsembleBodies; ++k) {
        Rng body_rng(seed + 1 + k);
        auto body = std::make_unique<nn::Sequential>();
        body->emplace<nn::Linear>(kHidden, kHidden, body_rng);
        parts.bodies.push_back(std::move(body));
    }
    Rng tail_rng(seed + 100);
    parts.tail = std::make_unique<nn::Sequential>();
    // P = 2 selected maps, concatenated.
    parts.tail->emplace<nn::Linear>(2 * kHidden, kClasses, tail_rng);
    return parts;
}

void set_eval(EnsembleParts& parts) {
    parts.head->set_training(false);
    for (nn::LayerPtr& body : parts.bodies) {
        body->set_training(false);
    }
    parts.tail->set_training(false);
}

constexpr std::uint64_t kSplitSeed = 17;
constexpr std::uint64_t kEnsembleSeed = 700;

/// Child process: host the bodies, serve exactly three connections
/// (single-body f32, single-body q8, ensemble f32), then exit. Never
/// returns; uses _exit so gtest teardown does not run twice.
[[noreturn]] void run_daemon_child(int port_write_fd) {
    int code = 0;
    try {
        split::ChannelListener listener(0);
        const std::uint16_t port = listener.port();
        if (::write(port_write_fd, &port, sizeof(port)) != sizeof(port)) {
            _exit(2);
        }
        ::close(port_write_fd);

        {
            BodyHost single = BodyHost::from_split_model(make_linear_split(kSplitSeed));
            for (int connection = 0; connection < 2; ++connection) {
                auto channel = listener.accept();
                single.serve(*channel);
            }
        }
        {
            EnsembleParts parts = make_ensemble(kEnsembleSeed);
            BodyHost ensemble(std::move(parts.bodies));
            auto channel = listener.accept();
            ensemble.serve(*channel);
        }
    } catch (...) {
        code = 1;
    }
    _exit(code);
}

// Generous per-request cap so a wedged child fails the test instead of
// hanging CI (the constructor's own handshake timeout covers connection
// setup).
constexpr std::chrono::milliseconds kRequestTimeout{120000};

TEST(RemoteServe, ForkedDaemonIsBitIdenticalToInProcOracle) {
    int port_pipe[2] = {-1, -1};
    ASSERT_EQ(::pipe(port_pipe), 0);

    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        ::close(port_pipe[0]);
        run_daemon_child(port_pipe[1]);
    }
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
              static_cast<ssize_t>(sizeof(port)));
    ::close(port_pipe[0]);
    ASSERT_GT(port, 0);

    // Shared inputs: both the oracle and the remote path see these exact
    // tensors.
    Rng data_rng(23);
    const std::vector<Tensor> inputs = {Tensor::randn(Shape{2, kIn}, data_rng),
                                        Tensor::randn(Shape{1, kIn}, data_rng),
                                        Tensor::randn(Shape{3, kIn}, data_rng)};

    // --- connections 1+2: standard CI (N = 1), lossless then quantized ---
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        split::SplitModel oracle_model = make_linear_split(kSplitSeed);
        oracle_model.set_training(false);
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(*oracle_model.head, {oracle_model.body.get()},
                                           *oracle_model.tail, split::single_body_combiner(),
                                           uplink, downlink, wire);

        split::SplitModel client_model = make_linear_split(kSplitSeed);
        client_model.set_training(false);
        RemoteSession session(split::tcp_connect("127.0.0.1", port), *client_model.head,
                              nullptr, *client_model.tail, core::Selector(1, {0}), wire);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.body_count(), 1u);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = session.infer(inputs[r]);
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            // to_vector equality is bitwise for float payloads.
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        // Uplink byte parity with the sequential oracle (each endpoint
        // bills what it sends; the downlink is billed daemon-side).
        EXPECT_EQ(session.traffic_stats().messages, oracle.uplink_stats().messages);
        EXPECT_EQ(session.traffic_stats().bytes, oracle.uplink_stats().bytes);
        EXPECT_EQ(session.stats().requests(), inputs.size());
        session.close();  // the daemon moves on to the next connection
    }

    // --- connection 3: N = 3 ensemble, secret P = 2 selector client-side ---
    {
        EnsembleParts oracle_parts = make_ensemble(kEnsembleSeed);
        set_eval(oracle_parts);
        const core::Selector selector(kEnsembleBodies, {0, 2});
        std::vector<nn::Layer*> oracle_bodies;
        for (nn::LayerPtr& body : oracle_parts.bodies) {
            oracle_bodies.push_back(body.get());
        }
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(
            *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, split::WireFormat::f32);

        EnsembleParts client_parts = make_ensemble(kEnsembleSeed);
        set_eval(client_parts);
        RemoteSession session(split::tcp_connect("127.0.0.1", port), *client_parts.head,
                              nullptr, *client_parts.tail, selector, split::WireFormat::f32);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.body_count(), kEnsembleBodies);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = session.infer(inputs[r]);
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << "ensemble request " << r;
        }
        session.close();
    }

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status)) << "daemon child did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace ens::serve
