// Fork-based end-to-end proof that remote serving over TcpChannel is
// BIT-IDENTICAL to the in-proc sequential oracle: a child process (via the
// shared serve_harness fixture) hosts the server bodies behind a real
// listener, the parent drives a RemoteSession across the process boundary,
// and every logit must match the CollaborativeSession round trip exactly —
// for lossless and quantized wire formats, for standard CI (N = 1) and for
// an N = 3 ensemble whose secret selector never leaves the parent.
//
// Fork-safety: the daemon is forked before any tensor work happens in this
// process, and the harness marks the child fork-safe (inline parallel_for)
// so inherited thread-pool state cannot deadlock it.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/selector.hpp"
#include "serve_harness.hpp"
#include "split/channel.hpp"
#include "split/session.hpp"
#include "split/split_model.hpp"
#include "split/tcp_channel.hpp"

namespace ens::serve {
namespace {

constexpr std::size_t kEnsembleBodies = 3;
constexpr std::uint64_t kSplitSeed = 17;
constexpr std::uint64_t kEnsembleSeed = 700;

// Generous per-request cap so a wedged child fails the test instead of
// hanging CI (the constructor's own handshake timeout covers connection
// setup).
constexpr std::chrono::milliseconds kRequestTimeout{120000};

TEST(RemoteServe, ForkedDaemonIsBitIdenticalToInProcOracle) {
    // Child: host the bodies, serve exactly three connections (single-body
    // f32, single-body q8, ensemble f32), then exit. All model building
    // happens post-fork, in the child.
    harness::ForkedDaemon daemon([](split::ChannelListener& listener) {
        {
            BodyHost single = BodyHost::from_split_model(harness::make_linear_split(kSplitSeed));
            for (int connection = 0; connection < 2; ++connection) {
                auto channel = listener.accept();
                single.serve(*channel);
            }
        }
        {
            harness::EnsembleParts parts =
                harness::make_linear_ensemble(kEnsembleSeed, kEnsembleBodies, /*num_selected=*/2);
            BodyHost ensemble(std::move(parts.bodies));
            auto channel = listener.accept();
            ensemble.serve(*channel);
        }
    });
    ASSERT_GT(daemon.port(), 0);

    // Shared inputs: both the oracle and the remote path see these exact
    // tensors.
    Rng data_rng(23);
    const std::vector<Tensor> inputs = {Tensor::randn(Shape{2, harness::kIn}, data_rng),
                                        Tensor::randn(Shape{1, harness::kIn}, data_rng),
                                        Tensor::randn(Shape{3, harness::kIn}, data_rng)};

    // --- connections 1+2: standard CI (N = 1), lossless then quantized ---
    for (const split::WireFormat wire : {split::WireFormat::f32, split::WireFormat::q8}) {
        split::SplitModel oracle_model = harness::make_linear_split(kSplitSeed);
        oracle_model.set_training(false);
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(*oracle_model.head, {oracle_model.body.get()},
                                           *oracle_model.tail, split::single_body_combiner(),
                                           uplink, downlink, wire);

        split::SplitModel client_model = harness::make_linear_split(kSplitSeed);
        client_model.set_training(false);
        RemoteSession session(split::tcp_connect("127.0.0.1", daemon.port()),
                              *client_model.head, nullptr, *client_model.tail,
                              core::Selector(1, {0}), wire);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.body_count(), 1u);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = session.infer(inputs[r]);
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            // to_vector equality is bitwise for float payloads.
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << split::wire_format_name(wire) << " request " << r;
        }
        // Uplink byte parity with the sequential oracle (each endpoint
        // bills what it sends; the downlink is billed daemon-side).
        EXPECT_EQ(session.traffic_stats().messages, oracle.uplink_stats().messages);
        EXPECT_EQ(session.traffic_stats().bytes, oracle.uplink_stats().bytes);
        EXPECT_EQ(session.stats().requests(), inputs.size());
        session.close();  // the daemon moves on to the next connection
    }

    // --- connection 3: N = 3 ensemble, secret P = 2 selector client-side ---
    {
        harness::EnsembleParts oracle_parts =
            harness::make_linear_ensemble(kEnsembleSeed, kEnsembleBodies, /*num_selected=*/2);
        harness::set_eval(oracle_parts);
        const core::Selector selector(kEnsembleBodies, {0, 2});
        std::vector<nn::Layer*> oracle_bodies;
        for (nn::LayerPtr& body : oracle_parts.bodies) {
            oracle_bodies.push_back(body.get());
        }
        split::InProcChannel uplink;
        split::InProcChannel downlink;
        split::CollaborativeSession oracle(
            *oracle_parts.head, oracle_bodies, *oracle_parts.tail,
            [&selector](const std::vector<Tensor>& features) { return selector.apply(features); },
            uplink, downlink, split::WireFormat::f32);

        harness::EnsembleParts client_parts =
            harness::make_linear_ensemble(kEnsembleSeed, kEnsembleBodies, /*num_selected=*/2);
        harness::set_eval(client_parts);
        RemoteSession session(split::tcp_connect("127.0.0.1", daemon.port()),
                              *client_parts.head, nullptr, *client_parts.tail, selector,
                              split::WireFormat::f32);
        session.set_recv_timeout(kRequestTimeout);
        ASSERT_EQ(session.body_count(), kEnsembleBodies);

        for (std::size_t r = 0; r < inputs.size(); ++r) {
            const InferenceResult result = session.infer(inputs[r]);
            const Tensor expected = oracle.infer(inputs[r]);
            ASSERT_EQ(result.logits.shape(), expected.shape());
            EXPECT_EQ(result.logits.to_vector(), expected.to_vector())
                << "ensemble request " << r;
        }
        session.close();
    }

    EXPECT_EQ(daemon.wait_exit_code(), 0) << "daemon child did not exit cleanly";
}

}  // namespace
}  // namespace ens::serve
