#include "common/serialize.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(Serialize, RoundTripScalars) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    writer.write_u8(0xAB);
    writer.write_u32(0xDEADBEEF);
    writer.write_u64(0x0123456789ABCDEFULL);
    writer.write_i64(-42);
    writer.write_f32(3.25f);
    writer.write_f64(-2.5);

    BinaryReader reader(stream);
    EXPECT_EQ(reader.read_u8(), 0xAB);
    EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(reader.read_i64(), -42);
    EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
    EXPECT_DOUBLE_EQ(reader.read_f64(), -2.5);
}

TEST(Serialize, RoundTripStrings) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    writer.write_string("");
    writer.write_string("hello world");
    writer.write_string(std::string("\0\x01\x02", 3));

    BinaryReader reader(stream);
    EXPECT_EQ(reader.read_string(), "");
    EXPECT_EQ(reader.read_string(), "hello world");
    EXPECT_EQ(reader.read_string(), std::string("\0\x01\x02", 3));
}

TEST(Serialize, RoundTripArrays) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    const std::vector<float> values{1.0f, -2.0f, 0.5f, 1e-8f};
    writer.write_f32_array(values.data(), values.size());
    writer.write_i64_vector({3, -1, 1 << 20});

    BinaryReader reader(stream);
    std::vector<float> restored(values.size());
    reader.read_f32_array(restored.data(), restored.size());
    EXPECT_EQ(restored, values);
    EXPECT_EQ(reader.read_i64_vector(), (std::vector<std::int64_t>{3, -1, 1 << 20}));
}

TEST(Serialize, BytesWrittenAccounting) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    writer.write_u32(1);
    writer.write_f64(2.0);
    EXPECT_EQ(writer.bytes_written(), 12u);
}

TEST(Serialize, TruncatedReadThrows) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    writer.write_u32(7);
    BinaryReader reader(stream);
    EXPECT_EQ(reader.read_u32(), 7u);
    EXPECT_THROW(reader.read_u64(), std::runtime_error);
}

TEST(Serialize, ArrayLengthMismatchThrows) {
    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    BinaryWriter writer(stream);
    const std::vector<float> values{1.0f, 2.0f};
    writer.write_f32_array(values.data(), values.size());
    BinaryReader reader(stream);
    std::vector<float> restored(3);
    EXPECT_THROW(reader.read_f32_array(restored.data(), 3), std::runtime_error);
}

}  // namespace
}  // namespace ens
