#include "common/threadpool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(ThreadPool, RequiresAtLeastOneWorker) {
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            hits[i].fetch_add(1);
        }
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
    ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRange) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(7, 8, [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(lo, 7u);
        EXPECT_EQ(hi, 8u);
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [&](std::size_t lo, std::size_t) {
                                       if (lo == 0) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, SumMatchesSerial) {
    ThreadPool pool(2);
    const std::size_t n = 100000;
    std::atomic<long long> total{0};
    pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            local += static_cast<long long>(i);
        }
        total.fetch_add(local);
    });
    EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.parallel_for(0, 50, [&](std::size_t lo, std::size_t hi) {
            count.fetch_add(static_cast<int>(hi - lo));
        });
        EXPECT_EQ(count.load(), 50);
    }
}

TEST(ThreadPool, GlobalPoolWorks) {
    std::atomic<int> count{0};
    parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 10);
    EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace ens
