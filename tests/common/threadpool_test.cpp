#include "common/threadpool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(ThreadPool, RequiresAtLeastOneWorker) {
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            hits[i].fetch_add(1);
        }
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
    ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRange) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(7, 8, [&](std::size_t lo, std::size_t hi) {
        EXPECT_EQ(lo, 7u);
        EXPECT_EQ(hi, 8u);
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [&](std::size_t lo, std::size_t) {
                                       if (lo == 0) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(ThreadPool, SumMatchesSerial) {
    ThreadPool pool(2);
    const std::size_t n = 100000;
    std::atomic<long long> total{0};
    pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            local += static_cast<long long>(i);
        }
        total.fetch_add(local);
    });
    EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        pool.parallel_for(0, 50, [&](std::size_t lo, std::size_t hi) {
            count.fetch_add(static_cast<int>(hi - lo));
        });
        EXPECT_EQ(count.load(), 50);
    }
}

// Nested parallel_for from a pool worker (serve body fan-out -> matmul
// parallel_for) must run inline instead of blocking the worker on chunks
// only it could drain — on a size-1 pool that block is a guaranteed
// deadlock, so this test completing at all is the assertion.
TEST(ThreadPool, NestedParallelForFromWorkerRunsInline) {
    ThreadPool pool(1);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    std::atomic<int> inner_total{0};
    std::atomic<int> on_worker_nested{0};
    pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            if (ThreadPool::on_worker_thread()) {
                ++on_worker_nested;
            }
            pool.parallel_for(0, 8, [&](std::size_t l2, std::size_t h2) {
                inner_total.fetch_add(static_cast<int>(h2 - l2));
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 4 * 8);
    // The pool worker ran at least one outer chunk and detected itself.
    EXPECT_GE(on_worker_nested.load(), 1);
    EXPECT_FALSE(ThreadPool::on_worker_thread());
}

// Nesting onto a DIFFERENT pool must still split (its workers are free to
// drain the chunks), so a dedicated fan-out pool doesn't serialize the
// global-pool kernels running inside its tasks.
TEST(ThreadPool, CrossPoolNestingStillParallelizes) {
    ThreadPool outer(1);
    ThreadPool inner(1);
    std::atomic<int> inner_total{0};
    outer.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            inner.parallel_for(0, 8, [&](std::size_t l2, std::size_t h2) {
                inner_total.fetch_add(static_cast<int>(h2 - l2));
            });
        }
    });
    EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPool, GlobalPoolWorks) {
    std::atomic<int> count{0};
    parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 10);
    EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace ens
