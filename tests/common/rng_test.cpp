#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ens {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformRejectsBadBounds) {
    Rng rng(7);
    EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
    Rng rng(11);
    const int n = 50000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaling) {
    Rng rng(13);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        sum += rng.normal(5.0, 0.5);
    }
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NextBelowCoversAllResidues) {
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next_below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRejectsZero) {
    Rng rng(17);
    EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, RandintInclusiveBounds) {
    Rng rng(19);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.randint(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate) {
    Rng rng(29);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(31);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    const Rng parent(101);
    Rng child_a = parent.fork(3);
    Rng child_a2 = parent.fork(3);
    Rng child_b = parent.fork(4);
    EXPECT_EQ(child_a.next_u64(), child_a2.next_u64());
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += child_a.next_u64() == child_b.next_u64() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkNamedDistinguishesLabels) {
    const Rng parent(101);
    Rng a = parent.fork_named("stage1");
    Rng b = parent.fork_named("stage2");
    Rng a2 = parent.fork_named("stage1");
    EXPECT_EQ(a.next_u64(), a2.next_u64());
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, RandomPermutationCoversRange) {
    Rng rng(37);
    const auto perm = random_permutation(20, rng);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 20u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 19u);
}

class RngRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeSweep, NextBelowStaysInRange) {
    Rng rng(GetParam() * 7919 + 1);
    const std::uint64_t n = GetParam();
    for (int i = 0; i < 500; ++i) {
        EXPECT_LT(rng.next_below(n), n);
    }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 1u << 20));

}  // namespace
}  // namespace ens
