#include "common/args.hpp"

#include <gtest/gtest.h>

namespace ens {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
    std::vector<const char*> v(argv);
    return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(Args, SubcommandAndFlags) {
    const ArgParser args = parse({"prog", "train", "--n", "6", "--sigma", "0.25"});
    EXPECT_EQ(args.command(), "train");
    EXPECT_EQ(args.get_int("n", 0), 6);
    EXPECT_DOUBLE_EQ(args.get_double("sigma", 0.0), 0.25);
}

TEST(Args, MissingFlagsFallBack) {
    const ArgParser args = parse({"prog", "train"});
    EXPECT_EQ(args.get_int("n", 10), 10);
    EXPECT_EQ(args.get_string("save", "none"), "none");
    EXPECT_FALSE(args.has("adaptive"));
}

TEST(Args, BooleanSwitches) {
    const ArgParser args = parse({"prog", "attack", "--adaptive", "--n", "4"});
    EXPECT_TRUE(args.has("adaptive"));
    EXPECT_EQ(args.get_int("n", 0), 4);
}

TEST(Args, TrailingSwitch) {
    const ArgParser args = parse({"prog", "attack", "--bruteforce"});
    EXPECT_TRUE(args.has("bruteforce"));
}

TEST(Args, NoSubcommand) {
    const ArgParser args = parse({"prog", "--n", "3"});
    EXPECT_TRUE(args.command().empty());
    EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Args, RejectsMalformedNumbers) {
    const ArgParser args = parse({"prog", "train", "--epochs", "banana"});
    EXPECT_THROW(args.get_int("epochs", 1), std::invalid_argument);
}

TEST(Args, RejectsBareDashes) {
    EXPECT_THROW(parse({"prog", "train", "-n", "3"}), std::invalid_argument);
}

TEST(Args, UnconsumedTracksTypos) {
    const ArgParser args = parse({"prog", "train", "--n", "6", "--epochz", "3"});
    (void)args.get_int("n", 0);
    const auto unknown = args.unconsumed();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "epochz");
}

TEST(Args, NegativeNumbersAreValuesNotFlags) {
    // "--offset -3" cannot be expressed (leading '-' reads as a flag); the
    // parser treats the flag as a switch instead — documented behaviour.
    const ArgParser args = parse({"prog", "cmd", "--offset", "--n", "5"});
    EXPECT_TRUE(args.has("offset"));
    EXPECT_EQ(args.get_int("n", 0), 5);
}

}  // namespace
}  // namespace ens
