#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.hpp"
#include "common/logging.hpp"

namespace ens {
namespace {

TEST(Env, FallbackWhenUnset) {
    ::unsetenv("ENS_TEST_VAR");
    EXPECT_EQ(env_string("ENS_TEST_VAR", "dflt"), "dflt");
    EXPECT_EQ(env_size("ENS_TEST_VAR", 9), 9u);
    EXPECT_DOUBLE_EQ(env_double("ENS_TEST_VAR", 1.5), 1.5);
}

TEST(Env, ParsesValues) {
    ::setenv("ENS_TEST_VAR", "42", 1);
    EXPECT_EQ(env_string("ENS_TEST_VAR", "d"), "42");
    EXPECT_EQ(env_size("ENS_TEST_VAR", 0), 42u);
    EXPECT_DOUBLE_EQ(env_double("ENS_TEST_VAR", 0.0), 42.0);
    ::unsetenv("ENS_TEST_VAR");
}

TEST(Env, MalformedFallsBack) {
    ::setenv("ENS_TEST_VAR", "12abc", 1);
    EXPECT_EQ(env_size("ENS_TEST_VAR", 5), 5u);
    EXPECT_DOUBLE_EQ(env_double("ENS_TEST_VAR", 2.0), 2.0);
    ::unsetenv("ENS_TEST_VAR");
}

TEST(Logging, ParseLevels) {
    EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
    EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
    EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
    EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
    EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Logging, SetAndGetLevel) {
    const LogLevel before = log_level();
    set_log_level(LogLevel::kError);
    EXPECT_EQ(log_level(), LogLevel::kError);
    ENS_LOG_INFO << "this must be suppressed";
    set_log_level(before);
}

}  // namespace
}  // namespace ens
