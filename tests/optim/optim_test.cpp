#include <cmath>

#include <gtest/gtest.h>

#include "optim/adam.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "tensor/ops.hpp"

namespace ens::optim {
namespace {

/// Minimizes f(w) = 0.5 * ||w - target||^2 with the given optimizer.
template <typename MakeOptimizer>
float minimize_quadratic(MakeOptimizer make, int steps) {
    nn::Parameter w("w", Tensor::from_vector(Shape{3}, {5.0f, -4.0f, 2.0f}));
    const Tensor target = Tensor::from_vector(Shape{3}, {1.0f, 1.0f, 1.0f});
    auto optimizer = make(std::vector<nn::Parameter*>{&w});
    for (int i = 0; i < steps; ++i) {
        optimizer->zero_grad();
        Tensor grad = sub(w.value, target);
        w.grad.copy_from(grad);
        optimizer->step();
    }
    return squared_norm(sub(w.value, target));
}

TEST(Sgd, ConvergesOnQuadratic) {
    const float err = minimize_quadratic(
        [](std::vector<nn::Parameter*> params) {
            SgdOptions options;
            options.learning_rate = 0.1;
            options.momentum = 0.0;
            return std::make_unique<Sgd>(std::move(params), options);
        },
        200);
    EXPECT_LT(err, 1e-6f);
}

TEST(Sgd, MomentumConvergesFasterThanPlain) {
    const auto run = [](double momentum) {
        return minimize_quadratic(
            [momentum](std::vector<nn::Parameter*> params) {
                SgdOptions options;
                options.learning_rate = 0.02;
                options.momentum = momentum;
                return std::make_unique<Sgd>(std::move(params), options);
            },
            60);
    };
    EXPECT_LT(run(0.9), run(0.0));
}

TEST(Sgd, WeightDecayShrinksWeights) {
    nn::Parameter w("w", Tensor::from_vector(Shape{1}, {10.0f}));
    SgdOptions options;
    options.learning_rate = 0.1;
    options.momentum = 0.0;
    options.weight_decay = 0.5;
    Sgd optimizer({&w}, options);
    for (int i = 0; i < 50; ++i) {
        optimizer.zero_grad();  // zero task gradient: only decay acts
        optimizer.step();
    }
    EXPECT_LT(std::fabs(w.value.at(0)), 1.0f);
}

TEST(Sgd, FrozenParametersDoNotMove) {
    nn::Parameter w("w", Tensor::from_vector(Shape{2}, {1.0f, 2.0f}));
    w.requires_grad = false;
    SgdOptions options;
    options.learning_rate = 1.0;
    Sgd optimizer({&w}, options);
    w.grad.fill(1.0f);
    optimizer.step();
    EXPECT_FLOAT_EQ(w.value.at(0), 1.0f);
    EXPECT_FLOAT_EQ(w.value.at(1), 2.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
    const float err = minimize_quadratic(
        [](std::vector<nn::Parameter*> params) {
            AdamOptions options;
            options.learning_rate = 0.1;
            return std::make_unique<Adam>(std::move(params), options);
        },
        300);
    EXPECT_LT(err, 1e-4f);
}

TEST(Adam, HandlesSparseScaleDifferences) {
    // One huge-gradient coordinate, one tiny: Adam normalizes per-coord.
    nn::Parameter w("w", Tensor::from_vector(Shape{2}, {1.0f, 1.0f}));
    AdamOptions options;
    options.learning_rate = 0.05;
    Adam optimizer({&w}, options);
    for (int i = 0; i < 100; ++i) {
        optimizer.zero_grad();
        w.grad.at(0) = 1000.0f * w.value.at(0);
        w.grad.at(1) = 0.001f * w.value.at(1);
        optimizer.step();
    }
    EXPECT_LT(std::fabs(w.value.at(0)), 0.05f);
    EXPECT_LT(std::fabs(w.value.at(1)), 1.0f);  // moves, slower
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
    nn::Parameter w("w", Tensor::zeros(Shape{4}));
    w.grad.fill(3.0f);  // norm = 6
    const double before = clip_grad_norm({&w}, 1.0);
    EXPECT_NEAR(before, 6.0, 1e-5);
    EXPECT_NEAR(std::sqrt(squared_norm(w.grad)), 1.0, 1e-4);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
    nn::Parameter w("w", Tensor::zeros(Shape{4}));
    w.grad.fill(0.1f);
    clip_grad_norm({&w}, 10.0);
    EXPECT_FLOAT_EQ(w.grad.at(0), 0.1f);
}

TEST(StepDecay, HalvesOnSchedule) {
    nn::Parameter w("w", Tensor::zeros(Shape{1}));
    SgdOptions options;
    options.learning_rate = 1.0;
    Sgd optimizer({&w}, options);
    StepDecay schedule(optimizer, 1.0, 2, 0.5);
    EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 1.0);
    schedule.step_epoch();  // epoch 1
    EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 1.0);
    schedule.step_epoch();  // epoch 2
    EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 0.5);
    schedule.step_epoch();
    schedule.step_epoch();  // epoch 4
    EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 0.25);
}

TEST(CosineAnnealing, DecaysToMinimum) {
    nn::Parameter w("w", Tensor::zeros(Shape{1}));
    SgdOptions options;
    Sgd optimizer({&w}, options);
    CosineAnnealing schedule(optimizer, 1.0, 10, 0.1);
    EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 1.0);
    double previous = 1.0;
    for (int i = 0; i < 10; ++i) {
        schedule.step_epoch();
        EXPECT_LE(optimizer.learning_rate(), previous + 1e-12);
        previous = optimizer.learning_rate();
    }
    EXPECT_NEAR(optimizer.learning_rate(), 0.1, 1e-9);
}

}  // namespace
}  // namespace ens::optim
