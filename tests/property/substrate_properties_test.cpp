// Property-based tests of the numerical substrate: algebraic identities
// that must hold for arbitrary shapes/seeds, swept with TEST_P. These
// complement the example-based unit tests — a kernel change that keeps a
// few hand-picked cases working but breaks linearity/adjointness gets
// caught here.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

namespace ens {
namespace {

using SeededShape = std::tuple<int, int, int>;  // seed, rows, cols

class MatrixSweep : public ::testing::TestWithParam<SeededShape> {
protected:
    Rng rng_{static_cast<std::uint64_t>(std::get<0>(GetParam()))};
    std::int64_t rows_ = std::get<1>(GetParam());
    std::int64_t cols_ = std::get<2>(GetParam());
};

TEST_P(MatrixSweep, SoftmaxIsShiftInvariant) {
    const Tensor logits = Tensor::randn(Shape{rows_, cols_}, rng_);
    Tensor shifted = logits.clone();
    shifted.add_scalar_(13.5f);
    const Tensor p1 = softmax_rows(logits);
    const Tensor p2 = softmax_rows(shifted);
    for (std::int64_t i = 0; i < p1.numel(); ++i) {
        EXPECT_NEAR(p1.at(i), p2.at(i), 1e-5f);
    }
}

TEST_P(MatrixSweep, TransposeIsInvolution) {
    const Tensor m = Tensor::randn(Shape{rows_, cols_}, rng_);
    const Tensor back = transpose(transpose(m));
    EXPECT_EQ(back.to_vector(), m.to_vector());
}

TEST_P(MatrixSweep, GemmIdentity) {
    const Tensor m = Tensor::randn(Shape{rows_, cols_}, rng_);
    Tensor identity(Shape{cols_, cols_});
    for (std::int64_t i = 0; i < cols_; ++i) {
        identity.at(i, i) = 1.0f;
    }
    const Tensor out = matmul(m, identity);
    for (std::int64_t i = 0; i < m.numel(); ++i) {
        EXPECT_NEAR(out.at(i), m.at(i), 1e-5f);
    }
}

TEST_P(MatrixSweep, GemmDistributesOverAddition) {
    const Tensor a = Tensor::randn(Shape{rows_, cols_}, rng_);
    const Tensor b1 = Tensor::randn(Shape{cols_, rows_}, rng_);
    const Tensor b2 = Tensor::randn(Shape{cols_, rows_}, rng_);
    const Tensor lhs = matmul(a, add(b1, b2));
    const Tensor rhs = add(matmul(a, b1), matmul(a, b2));
    for (std::int64_t i = 0; i < lhs.numel(); ++i) {
        EXPECT_NEAR(lhs.at(i), rhs.at(i), 2e-4f * (1.0f + std::fabs(rhs.at(i))));
    }
}

TEST_P(MatrixSweep, TransposeMatchesTransFlag) {
    const Tensor a = Tensor::randn(Shape{rows_, cols_}, rng_);
    const Tensor b = Tensor::randn(Shape{rows_, cols_}, rng_);
    // a^T b via flag == transpose(a) @ b
    Tensor via_flag(Shape{cols_, cols_});
    gemm(a, true, b, false, via_flag);
    const Tensor via_transpose = matmul(transpose(a), b);
    for (std::int64_t i = 0; i < via_flag.numel(); ++i) {
        EXPECT_NEAR(via_flag.at(i), via_transpose.at(i), 1e-4f);
    }
}

TEST_P(MatrixSweep, ConcatSplitIsIdentity) {
    const Tensor a = Tensor::randn(Shape{rows_, cols_}, rng_);
    const Tensor b = Tensor::randn(Shape{rows_, cols_ + 1}, rng_);
    const auto parts = split_cols(concat_cols({a, b}), {cols_, cols_ + 1});
    EXPECT_EQ(parts[0].to_vector(), a.to_vector());
    EXPECT_EQ(parts[1].to_vector(), b.to_vector());
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixSweep,
                         ::testing::Values(SeededShape{1, 1, 1}, SeededShape{2, 3, 5},
                                           SeededShape{3, 8, 8}, SeededShape{4, 16, 4},
                                           SeededShape{5, 5, 33}, SeededShape{6, 32, 32}));

using ConvCase = std::tuple<int, int, int, int>;  // seed, channels, size, stride

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ConvolutionIsLinearInInput) {
    const auto [seed, channels, size, stride] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    nn::Conv2d conv(channels, channels + 1, 3, stride, 1, rng);
    const Shape in_shape{2, channels, size, size};
    const Tensor x1 = Tensor::randn(in_shape, rng);
    const Tensor x2 = Tensor::randn(in_shape, rng);

    const Tensor y_sum = conv.forward(add(x1, x2));
    const Tensor y1 = conv.forward(x1);
    const Tensor y2 = conv.forward(x2);
    for (std::int64_t i = 0; i < y_sum.numel(); ++i) {
        EXPECT_NEAR(y_sum.at(i), y1.at(i) + y2.at(i), 1e-4f * (1.0f + std::fabs(y_sum.at(i))));
    }
}

TEST_P(ConvSweep, ConvolutionIsHomogeneous) {
    const auto [seed, channels, size, stride] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) + 100);
    nn::Conv2d conv(channels, channels, 3, stride, 1, rng);
    const Tensor x = Tensor::randn(Shape{1, channels, size, size}, rng);
    const Tensor y_scaled = conv.forward(scale(x, 2.5f));
    const Tensor y = conv.forward(x);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_NEAR(y_scaled.at(i), 2.5f * y.at(i), 1e-4f * (1.0f + std::fabs(y.at(i))));
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvSweep,
                         ::testing::Values(ConvCase{1, 1, 6, 1}, ConvCase{2, 3, 8, 1},
                                           ConvCase{3, 2, 8, 2}, ConvCase{4, 4, 5, 1}));

TEST(BatchNormProperty, OutputInvariantToInputAffineRescale) {
    // BN(a*x + b) == BN(x) in training mode (per-channel affine inputs are
    // normalized away).
    Rng rng(7);
    nn::BatchNorm2d bn(3);
    bn.set_training(true);
    const Tensor x = Tensor::randn(Shape{4, 3, 5, 5}, rng);
    Tensor rescaled = x.clone();
    rescaled.scale_(3.0f);
    rescaled.add_scalar_(-1.25f);
    const Tensor y1 = bn.forward(x);
    const Tensor y2 = bn.forward(rescaled);
    for (std::int64_t i = 0; i < y1.numel(); ++i) {
        EXPECT_NEAR(y1.at(i), y2.at(i), 2e-3f);
    }
}

TEST(PoolingProperty, MaxPoolCommutesWithMonotoneScale) {
    // max-pool(c * x) == c * max-pool(x) for c > 0.
    Rng rng(8);
    nn::MaxPool2d pool(2);
    const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);
    const Tensor lhs = pool.forward(scale(x, 4.0f));
    nn::MaxPool2d pool2(2);
    const Tensor rhs = scale(pool2.forward(x), 4.0f);
    EXPECT_EQ(lhs.to_vector(), rhs.to_vector());
}

TEST(PoolingProperty, GlobalAvgPoolPreservesMass) {
    Rng rng(9);
    nn::GlobalAvgPool gap;
    const Tensor x = Tensor::randn(Shape{3, 4, 6, 6}, rng);
    const Tensor y = gap.forward(x);
    EXPECT_NEAR(sum(y) * 36.0f, sum(x), 1e-2f);
}

TEST(ActivationProperty, ReluIsIdempotent) {
    Rng rng(10);
    nn::ReLU relu1;
    nn::ReLU relu2;
    const Tensor x = Tensor::randn(Shape{2, 20}, rng);
    const Tensor once = relu1.forward(x);
    const Tensor twice = relu2.forward(once);
    EXPECT_EQ(once.to_vector(), twice.to_vector());
}

TEST(LinearProperty, ZeroWeightGivesBiasRows) {
    Rng rng(11);
    nn::Linear linear(7, 3, rng);
    linear.weight().value.fill(0.0f);
    linear.bias().value.at(0) = 1.0f;
    linear.bias().value.at(1) = -2.0f;
    linear.bias().value.at(2) = 0.5f;
    const Tensor y = linear.forward(Tensor::randn(Shape{4, 7}, rng));
    for (std::int64_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(y.at(i, 0), 1.0f);
        EXPECT_FLOAT_EQ(y.at(i, 1), -2.0f);
        EXPECT_FLOAT_EQ(y.at(i, 2), 0.5f);
    }
}

}  // namespace
}  // namespace ens
