// Privacy-mechanism invariants: cheap structural checks of the properties
// the paper's security argument rests on. No training — these tests verify
// the *mechanisms*, not learned behavior.

#include <set>

#include <gtest/gtest.h>

#include "core/client_state.hpp"
#include "core/selector.hpp"
#include "data/synth_cifar10.hpp"
#include "metrics/similarity.hpp"
#include "nn/dropout.hpp"
#include "nn/noise.hpp"
#include "split/split_model.hpp"
#include "tensor/ops.hpp"

namespace ens {
namespace {

TEST(SelectorSecrecy, SubsetSpaceIsLargeEnoughToDeterBruteForce) {
    // §III-D: expected MIA cost is O(2^N). For the paper's N = 10 the
    // subset count (excluding empty) is 1023; with unknown P the attacker
    // cannot even fix the search stratum.
    std::size_t subsets = 0;
    for (std::size_t p = 1; p <= 10; ++p) {
        // C(10, p)
        std::size_t c = 1;
        for (std::size_t i = 0; i < p; ++i) {
            c = c * (10 - i) / (i + 1);
        }
        subsets += c;
    }
    EXPECT_EQ(subsets, 1023u);
}

TEST(SelectorSecrecy, RandomSelectionsAreUniformish) {
    // Every index should appear with frequency ~P/N across many draws —
    // no index is systematically preferred (which would help an attacker).
    Rng rng(123);
    std::vector<int> counts(10, 0);
    const int draws = 2000;
    for (int d = 0; d < draws; ++d) {
        const core::Selector s = core::Selector::random(10, 4, rng);
        for (const std::size_t i : s.indices()) {
            counts[i]++;
        }
    }
    for (const int count : counts) {
        EXPECT_NEAR(static_cast<double>(count) / draws, 0.4, 0.05);
    }
}

TEST(NoiseMask, DistinctStreamsGiveQuasiOrthogonalMasks) {
    // Stage 1 relies on "randomly initialized noises are quasi-orthogonal
    // to each other" (§III-C). Check pairwise cosine similarity of masks
    // drawn from forked streams.
    Rng root(77);
    std::vector<Tensor> masks;
    for (std::uint64_t i = 0; i < 10; ++i) {
        Rng stream = root.fork(i);
        masks.push_back(Tensor::randn(Shape{8, 16, 16}, stream, 0.0f, 0.1f));
    }
    for (std::size_t a = 0; a < masks.size(); ++a) {
        for (std::size_t b = a + 1; b < masks.size(); ++b) {
            EXPECT_LT(std::abs(metrics::cosine_similarity(masks[a], masks[b])), 0.1f)
                << "masks " << a << " and " << b;
        }
    }
}

TEST(NoiseMask, PerturbsEveryTransmission) {
    Rng rng(5);
    nn::FixedNoise noise(Shape{4, 8, 8}, 0.1f, rng);
    const Tensor z = Tensor::zeros(Shape{2, 4, 8, 8});
    const Tensor wire = noise.forward(z);
    // The wire signal is never the raw features.
    EXPECT_GT(squared_norm(wire), 0.0f);
    // But it is deterministic (fixed mask), unlike dropout.
    EXPECT_EQ(noise.forward(z).to_vector(), wire.to_vector());
}

TEST(DropoutDefense, IsNondeterministicOnTheWire) {
    nn::Dropout dropout(0.4f, Rng(9), /*active_in_eval=*/true);
    dropout.set_training(false);
    Rng rng(6);
    const Tensor z = Tensor::uniform(Shape{1, 4, 8, 8}, rng, 0.5f, 1.5f);
    const Tensor w1 = dropout.forward(z);
    const Tensor w2 = dropout.forward(z);
    EXPECT_NE(w1.to_vector(), w2.to_vector());
}

TEST(SplitGeometry, HeadOutputIsWhatTheServerSees) {
    // The transmitted tensor must carry NO spatial downsampling beyond the
    // documented head geometry — a silent geometry change would alter the
    // privacy surface (more resolution = easier inversion).
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    Rng rng(8);
    split::SplitModel parts = split::build_split_resnet18(arch, rng);
    parts.set_training(false);
    const Tensor z = parts.head->forward(Tensor::zeros(Shape{1, 3, 16, 16}));
    EXPECT_EQ(z.shape(), Shape({1, 4, 8, 8}));

    arch.include_maxpool = false;
    Rng rng2(8);
    split::SplitModel parts2 = split::build_split_resnet18(arch, rng2);
    parts2.set_training(false);
    EXPECT_EQ(parts2.head->forward(Tensor::zeros(Shape{1, 3, 16, 16})).shape(),
              Shape({1, 4, 16, 16}));
}

struct ClientStateFixture : public ::testing::Test {
    data::SynthCifar10 train_set{96, 41, 16};
    nn::ResNetConfig arch;
    core::EnsemblerConfig config;

    void SetUp() override {
        arch.base_width = 4;
        arch.image_size = 16;
        arch.num_classes = 10;
        config.num_networks = 2;
        config.num_selected = 1;
        config.stage1_options.epochs = 1;
        config.stage3_options.epochs = 1;
        config.seed = 314;
    }
};

TEST_F(ClientStateFixture, RoundTripRestoresExactPipeline) {
    core::Ensembler source(arch, config);
    source.fit(train_set);

    const std::string path = ::testing::TempDir() + "/ens_client_state.bin";
    core::save_client_state_file(source, path);

    // A second ensembler with the same stage-1/2/3 structure but different
    // stage-3 outcome (different seed for selection via explicit override).
    core::EnsemblerConfig other = config;
    other.seed = 999;  // different head init + selection
    core::Ensembler restored(arch, other);
    restored.run_stage1(train_set);
    restored.run_stage2();
    restored.run_stage3(train_set);

    // Note: the bodies differ (different stage-1 seed), so predictions
    // cannot match across objects; restore into a *matching* member set:
    core::Ensembler same(arch, config);
    same.run_stage1(train_set);
    same.run_stage2({1});  // wrong secret on purpose
    same.run_stage3(train_set);

    core::load_client_state_file(same, path);

    EXPECT_EQ(same.selector().indices(), source.selector().indices());
    const data::Batch batch = data::materialize(train_set, 0, 4);
    const Tensor a = source.predict(batch.images);
    const Tensor b = same.predict(batch.images);
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(a.at(i), b.at(i), 1e-5f);
    }
    std::remove(path.c_str());
}

TEST_F(ClientStateFixture, RejectsMismatchedConfiguration) {
    core::Ensembler source(arch, config);
    source.fit(train_set);
    const std::string path = ::testing::TempDir() + "/ens_client_state_bad.bin";
    core::save_client_state_file(source, path);

    core::EnsemblerConfig wrong = config;
    wrong.num_networks = 3;
    core::Ensembler target(arch, wrong);
    target.fit(train_set);
    EXPECT_THROW(core::load_client_state_file(target, path), std::invalid_argument);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace ens
