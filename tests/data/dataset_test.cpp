#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "data/canvas.hpp"
#include "data/dataloader.hpp"
#include "data/synth_cifar10.hpp"
#include "data/synth_cifar100.hpp"
#include "data/synth_faces.hpp"
#include "metrics/psnr.hpp"
#include "tensor/ops.hpp"

namespace ens::data {
namespace {

TEST(Canvas, HsvPrimaries) {
    const Rgb red = hsv_to_rgb(0.0f, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(red.r, 1.0f);
    EXPECT_FLOAT_EQ(red.g, 0.0f);
    const Rgb green = hsv_to_rgb(1.0f / 3.0f, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(green.g, 1.0f);
    const Rgb blue = hsv_to_rgb(2.0f / 3.0f, 1.0f, 1.0f);
    EXPECT_FLOAT_EQ(blue.b, 1.0f);
    const Rgb gray = hsv_to_rgb(0.5f, 0.0f, 0.5f);
    EXPECT_FLOAT_EQ(gray.r, gray.g);
    EXPECT_FLOAT_EQ(gray.g, gray.b);
}

TEST(Canvas, FillAndDisc) {
    Canvas canvas(16, 16);
    canvas.fill({0.0f, 0.0f, 0.0f});
    canvas.draw_disc(8.0f, 8.0f, 4.0f, {1.0f, 0.0f, 0.0f});
    const Tensor img = canvas.tensor();
    EXPECT_FLOAT_EQ(img.at(0 * 256 + 8 * 16 + 8), 1.0f);  // center red
    EXPECT_FLOAT_EQ(img.at(0 * 256 + 0), 0.0f);           // corner untouched
}

TEST(Canvas, NoiseStaysInRange) {
    Canvas canvas(8, 8);
    canvas.fill({0.5f, 0.5f, 0.5f});
    Rng rng(1);
    canvas.add_noise(0.5f, rng);
    const Tensor img = canvas.tensor();
    EXPECT_GE(min_value(img), 0.0f);
    EXPECT_LE(max_value(img), 1.0f);
}

template <typename DatasetT>
void check_dataset_basics(const DatasetT& dataset, std::int64_t classes, std::int64_t size_px) {
    EXPECT_EQ(dataset.num_classes(), classes);
    EXPECT_EQ(dataset.channels(), 3);
    EXPECT_EQ(dataset.height(), size_px);
    EXPECT_EQ(dataset.width(), size_px);
    const Example e = dataset.get(0);
    EXPECT_EQ(e.image.shape(), Shape({3, size_px, size_px}));
    EXPECT_GE(min_value(e.image), 0.0f);
    EXPECT_LE(max_value(e.image), 1.0f);
}

TEST(SynthCifar10, BasicsAndDeterminism) {
    const SynthCifar10 dataset(100, 42, 16);
    check_dataset_basics(dataset, 10, 16);
    const Example a = dataset.get(7);
    const Example b = dataset.get(7);
    EXPECT_EQ(a.image.to_vector(), b.image.to_vector());
    EXPECT_EQ(a.label, b.label);

    const SynthCifar10 other_seed(100, 43, 16);
    EXPECT_NE(other_seed.get(7).image.to_vector(), a.image.to_vector());
}

TEST(SynthCifar10, LabelsAreBalancedAndCyclic) {
    const SynthCifar10 dataset(50, 1, 16);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(dataset.get(i).label, static_cast<std::int64_t>(i % 10));
    }
}

TEST(SynthCifar10, SamplesOfSameClassDiffer) {
    const SynthCifar10 dataset(100, 5, 16);
    const Example a = dataset.get(0);
    const Example b = dataset.get(10);  // same class, different sample
    EXPECT_EQ(a.label, b.label);
    EXPECT_LT(metrics::psnr(a.image, b.image), 30.0f);  // genuinely different images
}

TEST(SynthCifar100, BasicsAndClassStructure) {
    const SynthCifar100 dataset(200, 9, 16);
    check_dataset_basics(dataset, 100, 16);
    EXPECT_EQ(dataset.get(123).label, 23);
}

TEST(SynthFaces, BasicsAndIdentities) {
    const SynthFaces dataset(60, 11, 32, 6);
    check_dataset_basics(dataset, 6, 32);
    for (std::size_t i = 0; i < 60; ++i) {
        EXPECT_LT(dataset.get(i).label, 6);
    }
}

TEST(SynthFaces, SameIdentityDifferentJitter) {
    const SynthFaces dataset(40, 11, 32, 4);
    const Example a = dataset.get(0);
    const Example b = dataset.get(4);  // same identity
    EXPECT_EQ(a.label, b.label);
    EXPECT_NE(a.image.to_vector(), b.image.to_vector());
}

TEST(Subset, RemapsIndices) {
    auto base = std::make_shared<SynthCifar10>(20, 3, 16);
    const Subset subset(base, {5, 10, 15});
    EXPECT_EQ(subset.size(), 3u);
    EXPECT_EQ(subset.get(1).label, base->get(10).label);
    EXPECT_EQ(subset.get(1).image.to_vector(), base->get(10).image.to_vector());
    EXPECT_THROW(subset.get(3), std::invalid_argument);
    EXPECT_THROW(Subset(base, {25}), std::invalid_argument);
}

TEST(Materialize, BuildsBatchTensor) {
    const SynthCifar10 dataset(20, 3, 16);
    const Batch batch = materialize(dataset, 4, 3);
    EXPECT_EQ(batch.images.shape(), Shape({3, 3, 16, 16}));
    EXPECT_EQ(batch.labels.size(), 3u);
    EXPECT_EQ(batch.labels[0], dataset.get(4).label);
    EXPECT_EQ(batch.size(), 3);
}

TEST(DataLoader, CoversEveryExampleOncePerEpoch) {
    const SynthCifar10 dataset(37, 3, 16);
    DataLoader loader(dataset, 8, Rng(1), /*shuffle=*/true);
    std::size_t seen = 0;
    std::size_t batches = 0;
    while (auto batch = loader.next()) {
        seen += batch->labels.size();
        ++batches;
    }
    EXPECT_EQ(seen, 37u);
    EXPECT_EQ(batches, 5u);  // 4 full + 1 partial
    EXPECT_EQ(loader.batches_per_epoch(), 5u);
}

TEST(DataLoader, ShuffleChangesOrderAcrossEpochs) {
    const SynthCifar10 dataset(64, 3, 16);
    DataLoader loader(dataset, 64, Rng(1), /*shuffle=*/true);
    const auto first = loader.next()->labels;
    loader.start_epoch();
    const auto second = loader.next()->labels;
    EXPECT_NE(first, second);
}

TEST(DataLoader, NoShufflePreservesOrder) {
    const SynthCifar10 dataset(10, 3, 16);
    DataLoader loader(dataset, 10, Rng(1), /*shuffle=*/false);
    const auto labels = loader.next()->labels;
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(labels[i], static_cast<std::int64_t>(i % 10));
    }
}

}  // namespace
}  // namespace ens::data
