#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "data/image_io.hpp"
#include "tensor/tensor.hpp"

namespace ens::data {
namespace {

std::string temp_path(const char* name) {
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ImageIo, PpmRoundTripIsLosslessAt8Bit) {
    // Values on the exact 1/255 grid survive the byte round trip.
    Tensor image{Shape{3, 4, 5}};
    for (std::int64_t i = 0; i < image.numel(); ++i) {
        image.at(i) = static_cast<float>((i * 7) % 256) / 255.0f;
    }
    const std::string path = temp_path("roundtrip.ppm");
    write_image(path, image);
    const Tensor back = read_image(path);
    ASSERT_EQ(back.shape(), image.shape());
    const auto a = image.to_vector();
    const auto b = back.to_vector();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(a[i], b[i], 1e-6f) << "pixel " << i;
    }
    std::remove(path.c_str());
}

TEST(ImageIo, GrayscaleWritesPgm) {
    Rng rng(5);
    const Tensor image = Tensor::uniform(Shape{1, 6, 6}, rng);
    const std::string path = temp_path("gray.pgm");
    write_image(path, image);
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P5");
    const Tensor back = read_image(path);
    EXPECT_EQ(back.shape(), image.shape());
    std::remove(path.c_str());
}

TEST(ImageIo, ClampsOutOfRangeValues) {
    Tensor image = Tensor::zeros(Shape{1, 1, 2});
    image.at(0) = -3.0f;
    image.at(1) = 42.0f;
    const std::string path = temp_path("clamp.pgm");
    write_image(path, image);
    const Tensor back = read_image(path);
    EXPECT_FLOAT_EQ(back.at(0), 0.0f);
    EXPECT_FLOAT_EQ(back.at(1), 1.0f);
    std::remove(path.c_str());
}

TEST(ImageIo, ReadSkipsHeaderComments) {
    const std::string path = temp_path("comment.pgm");
    {
        std::ofstream out(path, std::ios::binary);
        out << "P5\n# a comment line\n2 1\n# another\n255\n";
        out.put(static_cast<char>(0));
        out.put(static_cast<char>(255));
    }
    const Tensor image = read_image(path);
    ASSERT_EQ(image.shape(), (Shape{1, 1, 2}));
    EXPECT_FLOAT_EQ(image.at(0), 0.0f);
    EXPECT_FLOAT_EQ(image.at(1), 1.0f);
    std::remove(path.c_str());
}

TEST(ImageIo, RejectsBadInputs) {
    Rng rng(7);
    EXPECT_THROW(write_image(temp_path("bad.ppm"), Tensor::ones(Shape{2, 3, 4, 4})),
                 std::invalid_argument);  // rank 4
    EXPECT_THROW(write_image(temp_path("bad.ppm"), Tensor::ones(Shape{2, 4, 4})),
                 std::invalid_argument);  // 2 channels
    EXPECT_THROW(read_image(temp_path("missing-file.ppm")), std::runtime_error);
}

TEST(ImageIo, TileLaysOutRowMajorWithSeparators) {
    std::vector<Tensor> images;
    for (int i = 0; i < 4; ++i) {
        images.push_back(Tensor::full(Shape{1, 2, 3}, static_cast<float>(i) / 10.0f));
    }
    const Tensor sheet = tile_images(images, 2);
    // 2x2 grid of 2x3 tiles + 1px separators: [1, 2*2+1, 3*2+1].
    ASSERT_EQ(sheet.shape(), (Shape{1, 5, 7}));
    const auto pixel = [&sheet](std::int64_t y, std::int64_t x) {
        return sheet.at(y * sheet.shape().dim(2) + x);
    };
    EXPECT_FLOAT_EQ(pixel(0, 0), 0.0f);  // tile 0 top-left
    EXPECT_FLOAT_EQ(pixel(0, 4), 0.1f);  // tile 1 starts at x=4
    EXPECT_FLOAT_EQ(pixel(3, 0), 0.2f);  // tile 2 starts at y=3
    EXPECT_FLOAT_EQ(pixel(3, 4), 0.3f);  // tile 3
    EXPECT_FLOAT_EQ(pixel(2, 0), 1.0f);  // separator row is white
    EXPECT_FLOAT_EQ(pixel(0, 3), 1.0f);  // separator column
}

TEST(ImageIo, TileAcceptsBatchTensor) {
    Rng rng(9);
    const Tensor batch = Tensor::uniform(Shape{3, 1, 4, 4}, rng);
    const Tensor sheet = tile_images({batch}, 3);
    EXPECT_EQ(sheet.shape(), (Shape{1, 4, 4 * 3 + 2}));
}

TEST(ImageIo, TileRejectsMixedShapes) {
    EXPECT_THROW(tile_images({Tensor::ones(Shape{1, 2, 2}), Tensor::ones(Shape{1, 3, 3})}, 2),
                 std::invalid_argument);
}

TEST(ImageIo, StackRowsAlignsWidths) {
    const Tensor row_a = Tensor::full(Shape{3, 2, 7}, 0.25f);
    const Tensor row_b = Tensor::full(Shape{3, 4, 7}, 0.5f);
    const Tensor sheet = stack_rows({row_a, row_b});
    ASSERT_EQ(sheet.shape(), (Shape{3, 7, 7}));
    const auto pixel = [&sheet](std::int64_t y, std::int64_t x) {
        return sheet.at(y * sheet.shape().dim(2) + x);
    };
    EXPECT_FLOAT_EQ(pixel(0, 0), 0.25f);
    EXPECT_FLOAT_EQ(pixel(2, 0), 1.0f);  // separator
    EXPECT_FLOAT_EQ(pixel(3, 0), 0.5f);
    EXPECT_THROW(stack_rows({row_a, Tensor::ones(Shape{3, 2, 5})}), std::invalid_argument);
}

TEST(ImageIo, GalleryEndToEnd) {
    // originals row over reconstructions row -> one PPM, read back intact.
    Rng rng(11);
    const Tensor originals = Tensor::uniform(Shape{4, 3, 8, 8}, rng);
    const Tensor recons = Tensor::uniform(Shape{4, 3, 8, 8}, rng);
    const Tensor sheet =
        stack_rows({tile_images({originals}, 4), tile_images({recons}, 4)});
    const std::string path = temp_path("gallery.ppm");
    write_image(path, sheet);
    const Tensor back = read_image(path);
    EXPECT_EQ(back.shape(), sheet.shape());
    std::remove(path.c_str());
}

}  // namespace
}  // namespace ens::data
