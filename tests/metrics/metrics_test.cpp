#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/psnr.hpp"
#include "metrics/similarity.hpp"
#include "metrics/ssim.hpp"
#include "metrics/stats.hpp"
#include "tensor/ops.hpp"

namespace ens::metrics {
namespace {

Tensor random_image(std::uint64_t seed, std::int64_t size = 16) {
    Rng rng(seed);
    return Tensor::uniform(Shape{3, size, size}, rng, 0.0f, 1.0f);
}

TEST(Ssim, IdenticalImagesScoreOne) {
    const Tensor img = random_image(1);
    EXPECT_NEAR(ssim(img, img.clone()), 1.0f, 1e-5f);
}

TEST(Ssim, NoiseDegradesScoreMonotonically) {
    const Tensor img = random_image(2);
    Rng rng(3);
    Tensor light = img.clone();
    light.add_(Tensor::randn(img.shape(), rng, 0.0f, 0.05f));
    Tensor heavy = img.clone();
    heavy.add_(Tensor::randn(img.shape(), rng, 0.0f, 0.5f));
    const float s_light = ssim(img, light);
    const float s_heavy = ssim(img, heavy);
    EXPECT_GT(s_light, s_heavy);
    EXPECT_LT(s_heavy, 0.6f);
    EXPECT_GT(s_light, 0.5f);
}

TEST(Ssim, UnrelatedImagesScoreLow) {
    EXPECT_LT(ssim(random_image(4), random_image(5)), 0.2f);
}

TEST(Ssim, ConstantShiftPenalizedByLuminanceTerm) {
    // A constant +0.3 shift keeps structure but hurts the luminance term:
    // clearly below 1, clearly above the unrelated-image regime.
    const Tensor img = random_image(6);
    Tensor shifted = img.clone();
    shifted.add_scalar_(0.3f);
    const float s = ssim(img, shifted);
    EXPECT_LT(s, 0.95f);
    EXPECT_GT(s, 0.4f);
}

TEST(Ssim, BatchAveragesSamples) {
    Rng rng(7);
    const Tensor batch_a = Tensor::uniform(Shape{2, 3, 16, 16}, rng, 0.0f, 1.0f);
    const float s = ssim(batch_a, batch_a.clone());
    EXPECT_NEAR(s, 1.0f, 1e-5f);
}

TEST(Ssim, TinyImagesShrinkWindow) {
    Rng rng(8);
    const Tensor small = Tensor::uniform(Shape{3, 5, 5}, rng, 0.0f, 1.0f);
    EXPECT_NEAR(ssim(small, small.clone()), 1.0f, 1e-5f);
}

TEST(Ssim, ShapeMismatchThrows) {
    EXPECT_THROW(ssim(Tensor(Shape{3, 8, 8}), Tensor(Shape{3, 9, 9})), std::invalid_argument);
}

TEST(Psnr, KnownMse) {
    const Tensor a = Tensor::zeros(Shape{1, 2, 2});
    const Tensor b = Tensor::full(Shape{1, 2, 2}, 0.1f);
    // MSE = 0.01 -> PSNR = 10*log10(1/0.01) = 20 dB.
    EXPECT_NEAR(psnr(a, b), 20.0f, 1e-4f);
}

TEST(Psnr, IdenticalCapped) {
    const Tensor a = Tensor::ones(Shape{4});
    EXPECT_FLOAT_EQ(psnr(a, a.clone()), 100.0f);
    EXPECT_FLOAT_EQ(psnr(a, a.clone(), 1.0f, 55.0f), 55.0f);
}

// Regression for the header contract: the result is always finite (never
// +inf), the cap is a true clamp — near-identical inputs whose log value
// exceeds the cap land EXACTLY on it, tying with identical inputs — and
// aggregation over a set that includes an identical pair stays finite.
TEST(Psnr, CapIsAFiniteClampNotInfinity) {
    const Tensor a = Tensor::ones(Shape{64});
    EXPECT_TRUE(std::isfinite(psnr(a, a.clone())));

    // One element off by 1e-9: mathematically ~186 dB, far past the cap.
    Tensor near = a.clone();
    near.data()[0] += 1e-9f;
    const float capped_near = psnr(a, near);
    const float capped_same = psnr(a, a.clone());
    EXPECT_TRUE(std::isfinite(capped_near));
    EXPECT_FLOAT_EQ(capped_near, 100.0f);
    // Past the cap the ordering collapses to a tie — exactly why
    // best-by-PSNR selections must tie-break on SSIM (psnr.hpp).
    EXPECT_FLOAT_EQ(capped_near, capped_same);

    // Mean over {identical, noisy} pairs is finite and dominated sanely.
    const Tensor b = Tensor::full(Shape{64}, 0.5f);
    const float mean = (psnr(a, a.clone()) + psnr(a, b)) / 2.0f;
    EXPECT_TRUE(std::isfinite(mean));
    EXPECT_LT(mean, 100.0f);
}

TEST(Psnr, MoreNoiseLowerPsnr) {
    const Tensor img = random_image(9);
    Rng rng(10);
    Tensor light = img.clone();
    light.add_(Tensor::randn(img.shape(), rng, 0.0f, 0.02f));
    Tensor heavy = img.clone();
    heavy.add_(Tensor::randn(img.shape(), rng, 0.0f, 0.3f));
    EXPECT_GT(psnr(img, light), psnr(img, heavy));
}

TEST(Accuracy, Top1Known) {
    const Tensor logits = Tensor::from_vector(Shape{3, 3},
                                              {5, 1, 1,   // -> 0
                                               0, 9, 2,   // -> 1
                                               1, 2, 0});  // -> 1
    EXPECT_NEAR(top1_accuracy(logits, {0, 1, 2}), 2.0f / 3.0f, 1e-6f);
}

TEST(Accuracy, AccumulatorAcrossBatches) {
    AccuracyAccumulator acc;
    acc.add(Tensor::from_vector(Shape{1, 2}, {1, 0}), {0});
    acc.add(Tensor::from_vector(Shape{1, 2}, {1, 0}), {1});
    EXPECT_FLOAT_EQ(acc.value(), 0.5f);
    EXPECT_EQ(acc.count(), 2);
}

TEST(Accuracy, EmptyThrows) {
    const AccuracyAccumulator acc;
    EXPECT_THROW(acc.value(), std::invalid_argument);
}

TEST(CosineSimilarity, KnownValues) {
    const Tensor a = Tensor::from_vector(Shape{2}, {1, 0});
    const Tensor b = Tensor::from_vector(Shape{2}, {0, 1});
    EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6f);
    EXPECT_NEAR(cosine_similarity(a, a.clone()), 1.0f, 1e-6f);
    EXPECT_NEAR(cosine_similarity(a, scale(a, -3.0f)), -1.0f, 1e-6f);
}

TEST(CosineSimilarity, ZeroNormGivesZero) {
    const Tensor a = Tensor::zeros(Shape{3});
    const Tensor b = Tensor::ones(Shape{3});
    EXPECT_FLOAT_EQ(cosine_similarity(a, b), 0.0f);
}

TEST(RelativeL2, Properties) {
    const Tensor a = Tensor::from_vector(Shape{2}, {3, 4});
    EXPECT_NEAR(relative_l2_distance(a, a.clone()), 0.0f, 1e-6f);
    const Tensor b = scale(a, -1.0f);
    EXPECT_NEAR(relative_l2_distance(a, b), 1.0f, 1e-5f);
}

TEST(RunningStat, WelfordMatchesDirect) {
    RunningStat stat;
    const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 10.0};
    for (const double v : values) {
        stat.add(v);
    }
    EXPECT_EQ(stat.count(), 5);
    EXPECT_NEAR(stat.mean(), 4.0, 1e-12);
    EXPECT_NEAR(stat.variance(), 10.0, 1e-9);  // population variance
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 10.0);
}

TEST(RunningStat, EmptyThrows) {
    const RunningStat stat;
    EXPECT_THROW(stat.mean(), std::invalid_argument);
}

}  // namespace
}  // namespace ens::metrics
