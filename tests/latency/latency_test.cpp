#include <gtest/gtest.h>

#include "latency/estimator.hpp"
#include "latency/flops.hpp"
#include "latency/profiles.hpp"
#include "latency/stamp.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "split/split_model.hpp"

namespace ens::latency {
namespace {

TEST(Flops, ConvHandComputed) {
    Rng rng(1);
    nn::Sequential net;
    net.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
    const CostReport report = count_cost(net, Shape{2, 3, 16, 16});
    // 2 * (3*3*3) * 8 * (2*16*16) = 221184
    EXPECT_DOUBLE_EQ(report.total_flops, 221184.0);
    EXPECT_EQ(report.output_shape, Shape({2, 8, 16, 16}));
}

TEST(Flops, LinearHandComputed) {
    Rng rng(2);
    nn::Sequential net;
    net.emplace<nn::Linear>(128, 10, rng);
    const CostReport report = count_cost(net, Shape{4, 128});
    EXPECT_DOUBLE_EQ(report.total_flops, 2.0 * 4 * 128 * 10);
}

TEST(Flops, StridedConvShrinksOutput) {
    Rng rng(3);
    nn::Sequential net;
    net.emplace<nn::Conv2d>(4, 4, 3, 2, 1, rng);
    const CostReport report = count_cost(net, Shape{1, 4, 8, 8});
    EXPECT_EQ(report.output_shape, Shape({1, 4, 4, 4}));
}

TEST(Flops, FullWidthResNet18MatchesKnownScale) {
    // The CIFAR-style ResNet-18 at width 64 is ~0.56 GFLOP/image
    // (multiply-add counted as 2) for 32x32 inputs with the MaxPool variant.
    Rng rng(4);
    nn::ResNetConfig config;
    config.base_width = 64;
    config.image_size = 32;
    auto net = nn::build_resnet18(config, rng);
    const CostReport report = count_cost(*net, Shape{1, 3, 32, 32});
    EXPECT_GT(report.total_flops, 0.2e9);
    EXPECT_LT(report.total_flops, 0.8e9);
    EXPECT_EQ(report.output_shape, Shape({1, 10}));
}

TEST(Flops, UnsupportedLayerThrows) {
    nn::Sequential net;
    net.emplace<nn::UpsampleNearest2d>(2);
    EXPECT_THROW(count_cost(net, Shape{1, 2, 4, 4}), std::runtime_error);
}

struct Table3Fixture : public ::testing::Test {
    nn::ResNetConfig config;
    std::unique_ptr<split::SplitModel> split;
    PipelineSpec spec;

    void SetUp() override {
        // Paper's Table III setting: ResNet-18 width 64, CIFAR-10 geometry,
        // batch 128. We only build the graph; no training is needed for
        // FLOP counting.
        config.base_width = 64;
        config.image_size = 32;
        config.num_classes = 10;
        Rng rng(5);
        split = std::make_unique<split::SplitModel>(split::build_split_resnet18(config, rng));
        spec.client_head = split->head.get();
        spec.server_body = split->body.get();
        spec.client_tail = split->tail.get();
        spec.num_server_nets = 1;
        spec.input_shape = Shape{128, 3, 32, 32};
        spec.tail_input_width = nn::resnet18_feature_width(config);
    }
};

TEST_F(Table3Fixture, StandardCiCalibration) {
    const LatencyBreakdown standard =
        estimate_latency(spec, raspberry_pi_profile(), a6000_profile(), wired_lan_profile());
    // Calibrated to the paper's 0.66 / 0.98 / 2.30 / 3.94 within ~25%.
    EXPECT_NEAR(standard.client_s, 0.66, 0.20);
    EXPECT_NEAR(standard.server_s, 0.98, 0.25);
    EXPECT_NEAR(standard.communication_s, 2.30, 0.60);
    EXPECT_NEAR(standard.total_s(), 3.94, 1.00);
}

TEST_F(Table3Fixture, EnsemblerOverheadIsSmallAndCommDominated) {
    const LatencyBreakdown standard =
        estimate_latency(spec, raspberry_pi_profile(), a6000_profile(), wired_lan_profile());

    PipelineSpec ensembler_spec = spec;
    ensembler_spec.num_server_nets = 10;
    ensembler_spec.tail_input_width = 4 * nn::resnet18_feature_width(config);
    const LatencyBreakdown ensembler = estimate_latency(ensembler_spec, raspberry_pi_profile(),
                                                        a6000_profile(), wired_lan_profile());

    // Client unchanged (the tail width change is negligible).
    EXPECT_NEAR(ensembler.client_s, standard.client_s, 0.02);
    // Server grows by only a few percent (concurrent streams).
    EXPECT_GT(ensembler.server_s, standard.server_s);
    EXPECT_LT(ensembler.server_s, standard.server_s * 1.15);
    // Communication grows, and it is the dominant part of the overhead.
    EXPECT_GT(ensembler.communication_s, standard.communication_s);
    const double comm_delta = ensembler.communication_s - standard.communication_s;
    const double server_delta = ensembler.server_s - standard.server_s;
    EXPECT_GT(comm_delta, server_delta);
    // Total overhead within ~15% (paper: 4.8%).
    EXPECT_LT(ensembler.total_s(), standard.total_s() * 1.15);
}

TEST_F(Table3Fixture, MoreServerNetsNeverFaster) {
    double previous = 0.0;
    for (const std::size_t n : {1, 2, 5, 10, 20}) {
        PipelineSpec s = spec;
        s.num_server_nets = n;
        const LatencyBreakdown b =
            estimate_latency(s, raspberry_pi_profile(), a6000_profile(), wired_lan_profile());
        EXPECT_GE(b.total_s(), previous);
        previous = b.total_s();
    }
}

TEST_F(Table3Fixture, StampIsOrdersOfMagnitudeSlower) {
    const LatencyBreakdown standard =
        estimate_latency(spec, raspberry_pi_profile(), a6000_profile(), wired_lan_profile());
    const LatencyBreakdown stamp =
        estimate_stamp(spec, raspberry_pi_profile(), a6000_profile(), wired_lan_profile());
    EXPECT_GT(stamp.total_s(), standard.total_s() * 30.0);
    // Paper reports 309.7 s; the model should land within a factor ~2.
    EXPECT_GT(stamp.total_s(), 150.0);
    EXPECT_LT(stamp.total_s(), 650.0);
}

TEST(LinearOps, ResNet18Count) {
    Rng rng(6);
    nn::ResNetConfig config;
    config.base_width = 8;
    config.image_size = 16;
    auto net = nn::build_resnet18(config, rng);
    // conv1 + 16 block convs + 3 projections + final linear = 21.
    EXPECT_EQ(count_linear_ops(*net), 21u);
}

TEST(Estimator, RejectsIncompleteSpec) {
    PipelineSpec spec;
    EXPECT_THROW(
        estimate_latency(spec, raspberry_pi_profile(), a6000_profile(), wired_lan_profile()),
        std::invalid_argument);
}

}  // namespace
}  // namespace ens::latency
