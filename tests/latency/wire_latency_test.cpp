#include <gtest/gtest.h>

#include "latency/estimator.hpp"
#include "latency/profiles.hpp"
#include "split/split_model.hpp"

namespace ens::latency {
namespace {

/// Shared paper-scale pipeline for the wire-width tests.
struct Pipeline {
    nn::ResNetConfig arch;
    split::SplitModel parts;
    PipelineSpec spec;

    Pipeline() : parts(make_parts()) {
        spec.client_head = parts.head.get();
        spec.server_body = parts.body.get();
        spec.client_tail = parts.tail.get();
        spec.input_shape = Shape{128, 3, 32, 32};
        spec.tail_input_width = nn::resnet18_feature_width(arch);
        spec.num_server_nets = 10;
    }

    split::SplitModel make_parts() {
        arch.base_width = 16;  // enough structure, fast FLOP counting
        arch.image_size = 32;
        arch.num_classes = 10;
        Rng rng(3);
        return split::build_split_resnet18(arch, rng);
    }
};

TEST(WireLatency, NarrowerPayloadOnlyShrinksCommunication) {
    Pipeline pipeline;
    const auto edge = raspberry_pi_profile();
    const auto cloud = a6000_profile();
    const auto link = wired_lan_profile();

    PipelineSpec f32 = pipeline.spec;
    PipelineSpec q8 = pipeline.spec;
    q8.bytes_per_element = 1.0;
    const LatencyBreakdown wide = estimate_latency(f32, edge, cloud, link);
    const LatencyBreakdown narrow = estimate_latency(q8, edge, cloud, link);

    EXPECT_DOUBLE_EQ(narrow.client_s, wide.client_s);
    EXPECT_DOUBLE_EQ(narrow.server_s, wide.server_s);
    EXPECT_LT(narrow.communication_s, wide.communication_s);
    // Payload dominates the message framing, so ~4x less data moves.
    EXPECT_NEAR(wide.communication_s / narrow.communication_s, 4.0, 1.0);
}

TEST(WireLatency, CommunicationMonotoneInBytesPerElement) {
    Pipeline pipeline;
    const auto edge = raspberry_pi_profile();
    const auto cloud = a6000_profile();
    const auto link = wired_lan_profile();
    double previous = 0.0;
    for (const double width : {1.0, 2.0, 4.0}) {
        PipelineSpec spec = pipeline.spec;
        spec.bytes_per_element = width;
        const double comm = estimate_latency(spec, edge, cloud, link).communication_s;
        EXPECT_GT(comm, previous);
        previous = comm;
    }
}

TEST(WireLatency, RejectsNonPositiveWidth) {
    Pipeline pipeline;
    PipelineSpec spec = pipeline.spec;
    spec.bytes_per_element = 0.0;
    EXPECT_THROW(estimate_latency(spec, raspberry_pi_profile(), a6000_profile(),
                                  wired_lan_profile()),
                 std::invalid_argument);
}

}  // namespace
}  // namespace ens::latency
