// Numerical gradient checks for every layer type.
//
// For a layer L and random weighting tensor W we define the scalar loss
// s(x, theta) = sum(W ⊙ L(x)) so dL/dy = W exactly, then compare the
// analytic input/parameter gradients from backward() against central
// finite differences. This validates the entire backprop substrate that
// the paper's three training stages and the inversion attacks depend on.

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/pooling.hpp"
#include "nn/resblock.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {
namespace {

struct GradCheckCase {
    std::string name;
    std::function<LayerPtr(Rng&)> make_layer;
    Shape input_shape;
    double tolerance = 2e-2;  // relative; f32 finite differences are noisy
};

float weighted_sum(const Tensor& y, const Tensor& w) { return dot(y, w); }

class GradCheck : public ::testing::TestWithParam<GradCheckCase> {};

/// Directional finite-difference check: for a random unit direction d,
/// (L(v + eps d) - L(v - eps d)) / (2 eps) must match <grad, d>. Averaging
/// over a direction makes the check robust to the measure-zero ReLU/MaxPool
/// kinks that break per-coordinate differences in composite layers.
double directional_error(Tensor& v, const Tensor& analytic_grad,
                         const std::function<float()>& evaluate, Rng& rng, float eps) {
    Tensor direction = Tensor::randn(v.shape(), rng);
    const float norm = std::sqrt(squared_norm(direction));
    direction.scale_(1.0f / (norm + 1e-12f));

    const Tensor backup = v.clone();
    v.axpy_(eps, direction);
    const float plus = evaluate();
    v.copy_from(backup);
    v.axpy_(-eps, direction);
    const float minus = evaluate();
    v.copy_from(backup);

    const double numeric = (static_cast<double>(plus) - minus) / (2.0 * eps);
    const double analytic = dot(analytic_grad, direction);
    const double scale = std::max({std::fabs(numeric), std::fabs(analytic), 1e-2});
    return std::fabs(numeric - analytic) / scale;
}

TEST_P(GradCheck, InputAndParameterGradientsMatchFiniteDifferences) {
    const GradCheckCase& test_case = GetParam();
    Rng rng(42);
    LayerPtr layer = test_case.make_layer(rng);
    layer->set_training(true);

    Tensor x = Tensor::randn(test_case.input_shape, rng, 0.0f, 1.0f);
    const Tensor y0 = layer->forward(x);
    Tensor w = Tensor::randn(y0.shape(), rng, 0.0f, 1.0f);

    // Analytic gradients.
    zero_grad(*layer);
    const Tensor dx = layer->backward(w);
    ASSERT_EQ(dx.shape().to_string(), x.shape().to_string());

    const auto evaluate = [&]() {
        // Dropout-free layers here are deterministic given fixed params.
        return weighted_sum(layer->forward(x), w);
    };

    // Median over several directions: a ReLU/MaxPool unit sitting within
    // eps of its kink corrupts individual probes with O(1) relative error
    // that does NOT shrink with eps; the median filters those rare hits
    // while still failing loudly for systematically wrong gradients.
    constexpr float kEps = 2e-3f;
    constexpr int kDirections = 5;
    const auto median_error = [&](Tensor& v, const Tensor& analytic) {
        std::vector<double> errors;
        errors.reserve(kDirections);
        for (int k = 0; k < kDirections; ++k) {
            errors.push_back(directional_error(v, analytic, evaluate, rng, kEps));
        }
        std::sort(errors.begin(), errors.end());
        return errors[kDirections / 2];
    };

    EXPECT_LT(median_error(x, dx), test_case.tolerance) << "input gradient mismatch";
    for (Parameter* p : layer->parameters()) {
        if (!p->requires_grad) {
            continue;
        }
        EXPECT_LT(median_error(p->value, p->grad), test_case.tolerance)
            << "parameter gradient mismatch for " << p->name;
    }
}

std::vector<GradCheckCase> make_cases() {
    std::vector<GradCheckCase> cases;
    cases.push_back({"linear",
                     [](Rng& rng) { return std::make_unique<Linear>(6, 4, rng); },
                     Shape{3, 6}});
    cases.push_back({"linear_no_bias",
                     [](Rng& rng) { return std::make_unique<Linear>(5, 3, rng, false); },
                     Shape{2, 5}});
    cases.push_back({"conv3x3",
                     [](Rng& rng) { return std::make_unique<Conv2d>(2, 3, 3, 1, 1, rng); },
                     Shape{2, 2, 6, 6}});
    cases.push_back({"conv3x3_stride2",
                     [](Rng& rng) { return std::make_unique<Conv2d>(2, 4, 3, 2, 1, rng); },
                     Shape{2, 2, 8, 8}});
    cases.push_back({"conv1x1",
                     [](Rng& rng) { return std::make_unique<Conv2d>(3, 2, 1, 1, 0, rng); },
                     Shape{2, 3, 5, 5}});
    cases.push_back({"conv_bias",
                     [](Rng& rng) { return std::make_unique<Conv2d>(2, 2, 3, 1, 1, rng, true); },
                     Shape{1, 2, 5, 5}});
    cases.push_back({"batchnorm",
                     [](Rng&) { return std::make_unique<BatchNorm2d>(3); },
                     Shape{4, 3, 4, 4},
                     4e-2});  // BN couples the whole batch; fd noise is larger
    cases.push_back({"relu",
                     [](Rng&) { return std::make_unique<ReLU>(); },
                     Shape{3, 4, 4, 4}});
    cases.push_back({"leaky_relu",
                     [](Rng&) { return std::make_unique<LeakyReLU>(0.2f); },
                     Shape{2, 3, 4, 4}});
    cases.push_back({"sigmoid",
                     [](Rng&) { return std::make_unique<Sigmoid>(); },
                     Shape{2, 2, 4, 4}});
    cases.push_back({"tanh",
                     [](Rng&) { return std::make_unique<Tanh>(); },
                     Shape{2, 8}});
    cases.push_back({"maxpool",
                     [](Rng&) { return std::make_unique<MaxPool2d>(2); },
                     Shape{2, 2, 6, 6}});
    cases.push_back({"gap",
                     [](Rng&) { return std::make_unique<GlobalAvgPool>(); },
                     Shape{2, 3, 4, 4}});
    cases.push_back({"upsample",
                     [](Rng&) { return std::make_unique<UpsampleNearest2d>(2); },
                     Shape{2, 2, 3, 3}});
    cases.push_back({"flatten",
                     [](Rng&) { return std::make_unique<Flatten>(); },
                     Shape{2, 3, 4, 4}});
    cases.push_back({"fixed_noise",
                     [](Rng& rng) {
                         return std::make_unique<FixedNoise>(Shape{2, 4, 4}, 0.1f, rng);
                     },
                     Shape{3, 2, 4, 4}});
    cases.push_back({"trainable_noise",
                     [](Rng& rng) {
                         return std::make_unique<FixedNoise>(Shape{2, 3, 3}, 0.1f, rng, true);
                     },
                     Shape{2, 2, 3, 3}});
    cases.push_back({"basic_block_identity",
                     [](Rng& rng) { return std::make_unique<BasicBlock>(3, 3, 1, rng); },
                     Shape{2, 3, 6, 6},
                     5e-2});
    cases.push_back({"basic_block_projection",
                     [](Rng& rng) { return std::make_unique<BasicBlock>(2, 4, 2, rng); },
                     Shape{2, 2, 6, 6},
                     5e-2});
    cases.push_back({"small_sequential",
                     [](Rng& rng) {
                         auto seq = std::make_unique<Sequential>();
                         seq->emplace<Conv2d>(2, 3, 3, 1, 1, rng);
                         seq->emplace<ReLU>();
                         seq->emplace<GlobalAvgPool>();
                         seq->emplace<Linear>(3, 4, rng);
                         return seq;
                     },
                     Shape{2, 2, 5, 5},
                     4e-2});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLayers, GradCheck, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<GradCheckCase>& info) {
                             return info.param.name;
                         });

}  // namespace
}  // namespace ens::nn
