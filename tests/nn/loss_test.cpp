#include "nn/loss.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogC) {
    const Tensor logits = Tensor::zeros(Shape{2, 4});
    const LossResult loss = softmax_cross_entropy(logits, {0, 3});
    EXPECT_NEAR(loss.value, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
    const Tensor logits = Tensor::from_vector(Shape{1, 3}, {1.0f, 2.0f, 3.0f});
    const LossResult loss = softmax_cross_entropy(logits, {1});
    const Tensor p = softmax_rows(logits);
    EXPECT_NEAR(loss.grad.at(0, 0), p.at(0, 0), 1e-6f);
    EXPECT_NEAR(loss.grad.at(0, 1), p.at(0, 1) - 1.0f, 1e-6f);
    EXPECT_NEAR(loss.grad.at(0, 2), p.at(0, 2), 1e-6f);
}

TEST(CrossEntropy, GradRowsSumToZero) {
    Rng rng(1);
    const Tensor logits = Tensor::randn(Shape{5, 7}, rng);
    const LossResult loss = softmax_cross_entropy(logits, {0, 1, 2, 3, 4});
    for (std::int64_t r = 0; r < 5; ++r) {
        float total = 0.0f;
        for (std::int64_t c = 0; c < 7; ++c) {
            total += loss.grad.at(r, c);
        }
        EXPECT_NEAR(total, 0.0f, 1e-5f);
    }
}

TEST(CrossEntropy, MatchesFiniteDifference) {
    Rng rng(2);
    Tensor logits = Tensor::randn(Shape{3, 4}, rng);
    const std::vector<std::int64_t> labels{2, 0, 3};
    const LossResult loss = softmax_cross_entropy(logits, labels);
    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        const float original = logits.at(i);
        logits.at(i) = original + eps;
        const float plus = softmax_cross_entropy(logits, labels).value;
        logits.at(i) = original - eps;
        const float minus = softmax_cross_entropy(logits, labels).value;
        logits.at(i) = original;
        EXPECT_NEAR((plus - minus) / (2 * eps), loss.grad.at(i), 1e-3f);
    }
}

TEST(CrossEntropy, ChecksLabels) {
    const Tensor logits = Tensor::zeros(Shape{2, 3});
    EXPECT_THROW(softmax_cross_entropy(logits, {0}), std::invalid_argument);
    EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), std::invalid_argument);
    EXPECT_THROW(softmax_cross_entropy(logits, {0, -1}), std::invalid_argument);
}

TEST(Mse, ValueAndGradient) {
    const Tensor pred = Tensor::from_vector(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor target = Tensor::from_vector(Shape{2, 2}, {1, 0, 3, 8});
    const LossResult loss = mse_loss(pred, target);
    EXPECT_NEAR(loss.value, (0 + 4 + 0 + 16) / 4.0f, 1e-6f);
    EXPECT_NEAR(loss.grad.at(1), 2.0f * 2.0f / 4.0f, 1e-6f);
    EXPECT_NEAR(loss.grad.at(3), 2.0f * -4.0f / 4.0f, 1e-6f);
}

TEST(Mse, ZeroWhenEqual) {
    Rng rng(3);
    const Tensor x = Tensor::randn(Shape{4, 4}, rng);
    const LossResult loss = mse_loss(x, x.clone());
    EXPECT_FLOAT_EQ(loss.value, 0.0f);
    EXPECT_FLOAT_EQ(squared_norm(loss.grad), 0.0f);
}

TEST(CosineSim, IdenticalIsOne) {
    Rng rng(4);
    const Tensor a = Tensor::randn(Shape{3, 8}, rng);
    const LossResult cs = cosine_similarity_mean(a, a.clone());
    EXPECT_NEAR(cs.value, 1.0f, 1e-5f);
}

TEST(CosineSim, OppositeIsMinusOne) {
    Rng rng(5);
    const Tensor a = Tensor::randn(Shape{2, 6}, rng);
    const LossResult cs = cosine_similarity_mean(a, scale(a, -2.0f));
    EXPECT_NEAR(cs.value, -1.0f, 1e-5f);
}

TEST(CosineSim, OrthogonalIsZero) {
    const Tensor a = Tensor::from_vector(Shape{1, 2}, {1, 0});
    const Tensor b = Tensor::from_vector(Shape{1, 2}, {0, 1});
    EXPECT_NEAR(cosine_similarity_mean(a, b).value, 0.0f, 1e-6f);
}

TEST(CosineSim, GradientOrthogonalToA) {
    // cs(a,b) is scale-invariant in a, so grad_a . a == 0 per sample.
    Rng rng(6);
    const Tensor a = Tensor::randn(Shape{4, 10}, rng);
    const Tensor b = Tensor::randn(Shape{4, 10}, rng);
    const LossResult cs = cosine_similarity_mean(a, b);
    for (std::int64_t r = 0; r < 4; ++r) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < 10; ++c) {
            acc += static_cast<double>(cs.grad.at(r, c)) * a.at(r, c);
        }
        EXPECT_NEAR(acc, 0.0, 1e-6);
    }
}

TEST(CosineSim, GradientMatchesFiniteDifference) {
    Rng rng(7);
    Tensor a = Tensor::randn(Shape{2, 5}, rng);
    const Tensor b = Tensor::randn(Shape{2, 5}, rng);
    const LossResult cs = cosine_similarity_mean(a, b);
    const float eps = 1e-3f;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        const float original = a.at(i);
        a.at(i) = original + eps;
        const float plus = cosine_similarity_mean(a, b).value;
        a.at(i) = original - eps;
        const float minus = cosine_similarity_mean(a, b).value;
        a.at(i) = original;
        EXPECT_NEAR((plus - minus) / (2 * eps), cs.grad.at(i), 2e-3f);
    }
}

TEST(CosineSim, BatchAveraging) {
    // First sample aligned, second orthogonal -> mean 0.5.
    const Tensor a = Tensor::from_vector(Shape{2, 2}, {1, 0, 1, 0});
    const Tensor b = Tensor::from_vector(Shape{2, 2}, {2, 0, 0, 3});
    EXPECT_NEAR(cosine_similarity_mean(a, b).value, 0.5f, 1e-6f);
}

}  // namespace
}  // namespace ens::nn
