#include <cmath>

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {
namespace {

TEST(Linear, OutputShapeAndBias) {
    Rng rng(1);
    Linear layer(4, 3, rng);
    layer.bias().value.fill(0.5f);
    const Tensor x = Tensor::zeros(Shape{2, 4});
    const Tensor y = layer.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 3}));
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_FLOAT_EQ(y.at(i), 0.5f);  // zero input -> bias only
    }
}

TEST(Linear, RejectsWrongWidth) {
    Rng rng(1);
    Linear layer(4, 3, rng);
    EXPECT_THROW(layer.forward(Tensor(Shape{2, 5})), std::invalid_argument);
}

TEST(Conv2d, OutputGeometry) {
    Rng rng(2);
    Conv2d same(3, 8, 3, 1, 1, rng);
    EXPECT_EQ(same.forward(Tensor(Shape{2, 3, 16, 16})).shape(), Shape({2, 8, 16, 16}));
    Conv2d strided(3, 8, 3, 2, 1, rng);
    EXPECT_EQ(strided.forward(Tensor(Shape{2, 3, 16, 16})).shape(), Shape({2, 8, 8, 8}));
    Conv2d pointwise(8, 4, 1, 1, 0, rng);
    EXPECT_EQ(pointwise.forward(Tensor(Shape{1, 8, 5, 5})).shape(), Shape({1, 4, 5, 5}));
}

TEST(Conv2d, KnownConvolution) {
    Rng rng(3);
    Conv2d conv(1, 1, 3, 1, 1, rng);
    conv.weight().value.fill(1.0f);  // 3x3 box filter
    const Tensor x = Tensor::ones(Shape{1, 1, 3, 3});
    const Tensor y = conv.forward(x);
    // Center sees 9 ones, corners see 4, edges see 6.
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 6.0f);
}

TEST(Conv2d, FrozenWeightsSkipGradientAccumulation) {
    Rng rng(4);
    Conv2d conv(2, 2, 3, 1, 1, rng);
    set_requires_grad(conv, false);
    const Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
    const Tensor y = conv.forward(x);
    conv.backward(Tensor::ones(y.shape()));
    EXPECT_FLOAT_EQ(squared_norm(conv.weight().grad), 0.0f);
}

TEST(BatchNorm2d, NormalizesBatchInTraining) {
    BatchNorm2d bn(2);
    bn.set_training(true);
    Rng rng(5);
    const Tensor x = Tensor::randn(Shape{8, 2, 4, 4}, rng, 3.0f, 2.0f);
    const Tensor y = bn.forward(x);
    // With gamma=1, beta=0 the per-channel output stats are ~N(0,1).
    for (std::int64_t c = 0; c < 2; ++c) {
        double sum = 0.0;
        double sq = 0.0;
        std::int64_t count = 0;
        for (std::int64_t n = 0; n < 8; ++n) {
            for (std::int64_t h = 0; h < 4; ++h) {
                for (std::int64_t w = 0; w < 4; ++w) {
                    const float v = y.at(n, c, h, w);
                    sum += v;
                    sq += static_cast<double>(v) * v;
                    ++count;
                }
            }
        }
        EXPECT_NEAR(sum / count, 0.0, 1e-4);
        EXPECT_NEAR(sq / count, 1.0, 1e-2);
    }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
    BatchNorm2d bn(1);
    bn.set_training(true);
    Rng rng(6);
    // Feed several batches so the running stats converge toward (3, 4).
    for (int i = 0; i < 60; ++i) {
        bn.forward(Tensor::randn(Shape{16, 1, 2, 2}, rng, 3.0f, 2.0f));
    }
    bn.set_training(false);
    const Tensor x = Tensor::full(Shape{1, 1, 1, 1}, 3.0f);
    const Tensor y = bn.forward(x);
    EXPECT_NEAR(y.at(0), 0.0f, 0.2f);  // mean input -> ~0 output
}

TEST(BatchNorm2d, RunningVarUsesBesselCorrection) {
    // PyTorch semantics: normalization uses the BIASED batch variance, but
    // the running estimate accumulates the UNBIASED one (n/(n-1)). With
    // momentum 1 the running stats equal the last batch's exactly, so the
    // hand-computed reference pins both at once.
    BatchNorm2d bn(1, 1e-5f, /*momentum=*/1.0f);
    bn.set_training(true);
    const Tensor x = Tensor::from_vector(Shape{4, 1, 1, 1}, {1.0f, 2.0f, 3.0f, 6.0f});
    bn.forward(x);

    const double mean = 3.0;                             // (1+2+3+6)/4
    const double biased_var = (4.0 + 1.0 + 0.0 + 9.0) / 4.0;
    const double unbiased_var = biased_var * 4.0 / 3.0;  // Bessel: n/(n-1)
    EXPECT_NEAR(bn.running_mean().at(0), mean, 1e-6);
    EXPECT_NEAR(bn.running_var().at(0), unbiased_var, 1e-6);

    // Eval-mode parity against the running stats the layer just wrote:
    // y = gamma * (x - rmean) / sqrt(rvar + eps) + beta.
    bn.set_training(false);
    const Tensor y = bn.forward(x);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        const double expected = (x.at(i) - mean) / std::sqrt(unbiased_var + 1e-5);
        EXPECT_NEAR(y.at(i), expected, 1e-6);
    }
}

TEST(BatchNorm2d, EvalBackwardIsScale) {
    BatchNorm2d bn(1);
    bn.set_training(false);
    bn.running_var().fill(3.0f);
    bn.gamma().value.fill(2.0f);
    Rng rng(7);
    const Tensor x = Tensor::randn(Shape{2, 1, 2, 2}, rng);
    bn.forward(x);
    const Tensor dy = Tensor::ones(Shape{2, 1, 2, 2});
    const Tensor dx = bn.backward(dy);
    const float expected = 2.0f / std::sqrt(3.0f + 1e-5f);
    for (std::int64_t i = 0; i < dx.numel(); ++i) {
        EXPECT_NEAR(dx.at(i), expected, 1e-5f);
    }
}

TEST(ReLU, ZeroesNegatives) {
    ReLU relu;
    const Tensor x = Tensor::from_vector(Shape{1, 4}, {-1, 0, 2, -3});
    EXPECT_EQ(relu.forward(x).to_vector(), (std::vector<float>{0, 0, 2, 0}));
    const Tensor dx = relu.backward(Tensor::ones(Shape{1, 4}));
    EXPECT_EQ(dx.to_vector(), (std::vector<float>{0, 0, 1, 0}));
}

TEST(Sigmoid, RangeAndMidpoint) {
    Sigmoid sig;
    const Tensor x = Tensor::from_vector(Shape{1, 3}, {-100, 0, 100});
    const Tensor y = sig.forward(x);
    EXPECT_NEAR(y.at(0), 0.0f, 1e-6f);
    EXPECT_FLOAT_EQ(y.at(1), 0.5f);
    EXPECT_NEAR(y.at(2), 1.0f, 1e-6f);
}

TEST(MaxPool2d, SelectsMaxima) {
    MaxPool2d pool(2);
    const Tensor x =
        Tensor::from_vector(Shape{1, 1, 4, 4}, {1, 2, 5, 3,   //
                                                4, 0, 1, 1,   //
                                                9, 2, 0, 0,   //
                                                1, 1, 0, 7});
    const Tensor y = pool.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
    EXPECT_EQ(y.to_vector(), (std::vector<float>{4, 5, 9, 7}));

    const Tensor dx = pool.backward(Tensor::ones(y.shape()));
    EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 0), 1.0f);  // the "4"
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(sum(dx), 4.0f);
}

TEST(GlobalAvgPool, AveragesPlanes) {
    GlobalAvgPool gap;
    const Tensor x = Tensor::from_vector(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
    const Tensor y = gap.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 2}));
    EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 25.0f);
}

TEST(UpsampleNearest2d, RepeatsPixels) {
    UpsampleNearest2d up(2);
    const Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
    const Tensor y = up.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 1.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 3, 3), 4.0f);
}

TEST(Dropout, EvalIdentityWhenNotAlwaysOn) {
    Dropout drop(0.5f, Rng(1), /*active_in_eval=*/false);
    drop.set_training(false);
    Rng rng(8);
    const Tensor x = Tensor::randn(Shape{4, 4}, rng);
    EXPECT_EQ(drop.forward(x).to_vector(), x.to_vector());
}

TEST(Dropout, ActiveInEvalMasks) {
    Dropout drop(0.5f, Rng(2), /*active_in_eval=*/true);
    drop.set_training(false);
    const Tensor x = Tensor::ones(Shape{64, 64});
    const Tensor y = drop.forward(x);
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        if (y.at(i) == 0.0f) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(y.at(i), 2.0f);  // inverted scaling 1/(1-p)
        }
    }
    const double rate = static_cast<double>(zeros) / y.numel();
    EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Dropout, TrainingPreservesExpectation) {
    Dropout drop(0.3f, Rng(3));
    drop.set_training(true);
    const Tensor x = Tensor::ones(Shape{128, 128});
    EXPECT_NEAR(mean(drop.forward(x)), 1.0f, 0.03f);
}

TEST(FixedNoise, BroadcastsMaskOverBatch) {
    Rng rng(9);
    FixedNoise noise(Shape{2, 3, 3}, 0.5f, rng);
    const Tensor x = Tensor::zeros(Shape{4, 2, 3, 3});
    const Tensor y = noise.forward(x);
    for (std::int64_t n = 1; n < 4; ++n) {
        for (std::int64_t i = 0; i < 18; ++i) {
            EXPECT_FLOAT_EQ(y.at(n * 18 + i), y.at(i));  // same mask every sample
        }
    }
    EXPECT_GT(squared_norm(y), 0.0f);
}

TEST(FixedNoise, MaskIsFixedAcrossCalls) {
    Rng rng(10);
    FixedNoise noise(Shape{1, 2, 2}, 0.5f, rng);
    const Tensor x = Tensor::zeros(Shape{1, 1, 2, 2});
    EXPECT_EQ(noise.forward(x).to_vector(), noise.forward(x).to_vector());
}

TEST(FixedNoise, NonTrainableExposesNoParams) {
    Rng rng(11);
    FixedNoise fixed(Shape{1, 2, 2}, 0.1f, rng);
    EXPECT_TRUE(fixed.parameters().empty());
    FixedNoise learned(Shape{1, 2, 2}, 0.1f, rng, true);
    EXPECT_EQ(learned.parameters().size(), 1u);
}

TEST(Flatten, RoundTrip) {
    Flatten flatten;
    Rng rng(12);
    const Tensor x = Tensor::randn(Shape{2, 3, 4, 5}, rng);
    const Tensor y = flatten.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 60}));
    const Tensor dx = flatten.backward(Tensor::ones(y.shape()));
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Reshape, AddsSpatialAxes) {
    Reshape reshape(Shape{3, 2, 2});
    const Tensor x = Tensor::zeros(Shape{4, 12});
    EXPECT_EQ(reshape.forward(x).shape(), Shape({4, 3, 2, 2}));
}

}  // namespace
}  // namespace ens::nn
