// nn/checkpoint coverage the rest of the suite misses:
//
//   1. Deployment-grade fidelity ACROSS A PROCESS BOUNDARY: a forked child
//      that builds the same structure with DIFFERENT weights, loads a
//      save_state checkpoint written by the parent, and runs an eval-mode
//      forward must produce output bytes bit-identical to the parent's —
//      which fails if BatchNorm running statistics or the fixed noise mask
//      were dropped or re-derived (the in-proc round-trip tests cannot
//      catch a "same process, shared globals" accident).
//   2. Rejection MESSAGES: mismatches must say what disagreed (name,
//      shape, count, magic) so a mis-deployed checkpoint is diagnosable
//      from the error alone, and surface as typed
//      ens::Error{checkpoint_error}.
//   3. Hostile-input hardening: truncated and garbage streams fail typed
//      with bounded allocation (an attacker-sized length prefix must not
//      drive a multi-gigabyte reserve).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/sequential.hpp"

namespace ens::nn {
namespace {

/// Conv->BN net whose eval output depends on BN running statistics.
std::unique_ptr<Sequential> make_bn_net(std::uint64_t seed) {
    Rng rng(seed);
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(1, 2, /*kernel=*/3, /*stride=*/1, /*padding=*/1, rng);
    net->emplace<BatchNorm2d>(2);
    return net;
}

TEST(Checkpoint, BatchNormRunningStatsSurviveSaveStateIntoAForkedProcess) {
    auto net = make_bn_net(/*seed=*/42);
    // "Train": drive the running statistics away from their (0, 1) init.
    Rng data_rng(7);
    for (int i = 0; i < 4; ++i) {
        net->forward(Tensor::randn(Shape{6, 1, 4, 4}, data_rng));
    }
    net->set_training(false);

    const Tensor probe = Tensor::randn(Shape{2, 1, 4, 4}, data_rng);
    const std::vector<float> expected = net->forward(probe).to_vector();

    const std::string path = "checkpoint_fork_test.ckpt";
    save_state_file(*net, path);

    int bytes_pipe[2] = {-1, -1};
    ASSERT_EQ(::pipe(bytes_pipe), 0);
    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        ::close(bytes_pipe[0]);
        ThreadPool::mark_forked_child();
        int code = 0;
        try {
            // Different seed: every weight differs until the load. Loading
            // parameters alone would leave the child's BN running stats at
            // their init and diverge — only full state restores parity.
            auto restored = make_bn_net(/*seed=*/4242);
            load_state_file(*restored, path);
            restored->set_training(false);
            const std::vector<float> output = restored->forward(probe).to_vector();
            const std::size_t size = output.size() * sizeof(float);
            if (::write(bytes_pipe[1], output.data(), size) !=
                static_cast<ssize_t>(size)) {
                code = 2;
            }
        } catch (...) {
            code = 1;
        }
        ::close(bytes_pipe[1]);
        ::_exit(code);
    }
    ::close(bytes_pipe[1]);
    std::vector<float> child_output(expected.size());
    std::size_t got = 0;
    const std::size_t want = expected.size() * sizeof(float);
    while (got < want) {
        const ssize_t n = ::read(bytes_pipe[0], reinterpret_cast<char*>(child_output.data()) + got,
                                 want - got);
        if (n <= 0) {
            break;
        }
        got += static_cast<std::size_t>(n);
    }
    ::close(bytes_pipe[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "child failed to restore or forward";
    ASSERT_EQ(got, want) << "child sent short output";
    // Bitwise equality across the process boundary.
    EXPECT_EQ(child_output, expected);
}

TEST(Checkpoint, FixedNoiseMaskTravelsInStateCheckpoints) {
    Rng rng_a(1);
    FixedNoise original(Shape{2, 3, 3}, 0.1f, rng_a);
    std::stringstream stream;
    save_state(original, stream);

    Rng rng_b(2);
    FixedNoise restored(Shape{2, 3, 3}, 0.1f, rng_b);
    ASSERT_NE(restored.mask().to_vector(), original.mask().to_vector())
        << "distinct seeds must draw distinct masks for this test to mean anything";
    load_state(restored, stream);
    EXPECT_EQ(restored.mask().to_vector(), original.mask().to_vector());
}

// ------------------------------------------------------------- rejection

TEST(Checkpoint, NameMismatchNamesBothSides) {
    Rng rng(3);
    FixedNoise noise(Shape{2, 2}, 0.1f, rng, /*trainable=*/true);  // param "noise_mask"
    std::stringstream stream;
    save_parameters(noise, stream);

    try {
        // Same parameter COUNT is required to reach the name check, so use
        // a single-parameter layer on both sides.
        Rng rng2(4);
        Linear bias_free(2, 2, rng2, /*with_bias=*/false);  // one param: "weight"
        load_parameters(bias_free, stream);
        FAIL() << "name mismatch loaded";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        const std::string what = e.what();
        EXPECT_NE(what.find("noise_mask"), std::string::npos) << what;
        EXPECT_NE(what.find("weight"), std::string::npos) << what;
    }
}

TEST(Checkpoint, ShapeMismatchNamesParameterAndBothShapes) {
    Rng rng(5);
    Linear a(3, 4, rng, /*with_bias=*/false);
    std::stringstream stream;
    save_parameters(a, stream);

    Rng rng2(6);
    Linear b(3, 5, rng2, /*with_bias=*/false);
    try {
        load_parameters(b, stream);
        FAIL() << "shape mismatch loaded";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        const std::string what = e.what();
        EXPECT_NE(what.find("shape mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("weight"), std::string::npos) << what;
        EXPECT_NE(what.find("[4, 3]"), std::string::npos) << "checkpoint shape: " << what;
        EXPECT_NE(what.find("[5, 3]"), std::string::npos) << "model shape: " << what;
    }
}

TEST(Checkpoint, CountMagicAndFidelityMismatchesAreTypedAndNamed) {
    Rng rng(7);
    Linear one(2, 2, rng, /*with_bias=*/false);
    Linear two(2, 2, rng);  // weight + bias

    std::stringstream stream;
    save_parameters(one, stream);
    try {
        load_parameters(two, stream);
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("parameter count mismatch"), std::string::npos)
            << e.what();
    }

    std::stringstream garbage("definitely not a checkpoint");
    try {
        load_parameters(one, garbage);
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("bad checkpoint magic"), std::string::npos)
            << e.what();
    }

    // load_state on a parameters-only stream: a *fidelity* error with its
    // own actionable message, not a generic bad-magic.
    std::stringstream params_only;
    save_parameters(one, params_only);
    try {
        load_state(one, params_only);
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("save_parameters"), std::string::npos) << e.what();
    }
}

TEST(Checkpoint, FileErrorsNameThePath) {
    Rng rng(8);
    Linear net(2, 2, rng);
    try {
        load_state_file(net, "no_such_dir/no_such_checkpoint.ckpt");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("no_such_checkpoint.ckpt"), std::string::npos)
            << e.what();
    }
}

// --------------------------------------------------------------- hostile

TEST(Checkpoint, TruncatedStreamFailsTypedNotRaw) {
    Rng rng(9);
    Linear net(3, 3, rng);
    std::stringstream stream;
    save_parameters(net, stream);
    const std::string bytes = stream.str();

    for (const std::size_t keep : {std::size_t{6}, bytes.size() / 2, bytes.size() - 3}) {
        std::stringstream truncated(bytes.substr(0, keep));
        Rng rng2(10);
        Linear target(3, 3, rng2);
        try {
            load_parameters(target, truncated);
            FAIL() << "truncated to " << keep << " bytes loaded";
        } catch (const Error& e) {
            EXPECT_EQ(e.code(), ErrorCode::checkpoint_error) << "keep=" << keep;
        } catch (const std::exception& e) {
            FAIL() << "raw exception for keep=" << keep << ": " << e.what();
        }
    }
}

TEST(Checkpoint, AttackerSizedLengthPrefixesAreBoundedBeforeAllocation) {
    // magic | count=1 | string length 0xFFFFFFFF: a naive loader would
    // reserve 4 GiB for the parameter name. The bounded reader must refuse
    // by the declared length, typed.
    std::string bytes;
    const std::uint32_t magic = 0x454E5331;
    const std::uint64_t count = 1;
    const std::uint32_t absurd_len = 0xFFFFFFFFu;
    bytes.append(reinterpret_cast<const char*>(&magic), 4);
    bytes.append(reinterpret_cast<const char*>(&count), 8);
    bytes.append(reinterpret_cast<const char*>(&absurd_len), 4);

    Rng rng(11);
    Linear target(2, 2, rng, /*with_bias=*/false);
    std::stringstream stream(bytes);
    try {
        load_parameters(target, stream);
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("exceeds bound"), std::string::npos) << e.what();
    }

    // Same for an absurd shape rank on an otherwise-plausible record.
    std::string shape_bytes;
    shape_bytes.append(reinterpret_cast<const char*>(&magic), 4);
    shape_bytes.append(reinterpret_cast<const char*>(&count), 8);
    const std::string name = "weight";
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    shape_bytes.append(reinterpret_cast<const char*>(&name_len), 4);
    shape_bytes.append(name);
    const std::uint64_t absurd_rank = 0x7FFFFFFFFFFFFFFFull;
    shape_bytes.append(reinterpret_cast<const char*>(&absurd_rank), 8);
    std::stringstream shape_stream(shape_bytes);
    Rng rng2(12);
    Linear target2(2, 2, rng2, /*with_bias=*/false);
    try {
        load_parameters(target2, shape_stream);
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("exceeds bound"), std::string::npos) << e.what();
    }
}

}  // namespace
}  // namespace ens::nn
