#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/vgg.hpp"
#include "split/split_model.hpp"

namespace ens::nn {
namespace {

VggConfig tiny_config() {
    VggConfig config;
    config.base_width = 4;
    config.image_size = 8;
    config.num_classes = 5;
    config.stages = 2;
    return config;
}

TEST(Vgg, ForwardShapeIsLogits) {
    Rng rng(1);
    const VggConfig config = tiny_config();
    auto net = build_vgg(config, rng);
    net->set_training(false);
    const Tensor x = Tensor::randn(Shape{3, 3, 8, 8}, rng);
    const Tensor logits = net->forward(x);
    EXPECT_EQ(logits.shape(), (Shape{3, 5}));
}

TEST(Vgg, GeometryHelpersMatchActualTensors) {
    Rng rng(2);
    const VggConfig config = tiny_config();
    auto net = build_vgg(config, rng);
    net->set_training(false);

    // Head output geometry: run just the head layers.
    split::SplitModel split =
        split::split_sequential(build_vgg(config, rng), vgg_head_layer_count(config), 1);
    split.set_training(false);
    const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);
    const Tensor wire = split.head->forward(x);
    EXPECT_EQ(wire.shape(),
              (Shape{2, vgg_split_channels(config), vgg_split_hw(config), vgg_split_hw(config)}));

    // Tail input geometry.
    const Tensor body_out = split.body->forward(wire);
    EXPECT_EQ(body_out.shape(), (Shape{2, vgg_feature_width(config)}));
    EXPECT_EQ(split.tail->forward(body_out).shape(), (Shape{2, 5}));
}

TEST(Vgg, WidthDoublesPerStage) {
    VggConfig config = tiny_config();
    config.stages = 3;
    config.image_size = 16;
    EXPECT_EQ(vgg_feature_width(config), 16);  // 4 * 2^2
    config.stages = 1;
    EXPECT_EQ(vgg_feature_width(config), 4);
}

TEST(Vgg, RejectsIndivisibleImageSize) {
    Rng rng(3);
    VggConfig config = tiny_config();
    config.stages = 3;
    config.image_size = 10;  // not divisible by 4
    EXPECT_THROW(build_vgg(config, rng), std::invalid_argument);
}

TEST(Vgg, TrainingStepReducesLoss) {
    // One SGD step on a fixed batch must reduce CE loss (sanity that
    // backward wiring through the plain-CNN stack is correct).
    Rng rng(4);
    const VggConfig config = tiny_config();
    auto net = build_vgg(config, rng);
    net->set_training(true);

    const Tensor x = Tensor::uniform(Shape{8, 3, 8, 8}, rng);
    const std::vector<std::int64_t> labels = {0, 1, 2, 3, 4, 0, 1, 2};

    const LossResult before = softmax_cross_entropy(net->forward(x), labels);
    net->backward(before.grad);
    for (Parameter* param : net->parameters()) {
        if (param->requires_grad) {
            param->value.axpy_(-0.05f, param->grad);
            param->zero_grad();
        }
    }
    const LossResult after = softmax_cross_entropy(net->forward(x), labels);
    EXPECT_LT(after.value, before.value);
}

}  // namespace
}  // namespace ens::nn
