// nn/arch: architecture specs — the topology half of a deployment bundle.
// describe -> build must reproduce identical structure (so a load_state on
// top restores bit-identical behavior), encode -> decode must round-trip
// the tree, and decoding is hostile-input hardened.

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/arch.hpp"
#include "nn/checkpoint.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/resnet.hpp"
#include "nn/sequential.hpp"
#include "split/split_model.hpp"

namespace ens::nn {
namespace {

/// describe(build(describe(x))) == describe(x): the spec is a fixed point,
/// which is what makes a rebuilt layer structurally identical.
void expect_spec_fixed_point(Layer& layer) {
    const ArchSpec spec = describe_layer(layer);
    const LayerPtr rebuilt = build_layer(spec);
    EXPECT_EQ(describe_layer(*rebuilt), spec) << spec.to_string();
}

TEST(ArchSpec, SplitResNet18PartsRoundTripStructurally) {
    // The demo-bundle architecture: conv/BN/ReLU/MaxPool head, BasicBlock
    // body with projection shortcuts, GlobalAvgPool, Linear tail.
    nn::ResNetConfig config;
    config.base_width = 4;
    config.image_size = 16;
    Rng rng(1);
    split::SplitModel model = split::build_split_resnet18(config, rng);
    expect_spec_fixed_point(*model.head);
    expect_spec_fixed_point(*model.body);
    expect_spec_fixed_point(*model.tail);
}

TEST(ArchSpec, RebuiltLayerAcceptsTheOriginalsStateCheckpoint) {
    // Structure parity is exactly "load_state succeeds": the checkpoint
    // validates every parameter and buffer by name and shape.
    nn::ResNetConfig config;
    config.base_width = 2;
    config.image_size = 8;
    Rng rng(2);
    split::SplitModel model = split::build_split_resnet18(config, rng);
    std::stringstream stream;
    save_state(*model.body, stream);
    const LayerPtr rebuilt = build_layer(describe_layer(*model.body));
    ASSERT_NO_THROW(load_state(*rebuilt, stream));
    EXPECT_EQ(parameter_count(*rebuilt), parameter_count(*model.body));
}

TEST(ArchSpec, EncodeDecodeRoundTripsTheTree) {
    Rng rng(3);
    Sequential net;
    net.emplace<FixedNoise>(Shape{2, 4, 4}, 0.25f, rng);
    net.emplace<Flatten>();
    net.emplace<Linear>(32, 4, rng, /*with_bias=*/false);

    const ArchSpec spec = describe_layer(net);
    std::stringstream stream;
    encode_spec(spec, stream);
    EXPECT_EQ(decode_spec(stream), spec);
}

TEST(ArchSpec, UnknownTypeAndMalformedGeometryFailTyped) {
    ArchSpec unknown;
    unknown.type = "Transformer";
    try {
        build_layer(unknown, "some_bundle_file");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("some_bundle_file"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("Transformer"), std::string::npos) << e.what();
    }

    ArchSpec bad_linear;
    bad_linear.type = "Linear";
    bad_linear.ints = {3};  // needs [in, out, with_bias]
    EXPECT_THROW(build_layer(bad_linear), Error);

    ArchSpec negative_conv;
    negative_conv.type = "Conv2d";
    negative_conv.ints = {-3, 4, 3, 1, 1, 0};  // corrupt channel count
    try {
        build_layer(negative_conv, "corrupt_spec");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error) << e.what();
    }
}

TEST(ArchSpec, NonBinaryBooleanFieldsAreRefusedNotCoerced) {
    // A with_bias of 2 is corrupt spec data, not "truthy": silently
    // coercing it would accept a bit-flipped bundle as valid.
    ArchSpec linear;
    linear.type = "Linear";
    linear.ints = {3, 4, 2};
    try {
        build_layer(linear, "flipped_bundle");
        FAIL() << "expected ens::Error{checkpoint_error}";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("with_bias"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("flipped_bundle"), std::string::npos) << e.what();
    }

    ArchSpec conv;
    conv.type = "Conv2d";
    conv.ints = {3, 4, 3, 1, 1, -1};
    EXPECT_THROW(build_layer(conv), Error);

    ArchSpec noise;
    noise.type = "FixedNoise";
    noise.ints = {7, 2, 4, 4};  // trainable must be 0 or 1
    noise.floats = {0.1f};
    EXPECT_THROW(build_layer(noise), Error);
}

TEST(ArchSpec, HostileDecodeIsBoundedAndTyped) {
    // type string with an absurd length prefix must be refused before any
    // allocation happens.
    std::string bytes;
    const std::uint32_t absurd = 0xFFFFFFFFu;
    bytes.append(reinterpret_cast<const char*>(&absurd), 4);
    std::stringstream stream(bytes);
    try {
        decode_spec(stream, "hostile_spec");
        FAIL();
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::checkpoint_error);
        EXPECT_NE(std::string(e.what()).find("hostile_spec"), std::string::npos) << e.what();
    }

    // Truncated mid-tree: typed, naming the context.
    Rng rng(4);
    Sequential net;
    net.emplace<Linear>(2, 2, rng);
    std::stringstream encoded;
    encode_spec(describe_layer(net), encoded);
    const std::string full = encoded.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(decode_spec(truncated, "truncated_spec"), Error);
}

}  // namespace
}  // namespace ens::nn
