#include "nn/sequential.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/resnet.hpp"
#include "tensor/ops.hpp"

namespace ens::nn {
namespace {

std::unique_ptr<Sequential> make_net(Rng& rng) {
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(1, 2, 3, 1, 1, rng);
    net->emplace<ReLU>();
    net->emplace<GlobalAvgPool>();
    net->emplace<Linear>(2, 3, rng);
    return net;
}

TEST(Sequential, ForwardChainsLayers) {
    Rng rng(1);
    auto net = make_net(rng);
    const Tensor y = net->forward(Tensor::ones(Shape{2, 1, 4, 4}));
    EXPECT_EQ(y.shape(), Shape({2, 3}));
}

TEST(Sequential, BackwardReturnsInputGradient) {
    Rng rng(2);
    auto net = make_net(rng);
    const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, rng);
    const Tensor y = net->forward(x);
    const Tensor dx = net->backward(Tensor::ones(y.shape()));
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Sequential, ParametersAggregate) {
    Rng rng(3);
    auto net = make_net(rng);
    // conv weight + linear weight + linear bias
    EXPECT_EQ(net->parameters().size(), 3u);
    EXPECT_GT(parameter_count(*net), 0);
}

TEST(Sequential, SetTrainingPropagates) {
    Rng rng(4);
    auto net = make_net(rng);
    net->set_training(false);
    for (std::size_t i = 0; i < net->size(); ++i) {
        EXPECT_FALSE(net->layer(i).training());
    }
    net->set_training(true);
    EXPECT_TRUE(net->layer(0).training());
}

TEST(Sequential, PushBackSetsTrainingMode) {
    Sequential net;
    net.set_training(false);
    Rng rng(5);
    net.emplace<Conv2d>(1, 1, 3, 1, 1, rng);
    EXPECT_FALSE(net.layer(0).training());
}

TEST(Sequential, ReleaseSlicePartitions) {
    Rng rng(5);
    auto net = make_net(rng);
    auto head = net->release_slice(0, 2);
    EXPECT_EQ(head.size(), 2u);
    EXPECT_EQ(net->size(), 2u);
    EXPECT_EQ(net->layer(0).name(), "GlobalAvgPool");
}

TEST(Sequential, ReleaseSliceBoundsChecked) {
    Rng rng(6);
    auto net = make_net(rng);
    EXPECT_THROW(net->release_slice(3, 2), std::invalid_argument);
    EXPECT_THROW(net->release_slice(0, 9), std::invalid_argument);
}

TEST(Sequential, RejectsNullLayer) {
    Sequential net;
    EXPECT_THROW(net.push_back(nullptr), std::invalid_argument);
}

TEST(Sequential, NameListsLayers) {
    Rng rng(7);
    auto net = make_net(rng);
    const std::string name = net->name();
    EXPECT_NE(name.find("Conv2d"), std::string::npos);
    EXPECT_NE(name.find("Linear"), std::string::npos);
}

TEST(CopyParameters, TransfersWeights) {
    Rng rng_a(8);
    Rng rng_b(9);
    auto a = make_net(rng_a);
    auto b = make_net(rng_b);
    const Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng_a);
    EXPECT_NE(a->forward(x).to_vector(), b->forward(x).to_vector());
    copy_parameters(*a, *b);
    EXPECT_EQ(a->forward(x).to_vector(), b->forward(x).to_vector());
}

TEST(Checkpoint, FileRoundTrip) {
    Rng rng_a(10);
    Rng rng_b(11);
    auto a = make_net(rng_a);
    auto b = make_net(rng_b);
    const std::string path = ::testing::TempDir() + "/ens_ckpt_test.bin";
    save_parameters_file(*a, path);
    load_parameters_file(*b, path);
    const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, rng_a);
    EXPECT_EQ(a->forward(x).to_vector(), b->forward(x).to_vector());
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedStructure) {
    Rng rng(12);
    auto a = make_net(rng);
    Sequential different;
    different.emplace<Linear>(2, 2, rng);
    const std::string path = ::testing::TempDir() + "/ens_ckpt_bad.bin";
    save_parameters_file(*a, path);
    EXPECT_THROW(load_parameters_file(different, path), std::runtime_error);
    std::remove(path.c_str());
}

}  // namespace
TEST(Sequential, InsertSplicesAtPosition) {
    Rng rng(50);
    Sequential net;
    net.emplace<Linear>(3, 4, rng);
    net.emplace<Linear>(4, 2, rng);
    net.insert(1, std::make_unique<ReLU>());
    ASSERT_EQ(net.size(), 3u);
    EXPECT_EQ(net.layer(1).name(), "ReLU");
    // Still a working pipeline.
    EXPECT_EQ(net.forward(Tensor::zeros(Shape{2, 3})).shape(), (Shape{2, 2}));
    // Index == size() appends; out-of-range throws.
    net.insert(net.size(), std::make_unique<ReLU>());
    EXPECT_EQ(net.layer(3).name(), "ReLU");
    EXPECT_THROW(net.insert(99, std::make_unique<ReLU>()), std::invalid_argument);
    EXPECT_THROW(net.insert(0, nullptr), std::invalid_argument);
}

TEST(Sequential, InsertAdoptsTrainingMode) {
    Rng rng(51);
    Sequential net;
    net.emplace<Linear>(2, 2, rng);
    net.set_training(true);
    Layer& inserted = net.insert(0, std::make_unique<ReLU>());
    EXPECT_TRUE(inserted.training());
}


TEST(Checkpoint, StateRoundTripCarriesBatchNormStatistics) {
    Rng rng(60);
    Sequential net;
    net.emplace<Conv2d>(3, 4, 3, 1, 1, rng);
    net.emplace<BatchNorm2d>(4);
    net.emplace<ReLU>();

    // Drive training mode so the BN running stats move off their init.
    net.set_training(true);
    for (int step = 0; step < 4; ++step) {
        (void)net.forward(Tensor::randn(Shape{4, 3, 6, 6}, rng, 0.5f, 2.0f));
    }
    net.set_training(false);
    const Tensor probe = Tensor::randn(Shape{2, 3, 6, 6}, rng);
    const auto expected = net.forward(probe).to_vector();

    std::stringstream stream;
    save_state(net, stream);

    // A fresh net (different init, virgin BN stats) restores the state.
    Rng other(61);
    Sequential restored;
    restored.emplace<Conv2d>(3, 4, 3, 1, 1, other);
    restored.emplace<BatchNorm2d>(4);
    restored.emplace<ReLU>();
    restored.set_training(false);
    load_state(restored, stream);
    const auto actual = restored.forward(probe).to_vector();
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_FLOAT_EQ(expected[i], actual[i]) << "element " << i;
    }
}

TEST(Checkpoint, ParameterOnlyFormatDropsBatchNormStatistics) {
    // Regression guard for the documented difference between the formats:
    // load_parameters must NOT touch running statistics.
    Rng rng(62);
    Sequential net;
    net.emplace<BatchNorm2d>(3);
    net.set_training(true);
    (void)net.forward(Tensor::randn(Shape{8, 3, 4, 4}, rng, 1.0f, 3.0f));

    std::stringstream stream;
    save_parameters(net, stream);

    Sequential restored;
    restored.emplace<BatchNorm2d>(3);
    load_parameters(restored, stream);
    const auto buffers = restored.buffers();
    ASSERT_EQ(buffers.size(), 2u);
    // Virgin running mean is all zeros — untouched by the parameter format.
    for (const float v : buffers[0].tensor->to_vector()) {
        EXPECT_FLOAT_EQ(v, 0.0f);
    }
}

TEST(Checkpoint, BuffersTraversalMatchesBatchNormCount) {
    Rng rng(63);
    nn::ResNetConfig arch;
    arch.base_width = 4;
    arch.image_size = 16;
    arch.num_classes = 10;
    auto net = build_resnet18(arch, rng);
    // Head BN + 8 blocks x (2 BN + 3 projection BNs across stages 2-4).
    // Count instead structurally: every BN contributes exactly 2 buffers.
    std::size_t bn_params = 0;
    for (nn::Parameter* p : net->parameters()) {
        if (p->name.find("gamma") != std::string::npos) {
            ++bn_params;
        }
    }
    EXPECT_EQ(net->buffers().size(), 2 * bn_params);
}

}  // namespace ens::nn
