// Graph-compiler contract (nn/compile.hpp): every pass preserves
// eval-mode outputs (bit-exact where the rewrite keeps the arithmetic,
// tolerance-class where folding re-associates floats), a graph with no
// foldable pattern comes back functionally identical, and compiled
// layers refuse the things a runtime artifact must refuse (backward,
// re-entering training, spec export).

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/arch.hpp"
#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "nn/compile.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/noise.hpp"
#include "nn/resblock.hpp"
#include "nn/sequential.hpp"

namespace ens::nn {
namespace {

// Folding BN stats into weights re-associates float products; the moved
// bits stay far below this across the tiny shapes used here.
constexpr float kFoldTolerance = 1e-5f;

void expect_near(const Tensor& a, const Tensor& b, float tolerance) {
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(a.at(i), b.at(i), tolerance) << "at flat index " << i;
    }
}

void expect_bitwise(const Tensor& a, const Tensor& b) {
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_EQ(a.at(i), b.at(i)) << "at flat index " << i;
    }
}

/// Runs a few training batches so BatchNorm running stats diverge from
/// their init (otherwise folding would be trivially correct), then eval.
void warm(Layer& net, const Shape& input_shape, std::uint64_t seed) {
    Rng rng(seed);
    net.set_training(true);
    for (int batch = 0; batch < 3; ++batch) {
        net.forward(Tensor::randn(input_shape, rng));
    }
    net.set_training(false);
}

/// Duplicates `source` into `target` (same architecture required):
/// parameters AND buffers, so warmed BN running stats carry over —
/// copy_parameters alone would not.
void duplicate_state(Layer& source, Layer& target) {
    std::stringstream stream;
    save_state(source, stream);
    load_state(target, stream);
}

std::unique_ptr<Sequential> make_conv_bn_relu(std::uint64_t seed) {
    Rng rng(seed);
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(2, 3, 3, 1, 1, rng);
    net->emplace<BatchNorm2d>(3);
    net->emplace<ReLU>();
    return net;
}

TEST(CompileFoldBatchNorm, MatchesWarmedEvalReferenceWithinTolerance) {
    auto reference = make_conv_bn_relu(11);
    warm(*reference, Shape{2, 2, 6, 6}, 101);

    auto subject = make_conv_bn_relu(11);
    duplicate_state(*reference, *subject);
    subject->set_training(false);

    CompileReport report;
    LayerPtr compiled = compile_for_inference(std::move(subject), {}, &report);

    // Conv+BN folded into one biased conv, ReLU fused into its epilogue.
    const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(seq->size(), 1u);
    const auto* conv = dynamic_cast<const Conv2d*>(&seq->layer(0));
    ASSERT_NE(conv, nullptr);
    EXPECT_TRUE(conv->has_bias());
    EXPECT_EQ(conv->epilogue(), Epilogue::relu);
    EXPECT_TRUE(report.changed());

    Rng data(202);
    for (int trial = 0; trial < 3; ++trial) {
        const Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, data);
        expect_near(compiled->forward(x), reference->forward(x), kFoldTolerance);
    }
}

TEST(CompileFuseActivations, IsBitExactAndDropsActivationLayers) {
    auto build = [] {
        Rng rng(21);
        auto net = std::make_unique<Sequential>();
        net->emplace<Linear>(5, 7, rng);
        net->emplace<ReLU>();
        net->emplace<Linear>(7, 4, rng);
        net->emplace<LeakyReLU>(0.2f);
        net->set_training(false);
        return net;
    };
    auto reference = build();
    CompileReport report;
    LayerPtr compiled = compile_for_inference(build(), {}, &report);

    const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(seq->size(), 2u);
    EXPECT_EQ(dynamic_cast<const Linear&>(seq->layer(0)).epilogue(), Epilogue::relu);
    EXPECT_EQ(dynamic_cast<const Linear&>(seq->layer(1)).epilogue(), Epilogue::leaky_relu);

    // Fusion keeps the exact scalar expression of the standalone layers:
    // outputs are bit-identical, including negative pre-activations
    // through the leaky slope.
    Rng data(303);
    for (int trial = 0; trial < 3; ++trial) {
        const Tensor x = Tensor::randn(Shape{3, 5}, data);
        expect_bitwise(compiled->forward(x), reference->forward(x));
    }
}

TEST(CompileBakeNoise, PreLinearMaskFoldsIntoBias) {
    auto build = [] {
        Rng rng(31);
        auto net = std::make_unique<Sequential>();
        net->emplace<FixedNoise>(Shape{6}, 0.5f, rng, /*trainable=*/false);
        net->emplace<Linear>(6, 3, rng);
        net->set_training(false);
        return net;
    };
    auto reference = build();
    CompileReport report;
    LayerPtr compiled = compile_for_inference(build(), {}, &report);

    const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
    ASSERT_NE(seq, nullptr);
    ASSERT_EQ(seq->size(), 1u);  // the noise layer is gone
    EXPECT_NE(dynamic_cast<const Linear*>(&seq->layer(0)), nullptr);

    Rng data(404);
    const Tensor x = Tensor::randn(Shape{4, 6}, data);
    // y = W(x + m) + b re-associates into Wx + (b + Wm): tolerance-class.
    expect_near(compiled->forward(x), reference->forward(x), kFoldTolerance);
}

TEST(CompileBakeNoise, PostLinearBakesThenActivationFuses) {
    // [Linear, FixedNoise, ReLU]: the bake runs BEFORE fusion, so the mask
    // folds into the bias first and the ReLU then fuses into the SAME
    // Linear — order matters, relu(x) + m != relu(x + m).
    auto build = [] {
        Rng rng(41);
        auto net = std::make_unique<Sequential>();
        net->emplace<Linear>(4, 5, rng);
        net->emplace<FixedNoise>(Shape{5}, 0.5f, rng, /*trainable=*/false);
        net->emplace<ReLU>();
        net->set_training(false);
        return net;
    };
    auto reference = build();
    LayerPtr compiled = compile_for_inference(build());

    const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
    ASSERT_NE(seq, nullptr);
    ASSERT_EQ(seq->size(), 1u);
    const auto* linear = dynamic_cast<const Linear*>(&seq->layer(0));
    ASSERT_NE(linear, nullptr);
    EXPECT_EQ(linear->epilogue(), Epilogue::relu);

    Rng data(505);
    const Tensor x = Tensor::randn(Shape{2, 4}, data);
    expect_near(compiled->forward(x), reference->forward(x), kFoldTolerance);
}

TEST(CompileBakeNoise, TrainableAndNonAdjacentMasksStayAndStrictModeRefuses) {
    auto build = [] {
        Rng rng(51);
        auto net = std::make_unique<Sequential>();
        // ReLU between Linear and mask: relu(x) + m has no bias-fold.
        net->emplace<Linear>(4, 4, rng);
        net->emplace<ReLU>();
        net->emplace<FixedNoise>(Shape{4}, 0.5f, rng, /*trainable=*/false);
        net->set_training(false);
        return net;
    };
    // Default mode: degrade to identity on the unbakeable mask (the ReLU
    // still fuses; the FixedNoise survives).
    {
        auto reference = build();
        LayerPtr compiled = compile_for_inference(build());
        const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
        ASSERT_NE(seq, nullptr);
        ASSERT_EQ(seq->size(), 2u);
        EXPECT_NE(dynamic_cast<const FixedNoise*>(&seq->layer(1)), nullptr);
        Rng data(606);
        const Tensor x = Tensor::randn(Shape{2, 4}, data);
        expect_bitwise(compiled->forward(x), reference->forward(x));
    }
    // Strict mode: typed refusal naming the contract.
    CompileOptions strict;
    strict.require_noise_baking = true;
    try {
        compile_for_inference(build(), strict);
        FAIL() << "expected ens::Error{compile_error}";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::compile_error);
    }
    // Trainable masks are never baked even when adjacent to a Linear.
    {
        Rng rng(52);
        auto net = std::make_unique<Sequential>();
        net->emplace<FixedNoise>(Shape{4}, 0.5f, rng, /*trainable=*/true);
        net->emplace<Linear>(4, 2, rng);
        net->set_training(false);
        CompileReport report;
        LayerPtr compiled = compile_for_inference(std::move(net), {}, &report);
        const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
        ASSERT_NE(seq, nullptr);
        EXPECT_EQ(seq->size(), 2u);
    }
}

TEST(CompileIdentity, UnfoldableGraphComesBackBitExactAndUnchanged) {
    auto build = [] {
        Rng rng(61);
        auto net = std::make_unique<Sequential>();
        net->emplace<Linear>(6, 6, rng);
        net->emplace<Linear>(6, 3, rng);
        net->set_training(false);
        return net;
    };
    auto reference = build();
    CompileReport report;
    LayerPtr compiled = compile_for_inference(build(), {}, &report);

    EXPECT_FALSE(report.changed());
    const auto* seq = dynamic_cast<const Sequential*>(compiled.get());
    ASSERT_NE(seq, nullptr);
    EXPECT_EQ(seq->size(), 2u);

    Rng data(707);
    const Tensor x = Tensor::randn(Shape{3, 6}, data);
    expect_bitwise(compiled->forward(x), reference->forward(x));
}

TEST(CompileResidual, BasicBlockParityWithAndWithoutProjection) {
    struct Case {
        std::int64_t in, out, stride;
    };
    for (const Case& c : {Case{3, 3, 1}, Case{3, 6, 2}}) {
        Rng rng(71);
        auto reference = std::make_unique<BasicBlock>(c.in, c.out, c.stride, rng);
        warm(*reference, Shape{2, c.in, 8, 8}, 808);

        Rng rng2(71);
        LayerPtr subject = std::make_unique<BasicBlock>(c.in, c.out, c.stride, rng2);
        duplicate_state(*reference, *subject);
        subject->set_training(false);

        CompileReport report;
        LayerPtr compiled = compile_for_inference(std::move(subject), {}, &report);
        const auto* residual = dynamic_cast<const CompiledResidual*>(compiled.get());
        ASSERT_NE(residual, nullptr);
        EXPECT_EQ(residual->has_projection(), c.stride != 1);
        EXPECT_EQ(residual->conv1().epilogue(), Epilogue::relu);
        EXPECT_TRUE(report.changed());

        Rng data(909);
        const Tensor x = Tensor::randn(Shape{2, c.in, 8, 8}, data);
        expect_near(compiled->forward(x), reference->forward(x), kFoldTolerance);
    }
}

TEST(CompileRefusals, CompiledLayersAreInferenceOnly) {
    Rng rng(81);
    auto net = std::make_unique<Sequential>();
    net->emplace<Linear>(4, 4, rng);
    net->emplace<ReLU>();
    net->set_training(false);
    LayerPtr compiled = compile_for_inference(std::move(net));
    auto& linear = dynamic_cast<Linear&>(dynamic_cast<Sequential&>(*compiled).layer(0));

    linear.forward(Tensor::randn(Shape{2, 4}, rng));
    EXPECT_THROW(linear.backward(Tensor::ones(Shape{2, 4})), std::runtime_error);
    // A fused layer has no spec representation — export must refuse, or a
    // bundle written from a compiled graph would rebuild without the fold.
    EXPECT_THROW(describe_layer(linear), std::invalid_argument);

    Rng rng2(82);
    LayerPtr block = std::make_unique<BasicBlock>(3, 3, 1, rng2);
    block->set_training(false);
    LayerPtr residual = compile_for_inference(std::move(block));
    EXPECT_THROW(residual->backward(Tensor::ones(Shape{1, 3, 4, 4})), std::runtime_error);
    EXPECT_THROW(residual->set_training(true), std::invalid_argument);
    residual->set_training(false);  // re-asserting eval is fine
}

TEST(CompileRepack, AssignParametersInvalidatesPackedCachesAndRepackRebuilds) {
    // Regression for the PR-7 invalidation hole: a pass that swaps weights
    // after prepare_inference() must not leave a stale packed GEMM cache
    // serving the OLD weights.
    Rng rng(91);
    Linear linear(5, 4, rng);
    linear.set_training(false);
    linear.prepare_inference();
    ASSERT_TRUE(linear.weights_packed());

    Rng rng2(92);
    Linear donor(5, 4, rng2);
    const Tensor new_bias = donor.bias().value.clone();
    linear.assign_parameters(donor.weight().value, &new_bias);
    EXPECT_FALSE(linear.weights_packed());  // cache invalidated, not stale

    const Tensor x = Tensor::randn(Shape{3, 5}, rng);
    donor.set_training(false);
    expect_bitwise(linear.forward(x), donor.forward(x));

    // compile_for_inference's repack pass rebuilds caches eagerly from the
    // REWRITTEN weights.
    auto net = std::make_unique<Sequential>();
    Rng rng3(93);
    net->emplace<Conv2d>(2, 3, 3, 1, 1, rng3);
    net->emplace<BatchNorm2d>(3);
    warm(*net, Shape{1, 2, 5, 5}, 111);
    LayerPtr compiled = compile_for_inference(std::move(net));
    const auto& conv =
        dynamic_cast<const Conv2d&>(dynamic_cast<const Sequential&>(*compiled).layer(0));
    EXPECT_TRUE(conv.weights_packed());
}

}  // namespace
}  // namespace ens::nn
