#include "nn/resnet.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/resblock.hpp"

namespace ens::nn {
namespace {

ResNetConfig small_config() {
    ResNetConfig config;
    config.base_width = 4;
    config.image_size = 16;
    config.num_classes = 10;
    return config;
}

TEST(ResNet18, OutputShape) {
    Rng rng(1);
    auto net = build_resnet18(small_config(), rng);
    const Tensor y = net->forward(Tensor::zeros(Shape{2, 3, 16, 16}));
    EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(ResNet18, LayerCountAndOrdering) {
    Rng rng(2);
    const ResNetConfig config = small_config();
    auto net = build_resnet18(config, rng);
    // conv + bn + relu + maxpool + 8 blocks + gap + linear = 14
    EXPECT_EQ(net->size(), 14u);
    EXPECT_NE(dynamic_cast<const Linear*>(&net->layer(net->size() - 1)), nullptr);
    EXPECT_NE(dynamic_cast<const GlobalAvgPool*>(&net->layer(net->size() - 2)), nullptr);
    EXPECT_NE(dynamic_cast<const BasicBlock*>(&net->layer(4)), nullptr);
}

TEST(ResNet18, NoMaxpoolVariant) {
    Rng rng(3);
    ResNetConfig config = small_config();
    config.include_maxpool = false;
    auto net = build_resnet18(config, rng);
    EXPECT_EQ(net->size(), 13u);
    const Tensor y = net->forward(Tensor::zeros(Shape{1, 3, 16, 16}));
    EXPECT_EQ(y.shape(), Shape({1, 10}));
}

TEST(ResNet18, SplitGeometryMatchesPaper) {
    // §IV-A with base_width 64: CIFAR-10 (32px + maxpool) -> [64,16,16];
    // CIFAR-100 (32px, no maxpool) -> [64,32,32]; CelebA (64px, no
    // maxpool) -> [64,64,64].
    ResNetConfig cifar10;
    cifar10.image_size = 32;
    cifar10.base_width = 64;
    cifar10.include_maxpool = true;
    EXPECT_EQ(resnet18_split_channels(cifar10), 64);
    EXPECT_EQ(resnet18_split_hw(cifar10), 16);
    EXPECT_EQ(resnet18_head_layer_count(cifar10), 4u);
    EXPECT_EQ(resnet18_feature_width(cifar10), 512);

    ResNetConfig cifar100 = cifar10;
    cifar100.include_maxpool = false;
    cifar100.num_classes = 100;
    EXPECT_EQ(resnet18_split_hw(cifar100), 32);
    EXPECT_EQ(resnet18_head_layer_count(cifar100), 3u);

    ResNetConfig celeba = cifar100;
    celeba.image_size = 64;
    EXPECT_EQ(resnet18_split_hw(celeba), 64);
}

TEST(ResNet18, FullWidthParameterCount) {
    // The canonical CIFAR ResNet-18 has ~11.17M parameters; our builder
    // must land in that neighbourhood (exact value depends on the conv1
    // variant and projection shortcuts).
    Rng rng(4);
    ResNetConfig config;
    config.base_width = 64;
    config.image_size = 32;
    config.num_classes = 10;
    auto net = build_resnet18(config, rng);
    const std::int64_t params = parameter_count(*net);
    EXPECT_GT(params, 10'500'000);
    EXPECT_LT(params, 11'500'000);
}

TEST(ResNet18, BackwardProducesInputGradient) {
    Rng rng(5);
    auto net = build_resnet18(small_config(), rng);
    const Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
    const Tensor y = net->forward(x);
    const Tensor dx = net->backward(Tensor::ones(y.shape()));
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(ResNet18, RejectsBadGeometry) {
    Rng rng(6);
    ResNetConfig config = small_config();
    config.image_size = 20;  // not divisible by 8
    EXPECT_THROW(build_resnet18(config, rng), std::invalid_argument);
    config.image_size = 16;
    config.base_width = 0;
    EXPECT_THROW(build_resnet18(config, rng), std::invalid_argument);
}

TEST(BasicBlock, ProjectionAppearsWhenNeeded) {
    Rng rng(7);
    BasicBlock same(4, 4, 1, rng);
    EXPECT_FALSE(same.has_projection());
    BasicBlock widen(4, 8, 1, rng);
    EXPECT_TRUE(widen.has_projection());
    BasicBlock stride(4, 4, 2, rng);
    EXPECT_TRUE(stride.has_projection());
}

TEST(BasicBlock, DownsamplesWithStride) {
    Rng rng(8);
    BasicBlock block(4, 8, 2, rng);
    const Tensor y = block.forward(Tensor::zeros(Shape{2, 4, 8, 8}));
    EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

}  // namespace
}  // namespace ens::nn
