#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "data/synth_cifar10.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace ens::train {
namespace {

std::unique_ptr<nn::Sequential> tiny_cnn(Rng& rng, std::int64_t classes) {
    auto net = std::make_unique<nn::Sequential>();
    net->emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
    net->emplace<nn::BatchNorm2d>(8);
    net->emplace<nn::ReLU>();
    net->emplace<nn::MaxPool2d>(2);
    net->emplace<nn::Conv2d>(8, 16, 3, 1, 1, rng);
    net->emplace<nn::BatchNorm2d>(16);
    net->emplace<nn::ReLU>();
    net->emplace<nn::GlobalAvgPool>();
    net->emplace<nn::Linear>(16, classes, rng);
    return net;
}

TEST(Trainer, LearnsSyntheticClasses) {
    const data::SynthCifar10 train_set(256, 7, 16);
    Rng rng(1);
    auto net = tiny_cnn(rng, 10);
    net->set_training(true);

    TrainOptions options;
    options.epochs = 6;
    options.batch_size = 32;
    options.learning_rate = 0.2;
    options.seed = 3;

    const TrainSummary summary = train_classifier(
        [&net](const Tensor& x) { return net->forward(x); },
        [&net](const Tensor& g) { net->backward(g); }, net->parameters(), train_set, options);

    EXPECT_GT(summary.steps, 0u);
    EXPECT_GT(summary.final_train_accuracy, 0.45f);  // >> 10% chance

    net->set_training(false);
    const data::SynthCifar10 test_set(128, 8, 16);
    const float test_accuracy = evaluate_accuracy(
        [&net](const Tensor& x) { return net->forward(x); }, test_set, 32);
    EXPECT_GT(test_accuracy, 0.35f);
}

TEST(Trainer, LossDecreases) {
    const data::SynthCifar10 train_set(128, 9, 16);
    Rng rng(2);
    auto net = tiny_cnn(rng, 10);
    net->set_training(true);

    TrainOptions one_epoch;
    one_epoch.epochs = 1;
    one_epoch.batch_size = 32;
    one_epoch.learning_rate = 0.05;
    one_epoch.cosine_schedule = false;

    const auto run_epoch = [&] {
        return train_classifier([&net](const Tensor& x) { return net->forward(x); },
                                [&net](const Tensor& g) { net->backward(g); },
                                net->parameters(), train_set, one_epoch)
            .final_loss;
    };
    const float first = run_epoch();
    float last = first;
    for (int i = 0; i < 3; ++i) {
        last = run_epoch();
    }
    EXPECT_LT(last, first);
}

TEST(Trainer, DeterministicGivenSeed) {
    const data::SynthCifar10 train_set(64, 11, 16);
    const auto run = [&train_set] {
        Rng rng(5);
        auto net = tiny_cnn(rng, 10);
        net->set_training(true);
        TrainOptions options;
        options.epochs = 1;
        options.batch_size = 16;
        options.seed = 17;
        train_classifier([&net](const Tensor& x) { return net->forward(x); },
                         [&net](const Tensor& g) { net->backward(g); }, net->parameters(),
                         train_set, options);
        net->set_training(false);
        return net->forward(Tensor::ones(Shape{1, 3, 16, 16})).to_vector();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ens::train
