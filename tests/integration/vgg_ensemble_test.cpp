// Integration: the split/selector/attack machinery is backbone-agnostic.
//
// The paper describes Ensembler on ResNet-18, but nothing in Eq. 1-3
// depends on residual bodies. This suite wires a P-of-N selective ensemble
// out of VGG split models by hand — head, N plain-CNN bodies, selector,
// tail — over the real wire protocol, and runs the MIA decoder machinery
// against it, proving every piece composes without the ResNet-specific
// helpers.

#include <gtest/gtest.h>

#include <memory>

#include "core/selector.hpp"
#include "data/synth_cifar10.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/vgg.hpp"
#include "split/multiparty.hpp"
#include "split/split_model.hpp"

namespace ens {
namespace {

struct VggEnsemble {
    nn::VggConfig config;
    std::unique_ptr<nn::Sequential> head;
    std::vector<std::unique_ptr<nn::Sequential>> bodies;
    std::unique_ptr<nn::Sequential> tail;
    std::vector<nn::Layer*> body_views;

    explicit VggEnsemble(std::size_t n, std::size_t p) {
        config.base_width = 4;
        config.image_size = 8;
        config.num_classes = 10;
        config.stages = 2;

        Rng rng(41);
        // Head + tail carved from one VGG; bodies from N more.
        split::SplitModel first =
            split::split_sequential(nn::build_vgg(config, rng), nn::vgg_head_layer_count(config),
                                    /*tail_layers=*/1);
        head = std::move(first.head);
        bodies.push_back(std::move(first.body));
        for (std::size_t i = 1; i < n; ++i) {
            split::SplitModel extra = split::split_sequential(
                nn::build_vgg(config, rng), nn::vgg_head_layer_count(config), 1);
            bodies.push_back(std::move(extra.body));
        }
        // Fresh tail sized for the P-concat of body features.
        tail = std::make_unique<nn::Sequential>();
        tail->emplace<nn::Linear>(static_cast<std::int64_t>(p) * nn::vgg_feature_width(config),
                                  config.num_classes, rng);
        for (auto& body : bodies) {
            body->set_training(false);
            body_views.push_back(body.get());
        }
        head->set_training(false);
        tail->set_training(false);
    }
};

TEST(VggEnsembleIntegration, SelectorConcatFeedsTheTail) {
    VggEnsemble ensemble(4, 2);
    const core::Selector selector(4, {1, 3});
    Rng rng(1);
    const Tensor x = Tensor::randn(Shape{3, 3, 8, 8}, rng);

    const Tensor wire = ensemble.head->forward(x);
    std::vector<Tensor> features;
    for (auto& body : ensemble.bodies) {
        features.push_back(body->forward(wire));
    }
    const Tensor combined = selector.apply(features);
    EXPECT_EQ(combined.shape(),
              (Shape{3, 2 * nn::vgg_feature_width(ensemble.config)}));
    const Tensor logits = ensemble.tail->forward(combined);
    EXPECT_EQ(logits.shape(), (Shape{3, 10}));
}

TEST(VggEnsembleIntegration, MultipartyDeploymentRunsVggBodies) {
    VggEnsemble ensemble(4, 2);
    const core::Selector selector(4, {0, 2});
    const split::Combiner combiner = [&selector](const std::vector<Tensor>& features) {
        return selector.apply(features);
    };
    split::MultipartyDeployment deployment(*ensemble.head, ensemble.body_views, *ensemble.tail,
                                           selector.indices(), combiner,
                                           split::ShardPlan::round_robin(4, 2),
                                           split::WireFormat::q16);
    Rng rng(2);
    const Tensor logits = deployment.infer(Tensor::randn(Shape{2, 3, 8, 8}, rng));
    EXPECT_EQ(logits.shape(), (Shape{2, 10}));
    // Both servers saw traffic; neither holds both selected bodies
    // (round-robin: S0={0,2}, S1={1,3} -> S0 holds both; blocks: S0={0,1}).
    const auto traffic = deployment.traffic();
    EXPECT_GT(traffic[0].downlink.bytes, 0u);
    EXPECT_GT(traffic[1].downlink.bytes, 0u);
}

TEST(VggEnsembleIntegration, GradientsFlowThroughSelectedVggBodies) {
    // One training step of head+tail against frozen VGG bodies through the
    // selector — the stage-3 wiring, on the alternate backbone.
    VggEnsemble ensemble(3, 2);
    const core::Selector selector(3, {0, 2});
    ensemble.head->set_training(true);
    ensemble.tail->set_training(true);
    for (auto& body : ensemble.bodies) {
        nn::set_requires_grad(*body, false);
        body->set_training(false);
    }

    Rng rng(3);
    const Tensor x = Tensor::uniform(Shape{4, 3, 8, 8}, rng);
    const std::vector<std::int64_t> labels = {0, 1, 2, 3};

    const auto forward = [&] {
        const Tensor wire = ensemble.head->forward(x);
        std::vector<Tensor> selected;
        for (const std::size_t i : selector.indices()) {
            selected.push_back(ensemble.bodies[i]->forward(wire));
        }
        return ensemble.tail->forward(selector.combine_selected(selected));
    };

    const nn::LossResult before = nn::softmax_cross_entropy(forward(), labels);
    const Tensor d_combined = ensemble.tail->backward(before.grad);
    const std::vector<Tensor> d_selected = selector.split_gradient(d_combined);
    Tensor d_wire;
    std::size_t k = 0;
    for (const std::size_t i : selector.indices()) {
        Tensor d_in = ensemble.bodies[i]->backward(d_selected[k++]);
        if (d_wire.defined()) {
            d_wire.add_(d_in);
        } else {
            d_wire = std::move(d_in);
        }
    }
    ensemble.head->backward(d_wire);

    bool any_head_grad = false;
    for (nn::Parameter* param : ensemble.head->parameters()) {
        for (const float g : param->grad.to_vector()) {
            any_head_grad = any_head_grad || g != 0.0f;
        }
        param->value.axpy_(-0.05f, param->grad);
        param->zero_grad();
    }
    EXPECT_TRUE(any_head_grad);
    for (nn::Parameter* param : ensemble.tail->parameters()) {
        param->value.axpy_(-0.05f, param->grad);
        param->zero_grad();
    }
    const nn::LossResult after = nn::softmax_cross_entropy(forward(), labels);
    EXPECT_LT(after.value, before.value);
}

}  // namespace
}  // namespace ens
