// End-to-end integration at miniature scale: the full Table-I/III flow on
// a tiny architecture. Verifies that the paper's qualitative claims hold
// structurally in this reproduction:
//   * the Ensembler pipeline trains, predicts, and can be attacked;
//   * the adaptive attack is well-defined over all N bodies;
//   * the Table III latency model ranks Standard CI < Ensembler << STAMP;
//   * the deployed ensembler runs over the real split-inference session
//     with the Selector as the client-side combiner.

#include <gtest/gtest.h>

#include "attack/mia.hpp"
#include "core/ensembler.hpp"
#include "data/synth_cifar10.hpp"
#include "defense/baselines.hpp"
#include "latency/estimator.hpp"
#include "latency/profiles.hpp"
#include "latency/stamp.hpp"
#include "split/channel.hpp"
#include "split/codec.hpp"
#include "split/session.hpp"

namespace ens {
namespace {

struct E2eFixture : public ::testing::Test {
    data::SynthCifar10 train_set{160, 601, 16};
    data::SynthCifar10 test_set{48, 602, 16};
    data::SynthCifar10 aux_set{96, 603, 16};
    nn::ResNetConfig arch;
    core::EnsemblerConfig config;
    attack::MiaOptions mia_options;

    void SetUp() override {
        arch.base_width = 4;
        arch.image_size = 16;
        arch.num_classes = 10;

        config.num_networks = 3;
        config.num_selected = 2;
        config.stage1_options.epochs = 1;
        config.stage1_options.batch_size = 32;
        config.stage3_options.epochs = 1;
        config.stage3_options.batch_size = 32;
        config.seed = 11;

        mia_options.shadow_options.epochs = 1;
        mia_options.shadow_options.batch_size = 32;
        mia_options.decoder_options.epochs = 1;
        mia_options.eval_samples = 24;
    }
};

TEST_F(E2eFixture, EnsemblerSurvivesFullAttackSuite) {
    core::Ensembler ensembler(arch, config);
    ensembler.fit(train_set);
    split::DeployedPipeline victim = ensembler.deployed();

    attack::ModelInversionAttack attack(arch, mia_options);
    const attack::BestOfN single = attack.attack_best_of_n(victim, aux_set, test_set);
    const attack::AttackOutcome adaptive =
        attack.attack_adaptive(victim.bodies, aux_set, test_set, victim.transmit);

    ASSERT_EQ(single.per_body.size(), 3u);
    for (const attack::AttackOutcome& outcome : single.per_body) {
        EXPECT_GE(outcome.ssim, -1.0f);
        EXPECT_LE(outcome.ssim, 1.0f);
        EXPECT_GT(outcome.psnr, 0.0f);
    }
    EXPECT_GE(adaptive.ssim, -1.0f);
    EXPECT_LE(adaptive.ssim, 1.0f);
}

TEST_F(E2eFixture, EnsemblerRunsOverSplitSessionWithSelectorCombiner) {
    core::Ensembler ensembler(arch, config);
    ensembler.fit(train_set);

    // Server returns ALL N feature maps; the client's secret Selector is
    // the combiner (Fig. 2 step 3).
    std::vector<nn::Layer*> bodies;
    for (std::size_t i = 0; i < config.num_networks; ++i) {
        ensembler.member_body(i).set_training(false);
        bodies.push_back(&ensembler.member_body(i));
    }
    const core::Selector& selector = ensembler.selector();

    split::InProcChannel uplink;
    split::InProcChannel downlink;
    ensembler.client_head().set_training(false);
    ensembler.client_tail().set_training(false);

    // Compose head+noise via a tiny adapter layer list: reuse the client
    // head then add noise inside the combiner-side lambda is not possible
    // with CollaborativeSession's Layer interface, so wrap with Sequential
    // holding references is not allowed (ownership). Instead check the
    // equivalent manual wire: transmit -> bodies -> selector -> tail.
    const data::Batch batch = data::materialize(test_set, 0, 4);
    split::DeployedPipeline victim = ensembler.deployed();
    const Tensor wire = victim.transmit(batch.images);
    uplink.send(split::encode_tensor(wire));
    const Tensor server_in = split::decode_tensor(uplink.recv());
    std::vector<Tensor> returned;
    for (nn::Layer* body : bodies) {
        downlink.send(split::encode_tensor(body->forward(server_in)));
    }
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        returned.push_back(split::decode_tensor(downlink.recv()));
    }
    const Tensor combined = selector.apply(returned);
    const Tensor logits = ensembler.client_tail().forward(combined);

    const Tensor direct = ensembler.predict(batch.images);
    ASSERT_EQ(logits.shape(), direct.shape());
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        EXPECT_NEAR(logits.at(i), direct.at(i), 1e-4f);
    }
    // Downlink carried one message per server net.
    EXPECT_EQ(downlink.stats().messages, config.num_networks);
}

TEST_F(E2eFixture, LatencyOrderingMatchesTable3) {
    Rng rng(1);
    split::SplitModel parts = split::build_split_resnet18(arch, rng);

    latency::PipelineSpec spec;
    spec.client_head = parts.head.get();
    spec.server_body = parts.body.get();
    spec.client_tail = parts.tail.get();
    spec.input_shape = Shape{16, 3, 16, 16};
    spec.tail_input_width = nn::resnet18_feature_width(arch);
    spec.num_server_nets = 1;

    const auto edge = latency::raspberry_pi_profile();
    const auto cloud = latency::a6000_profile();
    const auto link = latency::wired_lan_profile();

    const latency::LatencyBreakdown standard = latency::estimate_latency(spec, edge, cloud, link);
    latency::PipelineSpec ens_spec = spec;
    ens_spec.num_server_nets = config.num_networks;
    const latency::LatencyBreakdown ensembler_cost =
        latency::estimate_latency(ens_spec, edge, cloud, link);
    const latency::LatencyBreakdown stamp = latency::estimate_stamp(spec, edge, cloud, link);

    EXPECT_LT(standard.total_s(), ensembler_cost.total_s());
    EXPECT_LT(ensembler_cost.total_s(), stamp.total_s());
}

TEST_F(E2eFixture, SingleBaselineComparableToEnsemblerAccuracy) {
    defense::ExperimentEnv env{train_set, test_set, aux_set, arch, config.stage1_options, 21};
    defense::ProtectedModel single = defense::train_single_gaussian(env, config.noise_stddev);
    const float single_accuracy = single.evaluate_accuracy(test_set, 32);

    core::Ensembler ensembler(arch, config);
    ensembler.fit(train_set);
    const float ensembler_accuracy = ensembler.evaluate_accuracy(test_set, 32);

    // One epoch at width 4 only sanity-checks that neither pipeline
    // collapses or NaNs; real accuracy comparisons live in the benches.
    EXPECT_GT(single_accuracy, 0.04f);
    EXPECT_GT(ensembler_accuracy, 0.04f);
}

}  // namespace
}  // namespace ens
