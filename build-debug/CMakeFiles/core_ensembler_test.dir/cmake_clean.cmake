file(REMOVE_RECURSE
  "CMakeFiles/core_ensembler_test.dir/tests/core/ensembler_test.cpp.o"
  "CMakeFiles/core_ensembler_test.dir/tests/core/ensembler_test.cpp.o.d"
  "core_ensembler_test"
  "core_ensembler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ensembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
