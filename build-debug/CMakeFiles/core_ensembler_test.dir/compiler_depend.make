# Empty compiler generated dependencies file for core_ensembler_test.
# This may be replaced when dependencies are built.
