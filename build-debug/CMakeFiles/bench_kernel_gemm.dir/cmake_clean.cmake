file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_gemm.dir/bench/kernel_gemm.cpp.o"
  "CMakeFiles/bench_kernel_gemm.dir/bench/kernel_gemm.cpp.o.d"
  "bench_kernel_gemm"
  "bench_kernel_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
