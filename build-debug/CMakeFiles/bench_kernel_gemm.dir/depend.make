# Empty dependencies file for bench_kernel_gemm.
# This may be replaced when dependencies are built.
