file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_overload.dir/bench/serve_overload.cpp.o"
  "CMakeFiles/bench_serve_overload.dir/bench/serve_overload.cpp.o.d"
  "bench_serve_overload"
  "bench_serve_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
