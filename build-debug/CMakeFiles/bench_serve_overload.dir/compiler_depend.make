# Empty compiler generated dependencies file for bench_serve_overload.
# This may be replaced when dependencies are built.
