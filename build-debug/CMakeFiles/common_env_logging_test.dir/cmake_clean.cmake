file(REMOVE_RECURSE
  "CMakeFiles/common_env_logging_test.dir/tests/common/env_logging_test.cpp.o"
  "CMakeFiles/common_env_logging_test.dir/tests/common/env_logging_test.cpp.o.d"
  "common_env_logging_test"
  "common_env_logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_env_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
