# Empty dependencies file for common_env_logging_test.
# This may be replaced when dependencies are built.
