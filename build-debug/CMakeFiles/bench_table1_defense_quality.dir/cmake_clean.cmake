file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_defense_quality.dir/bench/table1_defense_quality.cpp.o"
  "CMakeFiles/bench_table1_defense_quality.dir/bench/table1_defense_quality.cpp.o.d"
  "bench_table1_defense_quality"
  "bench_table1_defense_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_defense_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
