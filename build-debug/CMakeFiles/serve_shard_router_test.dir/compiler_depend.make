# Empty compiler generated dependencies file for serve_shard_router_test.
# This may be replaced when dependencies are built.
