file(REMOVE_RECURSE
  "CMakeFiles/serve_shard_router_test.dir/tests/serve/shard_router_test.cpp.o"
  "CMakeFiles/serve_shard_router_test.dir/tests/serve/shard_router_test.cpp.o.d"
  "serve_shard_router_test"
  "serve_shard_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_shard_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
