# Empty dependencies file for bench_table2_ablation.
# This may be replaced when dependencies are built.
