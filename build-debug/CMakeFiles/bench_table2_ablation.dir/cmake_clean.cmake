file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ablation.dir/bench/table2_ablation.cpp.o"
  "CMakeFiles/bench_table2_ablation.dir/bench/table2_ablation.cpp.o.d"
  "bench_table2_ablation"
  "bench_table2_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
