file(REMOVE_RECURSE
  "CMakeFiles/property_substrate_properties_test.dir/tests/property/substrate_properties_test.cpp.o"
  "CMakeFiles/property_substrate_properties_test.dir/tests/property/substrate_properties_test.cpp.o.d"
  "property_substrate_properties_test"
  "property_substrate_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_substrate_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
