# Empty dependencies file for property_substrate_properties_test.
# This may be replaced when dependencies are built.
