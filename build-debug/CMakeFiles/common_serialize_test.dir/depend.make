# Empty dependencies file for common_serialize_test.
# This may be replaced when dependencies are built.
