file(REMOVE_RECURSE
  "CMakeFiles/common_serialize_test.dir/tests/common/serialize_test.cpp.o"
  "CMakeFiles/common_serialize_test.dir/tests/common/serialize_test.cpp.o.d"
  "common_serialize_test"
  "common_serialize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
