file(REMOVE_RECURSE
  "CMakeFiles/serve_protocol_test.dir/tests/serve/protocol_test.cpp.o"
  "CMakeFiles/serve_protocol_test.dir/tests/serve/protocol_test.cpp.o.d"
  "serve_protocol_test"
  "serve_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
