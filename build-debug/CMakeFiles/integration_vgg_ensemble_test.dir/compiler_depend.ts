# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_vgg_ensemble_test.
