file(REMOVE_RECURSE
  "CMakeFiles/integration_vgg_ensemble_test.dir/tests/integration/vgg_ensemble_test.cpp.o"
  "CMakeFiles/integration_vgg_ensemble_test.dir/tests/integration/vgg_ensemble_test.cpp.o.d"
  "integration_vgg_ensemble_test"
  "integration_vgg_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_vgg_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
