# Empty dependencies file for integration_vgg_ensemble_test.
# This may be replaced when dependencies are built.
