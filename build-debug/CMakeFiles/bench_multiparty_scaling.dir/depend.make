# Empty dependencies file for bench_multiparty_scaling.
# This may be replaced when dependencies are built.
