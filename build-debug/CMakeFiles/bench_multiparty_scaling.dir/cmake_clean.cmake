file(REMOVE_RECURSE
  "CMakeFiles/bench_multiparty_scaling.dir/bench/multiparty_scaling.cpp.o"
  "CMakeFiles/bench_multiparty_scaling.dir/bench/multiparty_scaling.cpp.o.d"
  "bench_multiparty_scaling"
  "bench_multiparty_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiparty_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
