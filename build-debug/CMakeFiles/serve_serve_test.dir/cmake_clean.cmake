file(REMOVE_RECURSE
  "CMakeFiles/serve_serve_test.dir/tests/serve/serve_test.cpp.o"
  "CMakeFiles/serve_serve_test.dir/tests/serve/serve_test.cpp.o.d"
  "serve_serve_test"
  "serve_serve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_serve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
