file(REMOVE_RECURSE
  "CMakeFiles/property_privacy_invariants_test.dir/tests/property/privacy_invariants_test.cpp.o"
  "CMakeFiles/property_privacy_invariants_test.dir/tests/property/privacy_invariants_test.cpp.o.d"
  "property_privacy_invariants_test"
  "property_privacy_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_privacy_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
