file(REMOVE_RECURSE
  "CMakeFiles/defense_defense_test.dir/tests/defense/defense_test.cpp.o"
  "CMakeFiles/defense_defense_test.dir/tests/defense/defense_test.cpp.o.d"
  "defense_defense_test"
  "defense_defense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
