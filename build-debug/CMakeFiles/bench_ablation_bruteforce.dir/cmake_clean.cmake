file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bruteforce.dir/bench/ablation_bruteforce.cpp.o"
  "CMakeFiles/bench_ablation_bruteforce.dir/bench/ablation_bruteforce.cpp.o.d"
  "bench_ablation_bruteforce"
  "bench_ablation_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
