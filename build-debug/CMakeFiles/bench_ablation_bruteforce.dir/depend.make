# Empty dependencies file for bench_ablation_bruteforce.
# This may be replaced when dependencies are built.
