file(REMOVE_RECURSE
  "CMakeFiles/serve_hotswap_test.dir/tests/serve/hotswap_test.cpp.o"
  "CMakeFiles/serve_hotswap_test.dir/tests/serve/hotswap_test.cpp.o.d"
  "serve_hotswap_test"
  "serve_hotswap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_hotswap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
