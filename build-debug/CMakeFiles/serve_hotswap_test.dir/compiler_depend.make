# Empty compiler generated dependencies file for serve_hotswap_test.
# This may be replaced when dependencies are built.
