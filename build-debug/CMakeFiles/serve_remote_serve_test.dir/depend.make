# Empty dependencies file for serve_remote_serve_test.
# This may be replaced when dependencies are built.
