file(REMOVE_RECURSE
  "CMakeFiles/serve_reactor_test.dir/tests/serve/reactor_test.cpp.o"
  "CMakeFiles/serve_reactor_test.dir/tests/serve/reactor_test.cpp.o.d"
  "serve_reactor_test"
  "serve_reactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_reactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
