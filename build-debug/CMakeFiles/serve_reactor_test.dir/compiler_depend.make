# Empty compiler generated dependencies file for serve_reactor_test.
# This may be replaced when dependencies are built.
