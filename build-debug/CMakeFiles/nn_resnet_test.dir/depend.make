# Empty dependencies file for nn_resnet_test.
# This may be replaced when dependencies are built.
