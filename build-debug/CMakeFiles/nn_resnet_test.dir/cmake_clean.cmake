file(REMOVE_RECURSE
  "CMakeFiles/nn_resnet_test.dir/tests/nn/resnet_test.cpp.o"
  "CMakeFiles/nn_resnet_test.dir/tests/nn/resnet_test.cpp.o.d"
  "nn_resnet_test"
  "nn_resnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_resnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
