# Empty compiler generated dependencies file for multiparty_split.
# This may be replaced when dependencies are built.
