file(REMOVE_RECURSE
  "CMakeFiles/multiparty_split.dir/examples/multiparty_split.cpp.o"
  "CMakeFiles/multiparty_split.dir/examples/multiparty_split.cpp.o.d"
  "multiparty_split"
  "multiparty_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiparty_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
