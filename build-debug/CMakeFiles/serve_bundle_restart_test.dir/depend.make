# Empty dependencies file for serve_bundle_restart_test.
# This may be replaced when dependencies are built.
