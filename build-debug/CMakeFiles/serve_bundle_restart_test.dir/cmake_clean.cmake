file(REMOVE_RECURSE
  "CMakeFiles/serve_bundle_restart_test.dir/tests/serve/bundle_restart_test.cpp.o"
  "CMakeFiles/serve_bundle_restart_test.dir/tests/serve/bundle_restart_test.cpp.o.d"
  "serve_bundle_restart_test"
  "serve_bundle_restart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_bundle_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
