# Empty dependencies file for edge_latency_planner.
# This may be replaced when dependencies are built.
