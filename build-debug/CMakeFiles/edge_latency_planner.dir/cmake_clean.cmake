file(REMOVE_RECURSE
  "CMakeFiles/edge_latency_planner.dir/examples/edge_latency_planner.cpp.o"
  "CMakeFiles/edge_latency_planner.dir/examples/edge_latency_planner.cpp.o.d"
  "edge_latency_planner"
  "edge_latency_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_latency_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
