file(REMOVE_RECURSE
  "CMakeFiles/tensor_kernel_test.dir/tests/tensor/kernel_test.cpp.o"
  "CMakeFiles/tensor_kernel_test.dir/tests/tensor/kernel_test.cpp.o.d"
  "tensor_kernel_test"
  "tensor_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
