# Empty dependencies file for tensor_kernel_test.
# This may be replaced when dependencies are built.
