file(REMOVE_RECURSE
  "CMakeFiles/serve_pipeline_test.dir/tests/serve/pipeline_test.cpp.o"
  "CMakeFiles/serve_pipeline_test.dir/tests/serve/pipeline_test.cpp.o.d"
  "serve_pipeline_test"
  "serve_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
