# Empty dependencies file for serve_pipeline_test.
# This may be replaced when dependencies are built.
