# Empty dependencies file for split_tcp_channel_test.
# This may be replaced when dependencies are built.
