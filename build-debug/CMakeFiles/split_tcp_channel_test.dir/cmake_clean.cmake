file(REMOVE_RECURSE
  "CMakeFiles/split_tcp_channel_test.dir/tests/split/tcp_channel_test.cpp.o"
  "CMakeFiles/split_tcp_channel_test.dir/tests/split/tcp_channel_test.cpp.o.d"
  "split_tcp_channel_test"
  "split_tcp_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_tcp_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
