file(REMOVE_RECURSE
  "CMakeFiles/private_face_inference.dir/examples/private_face_inference.cpp.o"
  "CMakeFiles/private_face_inference.dir/examples/private_face_inference.cpp.o.d"
  "private_face_inference"
  "private_face_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_face_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
