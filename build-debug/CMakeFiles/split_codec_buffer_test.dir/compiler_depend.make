# Empty compiler generated dependencies file for split_codec_buffer_test.
# This may be replaced when dependencies are built.
