file(REMOVE_RECURSE
  "CMakeFiles/split_codec_buffer_test.dir/tests/split/codec_buffer_test.cpp.o"
  "CMakeFiles/split_codec_buffer_test.dir/tests/split/codec_buffer_test.cpp.o.d"
  "split_codec_buffer_test"
  "split_codec_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_codec_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
