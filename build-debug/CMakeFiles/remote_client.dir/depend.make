# Empty dependencies file for remote_client.
# This may be replaced when dependencies are built.
