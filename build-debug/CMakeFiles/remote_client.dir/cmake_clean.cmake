file(REMOVE_RECURSE
  "CMakeFiles/remote_client.dir/examples/remote_client.cpp.o"
  "CMakeFiles/remote_client.dir/examples/remote_client.cpp.o.d"
  "remote_client"
  "remote_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
