file(REMOVE_RECURSE
  "CMakeFiles/core_selector_test.dir/tests/core/selector_test.cpp.o"
  "CMakeFiles/core_selector_test.dir/tests/core/selector_test.cpp.o.d"
  "core_selector_test"
  "core_selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
