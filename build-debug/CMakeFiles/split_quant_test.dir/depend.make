# Empty dependencies file for split_quant_test.
# This may be replaced when dependencies are built.
