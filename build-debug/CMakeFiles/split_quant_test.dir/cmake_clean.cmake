file(REMOVE_RECURSE
  "CMakeFiles/split_quant_test.dir/tests/split/quant_test.cpp.o"
  "CMakeFiles/split_quant_test.dir/tests/split/quant_test.cpp.o.d"
  "split_quant_test"
  "split_quant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
