# Empty dependencies file for train_trainer_test.
# This may be replaced when dependencies are built.
