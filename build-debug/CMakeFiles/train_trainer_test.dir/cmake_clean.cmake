file(REMOVE_RECURSE
  "CMakeFiles/train_trainer_test.dir/tests/train/trainer_test.cpp.o"
  "CMakeFiles/train_trainer_test.dir/tests/train/trainer_test.cpp.o.d"
  "train_trainer_test"
  "train_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
