file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_np_sweep.dir/bench/ablation_np_sweep.cpp.o"
  "CMakeFiles/bench_ablation_np_sweep.dir/bench/ablation_np_sweep.cpp.o.d"
  "bench_ablation_np_sweep"
  "bench_ablation_np_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_np_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
