file(REMOVE_RECURSE
  "CMakeFiles/serve_admission_test.dir/tests/serve/admission_test.cpp.o"
  "CMakeFiles/serve_admission_test.dir/tests/serve/admission_test.cpp.o.d"
  "serve_admission_test"
  "serve_admission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
