file(REMOVE_RECURSE
  "CMakeFiles/sharded_client.dir/examples/sharded_client.cpp.o"
  "CMakeFiles/sharded_client.dir/examples/sharded_client.cpp.o.d"
  "sharded_client"
  "sharded_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
