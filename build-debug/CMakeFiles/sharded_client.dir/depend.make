# Empty dependencies file for sharded_client.
# This may be replaced when dependencies are built.
