file(REMOVE_RECURSE
  "CMakeFiles/ensembler_cli.dir/examples/ensembler_cli.cpp.o"
  "CMakeFiles/ensembler_cli.dir/examples/ensembler_cli.cpp.o.d"
  "ensembler_cli"
  "ensembler_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensembler_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
