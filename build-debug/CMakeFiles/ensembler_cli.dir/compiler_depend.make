# Empty compiler generated dependencies file for ensembler_cli.
# This may be replaced when dependencies are built.
