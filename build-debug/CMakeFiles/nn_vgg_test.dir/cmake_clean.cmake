file(REMOVE_RECURSE
  "CMakeFiles/nn_vgg_test.dir/tests/nn/vgg_test.cpp.o"
  "CMakeFiles/nn_vgg_test.dir/tests/nn/vgg_test.cpp.o.d"
  "nn_vgg_test"
  "nn_vgg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_vgg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
