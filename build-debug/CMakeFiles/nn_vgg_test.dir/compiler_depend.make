# Empty compiler generated dependencies file for nn_vgg_test.
# This may be replaced when dependencies are built.
