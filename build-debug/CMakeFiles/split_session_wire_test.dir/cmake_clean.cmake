file(REMOVE_RECURSE
  "CMakeFiles/split_session_wire_test.dir/tests/split/session_wire_test.cpp.o"
  "CMakeFiles/split_session_wire_test.dir/tests/split/session_wire_test.cpp.o.d"
  "split_session_wire_test"
  "split_session_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_session_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
