# Empty compiler generated dependencies file for split_session_wire_test.
# This may be replaced when dependencies are built.
