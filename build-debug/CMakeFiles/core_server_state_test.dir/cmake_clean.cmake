file(REMOVE_RECURSE
  "CMakeFiles/core_server_state_test.dir/tests/core/server_state_test.cpp.o"
  "CMakeFiles/core_server_state_test.dir/tests/core/server_state_test.cpp.o.d"
  "core_server_state_test"
  "core_server_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_server_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
