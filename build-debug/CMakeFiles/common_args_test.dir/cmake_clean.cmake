file(REMOVE_RECURSE
  "CMakeFiles/common_args_test.dir/tests/common/args_test.cpp.o"
  "CMakeFiles/common_args_test.dir/tests/common/args_test.cpp.o.d"
  "common_args_test"
  "common_args_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
