file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lambda.dir/bench/ablation_lambda.cpp.o"
  "CMakeFiles/bench_ablation_lambda.dir/bench/ablation_lambda.cpp.o.d"
  "bench_ablation_lambda"
  "bench_ablation_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
