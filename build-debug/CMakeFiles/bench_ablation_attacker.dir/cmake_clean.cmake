file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_attacker.dir/bench/ablation_attacker.cpp.o"
  "CMakeFiles/bench_ablation_attacker.dir/bench/ablation_attacker.cpp.o.d"
  "bench_ablation_attacker"
  "bench_ablation_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
