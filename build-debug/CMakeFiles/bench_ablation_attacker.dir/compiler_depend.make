# Empty compiler generated dependencies file for bench_ablation_attacker.
# This may be replaced when dependencies are built.
