# Empty dependencies file for bench_ablation_codec.
# This may be replaced when dependencies are built.
