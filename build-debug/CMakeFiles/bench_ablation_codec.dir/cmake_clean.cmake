file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_codec.dir/bench/ablation_codec.cpp.o"
  "CMakeFiles/bench_ablation_codec.dir/bench/ablation_codec.cpp.o.d"
  "bench_ablation_codec"
  "bench_ablation_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
