file(REMOVE_RECURSE
  "CMakeFiles/latency_wire_latency_test.dir/tests/latency/wire_latency_test.cpp.o"
  "CMakeFiles/latency_wire_latency_test.dir/tests/latency/wire_latency_test.cpp.o.d"
  "latency_wire_latency_test"
  "latency_wire_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_wire_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
