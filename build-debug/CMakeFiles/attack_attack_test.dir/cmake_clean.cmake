file(REMOVE_RECURSE
  "CMakeFiles/attack_attack_test.dir/tests/attack/attack_test.cpp.o"
  "CMakeFiles/attack_attack_test.dir/tests/attack/attack_test.cpp.o.d"
  "attack_attack_test"
  "attack_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
