file(REMOVE_RECURSE
  "CMakeFiles/optim_optim_test.dir/tests/optim/optim_test.cpp.o"
  "CMakeFiles/optim_optim_test.dir/tests/optim/optim_test.cpp.o.d"
  "optim_optim_test"
  "optim_optim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optim_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
