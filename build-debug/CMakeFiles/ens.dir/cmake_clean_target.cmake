file(REMOVE_RECURSE
  "libens.a"
)
