# Empty dependencies file for ens.
# This may be replaced when dependencies are built.
