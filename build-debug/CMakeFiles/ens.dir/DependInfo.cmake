
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/brute_force.cpp" "CMakeFiles/ens.dir/src/attack/brute_force.cpp.o" "gcc" "CMakeFiles/ens.dir/src/attack/brute_force.cpp.o.d"
  "/root/repo/src/attack/decoder.cpp" "CMakeFiles/ens.dir/src/attack/decoder.cpp.o" "gcc" "CMakeFiles/ens.dir/src/attack/decoder.cpp.o.d"
  "/root/repo/src/attack/mia.cpp" "CMakeFiles/ens.dir/src/attack/mia.cpp.o" "gcc" "CMakeFiles/ens.dir/src/attack/mia.cpp.o.d"
  "/root/repo/src/attack/shadow.cpp" "CMakeFiles/ens.dir/src/attack/shadow.cpp.o" "gcc" "CMakeFiles/ens.dir/src/attack/shadow.cpp.o.d"
  "/root/repo/src/common/args.cpp" "CMakeFiles/ens.dir/src/common/args.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/args.cpp.o.d"
  "/root/repo/src/common/env.cpp" "CMakeFiles/ens.dir/src/common/env.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/env.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/ens.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/ens.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "CMakeFiles/ens.dir/src/common/serialize.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/serialize.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "CMakeFiles/ens.dir/src/common/threadpool.cpp.o" "gcc" "CMakeFiles/ens.dir/src/common/threadpool.cpp.o.d"
  "/root/repo/src/core/client_state.cpp" "CMakeFiles/ens.dir/src/core/client_state.cpp.o" "gcc" "CMakeFiles/ens.dir/src/core/client_state.cpp.o.d"
  "/root/repo/src/core/ensembler.cpp" "CMakeFiles/ens.dir/src/core/ensembler.cpp.o" "gcc" "CMakeFiles/ens.dir/src/core/ensembler.cpp.o.d"
  "/root/repo/src/core/extensions.cpp" "CMakeFiles/ens.dir/src/core/extensions.cpp.o" "gcc" "CMakeFiles/ens.dir/src/core/extensions.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "CMakeFiles/ens.dir/src/core/selector.cpp.o" "gcc" "CMakeFiles/ens.dir/src/core/selector.cpp.o.d"
  "/root/repo/src/core/server_state.cpp" "CMakeFiles/ens.dir/src/core/server_state.cpp.o" "gcc" "CMakeFiles/ens.dir/src/core/server_state.cpp.o.d"
  "/root/repo/src/data/canvas.cpp" "CMakeFiles/ens.dir/src/data/canvas.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/canvas.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "CMakeFiles/ens.dir/src/data/dataloader.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/ens.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/image_io.cpp" "CMakeFiles/ens.dir/src/data/image_io.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/image_io.cpp.o.d"
  "/root/repo/src/data/synth_cifar10.cpp" "CMakeFiles/ens.dir/src/data/synth_cifar10.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/synth_cifar10.cpp.o.d"
  "/root/repo/src/data/synth_cifar100.cpp" "CMakeFiles/ens.dir/src/data/synth_cifar100.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/synth_cifar100.cpp.o.d"
  "/root/repo/src/data/synth_faces.cpp" "CMakeFiles/ens.dir/src/data/synth_faces.cpp.o" "gcc" "CMakeFiles/ens.dir/src/data/synth_faces.cpp.o.d"
  "/root/repo/src/defense/baselines.cpp" "CMakeFiles/ens.dir/src/defense/baselines.cpp.o" "gcc" "CMakeFiles/ens.dir/src/defense/baselines.cpp.o.d"
  "/root/repo/src/defense/protected_model.cpp" "CMakeFiles/ens.dir/src/defense/protected_model.cpp.o" "gcc" "CMakeFiles/ens.dir/src/defense/protected_model.cpp.o.d"
  "/root/repo/src/latency/estimator.cpp" "CMakeFiles/ens.dir/src/latency/estimator.cpp.o" "gcc" "CMakeFiles/ens.dir/src/latency/estimator.cpp.o.d"
  "/root/repo/src/latency/flops.cpp" "CMakeFiles/ens.dir/src/latency/flops.cpp.o" "gcc" "CMakeFiles/ens.dir/src/latency/flops.cpp.o.d"
  "/root/repo/src/latency/profiles.cpp" "CMakeFiles/ens.dir/src/latency/profiles.cpp.o" "gcc" "CMakeFiles/ens.dir/src/latency/profiles.cpp.o.d"
  "/root/repo/src/latency/stamp.cpp" "CMakeFiles/ens.dir/src/latency/stamp.cpp.o" "gcc" "CMakeFiles/ens.dir/src/latency/stamp.cpp.o.d"
  "/root/repo/src/metrics/accuracy.cpp" "CMakeFiles/ens.dir/src/metrics/accuracy.cpp.o" "gcc" "CMakeFiles/ens.dir/src/metrics/accuracy.cpp.o.d"
  "/root/repo/src/metrics/psnr.cpp" "CMakeFiles/ens.dir/src/metrics/psnr.cpp.o" "gcc" "CMakeFiles/ens.dir/src/metrics/psnr.cpp.o.d"
  "/root/repo/src/metrics/similarity.cpp" "CMakeFiles/ens.dir/src/metrics/similarity.cpp.o" "gcc" "CMakeFiles/ens.dir/src/metrics/similarity.cpp.o.d"
  "/root/repo/src/metrics/ssim.cpp" "CMakeFiles/ens.dir/src/metrics/ssim.cpp.o" "gcc" "CMakeFiles/ens.dir/src/metrics/ssim.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "CMakeFiles/ens.dir/src/metrics/stats.cpp.o" "gcc" "CMakeFiles/ens.dir/src/metrics/stats.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "CMakeFiles/ens.dir/src/nn/activations.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/activations.cpp.o.d"
  "/root/repo/src/nn/arch.cpp" "CMakeFiles/ens.dir/src/nn/arch.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/arch.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "CMakeFiles/ens.dir/src/nn/batchnorm.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "CMakeFiles/ens.dir/src/nn/checkpoint.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "CMakeFiles/ens.dir/src/nn/conv2d.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "CMakeFiles/ens.dir/src/nn/dropout.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "CMakeFiles/ens.dir/src/nn/flatten.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/flatten.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "CMakeFiles/ens.dir/src/nn/layer.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/ens.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/ens.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/noise.cpp" "CMakeFiles/ens.dir/src/nn/noise.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/noise.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "CMakeFiles/ens.dir/src/nn/pooling.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/resblock.cpp" "CMakeFiles/ens.dir/src/nn/resblock.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/resblock.cpp.o.d"
  "/root/repo/src/nn/resnet.cpp" "CMakeFiles/ens.dir/src/nn/resnet.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/resnet.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/ens.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/vgg.cpp" "CMakeFiles/ens.dir/src/nn/vgg.cpp.o" "gcc" "CMakeFiles/ens.dir/src/nn/vgg.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "CMakeFiles/ens.dir/src/optim/adam.cpp.o" "gcc" "CMakeFiles/ens.dir/src/optim/adam.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "CMakeFiles/ens.dir/src/optim/optimizer.cpp.o" "gcc" "CMakeFiles/ens.dir/src/optim/optimizer.cpp.o.d"
  "/root/repo/src/optim/schedule.cpp" "CMakeFiles/ens.dir/src/optim/schedule.cpp.o" "gcc" "CMakeFiles/ens.dir/src/optim/schedule.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "CMakeFiles/ens.dir/src/optim/sgd.cpp.o" "gcc" "CMakeFiles/ens.dir/src/optim/sgd.cpp.o.d"
  "/root/repo/src/serve/bundle.cpp" "CMakeFiles/ens.dir/src/serve/bundle.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/bundle.cpp.o.d"
  "/root/repo/src/serve/deployment.cpp" "CMakeFiles/ens.dir/src/serve/deployment.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/deployment.cpp.o.d"
  "/root/repo/src/serve/pipeline.cpp" "CMakeFiles/ens.dir/src/serve/pipeline.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/pipeline.cpp.o.d"
  "/root/repo/src/serve/protocol.cpp" "CMakeFiles/ens.dir/src/serve/protocol.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/protocol.cpp.o.d"
  "/root/repo/src/serve/reactor.cpp" "CMakeFiles/ens.dir/src/serve/reactor.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/reactor.cpp.o.d"
  "/root/repo/src/serve/remote.cpp" "CMakeFiles/ens.dir/src/serve/remote.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/remote.cpp.o.d"
  "/root/repo/src/serve/service.cpp" "CMakeFiles/ens.dir/src/serve/service.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/service.cpp.o.d"
  "/root/repo/src/serve/shard_router.cpp" "CMakeFiles/ens.dir/src/serve/shard_router.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/shard_router.cpp.o.d"
  "/root/repo/src/serve/stats.cpp" "CMakeFiles/ens.dir/src/serve/stats.cpp.o" "gcc" "CMakeFiles/ens.dir/src/serve/stats.cpp.o.d"
  "/root/repo/src/split/channel.cpp" "CMakeFiles/ens.dir/src/split/channel.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/channel.cpp.o.d"
  "/root/repo/src/split/codec.cpp" "CMakeFiles/ens.dir/src/split/codec.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/codec.cpp.o.d"
  "/root/repo/src/split/multiparty.cpp" "CMakeFiles/ens.dir/src/split/multiparty.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/multiparty.cpp.o.d"
  "/root/repo/src/split/quant.cpp" "CMakeFiles/ens.dir/src/split/quant.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/quant.cpp.o.d"
  "/root/repo/src/split/session.cpp" "CMakeFiles/ens.dir/src/split/session.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/session.cpp.o.d"
  "/root/repo/src/split/split_model.cpp" "CMakeFiles/ens.dir/src/split/split_model.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/split_model.cpp.o.d"
  "/root/repo/src/split/tcp_channel.cpp" "CMakeFiles/ens.dir/src/split/tcp_channel.cpp.o" "gcc" "CMakeFiles/ens.dir/src/split/tcp_channel.cpp.o.d"
  "/root/repo/src/tensor/gemm_kernel.cpp" "CMakeFiles/ens.dir/src/tensor/gemm_kernel.cpp.o" "gcc" "CMakeFiles/ens.dir/src/tensor/gemm_kernel.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "CMakeFiles/ens.dir/src/tensor/im2col.cpp.o" "gcc" "CMakeFiles/ens.dir/src/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/ens.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/ens.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "CMakeFiles/ens.dir/src/tensor/shape.cpp.o" "gcc" "CMakeFiles/ens.dir/src/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/ens.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/ens.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "CMakeFiles/ens.dir/src/train/trainer.cpp.o" "gcc" "CMakeFiles/ens.dir/src/train/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
