file(REMOVE_RECURSE
  "CMakeFiles/attack_brute_force_test.dir/tests/attack/brute_force_test.cpp.o"
  "CMakeFiles/attack_brute_force_test.dir/tests/attack/brute_force_test.cpp.o.d"
  "attack_brute_force_test"
  "attack_brute_force_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_brute_force_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
