file(REMOVE_RECURSE
  "CMakeFiles/nn_arch_test.dir/tests/nn/arch_test.cpp.o"
  "CMakeFiles/nn_arch_test.dir/tests/nn/arch_test.cpp.o.d"
  "nn_arch_test"
  "nn_arch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
