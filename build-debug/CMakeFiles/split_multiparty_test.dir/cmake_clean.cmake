file(REMOVE_RECURSE
  "CMakeFiles/split_multiparty_test.dir/tests/split/multiparty_test.cpp.o"
  "CMakeFiles/split_multiparty_test.dir/tests/split/multiparty_test.cpp.o.d"
  "split_multiparty_test"
  "split_multiparty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_multiparty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
