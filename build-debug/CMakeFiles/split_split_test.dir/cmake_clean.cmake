file(REMOVE_RECURSE
  "CMakeFiles/split_split_test.dir/tests/split/split_test.cpp.o"
  "CMakeFiles/split_split_test.dir/tests/split/split_test.cpp.o.d"
  "split_split_test"
  "split_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
