# Empty dependencies file for serve_daemon.
# This may be replaced when dependencies are built.
