file(REMOVE_RECURSE
  "CMakeFiles/serve_daemon.dir/examples/serve_daemon.cpp.o"
  "CMakeFiles/serve_daemon.dir/examples/serve_daemon.cpp.o.d"
  "serve_daemon"
  "serve_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
